"""Tests for risk profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty import RiskProfile, risk_averse, risk_neutral, risk_seeking

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

COIN = ([0.0, 1.0], [0.5, 0.5])


class TestUtility:
    def test_neutral_is_identity(self):
        profile = risk_neutral()
        for x in (0.0, 0.3, 1.0):
            assert profile.utility(x) == pytest.approx(x)

    def test_endpoints_fixed(self):
        for profile in (risk_averse(), risk_neutral(), risk_seeking()):
            assert profile.utility(0.0) == pytest.approx(0.0)
            assert profile.utility(1.0) == pytest.approx(1.0)

    def test_averse_is_concave(self):
        profile = risk_averse()
        assert profile.utility(0.5) > 0.5

    def test_seeking_is_convex(self):
        profile = risk_seeking()
        assert profile.utility(0.5) < 0.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            risk_neutral().utility(1.5)

    def test_extreme_aversion_rejected(self):
        with pytest.raises(ValueError):
            RiskProfile(aversion=100.0)

    @given(unit)
    def test_inverse_utility_roundtrip(self, x):
        for profile in (risk_averse(2.0), risk_neutral(), risk_seeking(2.0)):
            assert profile.inverse_utility(profile.utility(x)) == pytest.approx(x, abs=1e-6)


class TestLotteries:
    def test_neutral_ce_is_expected_value(self):
        assert risk_neutral().certainty_equivalent(*COIN) == pytest.approx(0.5)

    def test_averse_ce_below_expected_value(self):
        assert risk_averse().certainty_equivalent(*COIN) < 0.5

    def test_seeking_ce_above_expected_value(self):
        assert risk_seeking().certainty_equivalent(*COIN) > 0.5

    def test_risk_premium_signs(self):
        assert risk_averse().risk_premium(*COIN) > 0
        assert risk_neutral().risk_premium(*COIN) == pytest.approx(0.0)
        assert risk_seeking().risk_premium(*COIN) < 0

    def test_degenerate_lottery(self):
        assert risk_averse().certainty_equivalent([0.7], [1.0]) == pytest.approx(0.7)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            risk_neutral().expected_utility([0.5, 0.6], [0.5, 0.6])

    def test_empty_lottery_rejected(self):
        with pytest.raises(ValueError):
            risk_neutral().expected_utility([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            risk_neutral().expected_utility([0.5], [0.5, 0.5])


class TestPresets:
    def test_invalid_presets(self):
        with pytest.raises(ValueError):
            risk_averse(0.0)
        with pytest.raises(ValueError):
            risk_seeking(-1.0)

    def test_names(self):
        assert risk_averse().name == "averse"
        assert risk_neutral().name == "neutral"
        assert risk_seeking().name == "seeking"

    def test_more_averse_means_lower_ce(self):
        mild = risk_averse(1.0).certainty_equivalent(*COIN)
        strong = risk_averse(8.0).certainty_equivalent(*COIN)
        assert strong < mild
