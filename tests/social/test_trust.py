"""Tests for socialized trust."""

import numpy as np
import pytest

from repro.personalization import UserProfile
from repro.social import AffineNeighbour, SocialTrustView
from repro.trust import ReputationSystem


def _neighbour(user_id, affinity):
    return AffineNeighbour(
        user_id=user_id, affinity=affinity,
        profile=UserProfile(user_id=user_id, interests=np.array([1.0])),
    )


def _system(observations):
    system = ReputationSystem()
    for subject, outcomes in observations.items():
        for outcome in outcomes:
            system.observe(subject, outcome)
    return system


class TestSocialTrustView:
    def test_no_evidence_anywhere_neutral(self):
        view = SocialTrustView(ReputationSystem(), {}, [])
        assert view.score("unknown") == 0.5

    def test_own_evidence_dominates_when_alone(self):
        own = _system({"src": [1.0] * 10})
        view = SocialTrustView(own, {}, [])
        assert view.score("src") == pytest.approx(own.score("src"))

    def test_borrows_neighbour_experience_for_unknowns(self):
        own = ReputationSystem()  # no first-hand data
        friend_system = _system({"src": [0.0] * 10})  # friend got burned
        view = SocialTrustView(
            own, {"friend": friend_system}, [_neighbour("friend", 0.9)],
        )
        assert view.score("src") < 0.35

    def test_affinity_weights_conflicting_opinions(self):
        own = ReputationSystem()
        lover = _system({"src": [1.0] * 10})
        hater = _system({"src": [0.0] * 10})
        close_friend_loves = SocialTrustView(
            own,
            {"close": lover, "distant": hater},
            [_neighbour("close", 0.9), _neighbour("distant", 0.1)],
        )
        close_friend_hates = SocialTrustView(
            own,
            {"close": hater, "distant": lover},
            [_neighbour("close", 0.9), _neighbour("distant", 0.1)],
        )
        assert close_friend_loves.score("src") > 0.5
        assert close_friend_hates.score("src") < 0.5

    def test_first_hand_evidence_outweighs_hearsay(self):
        own = _system({"src": [1.0] * 30})  # lots of good experience
        skeptic = _system({"src": [0.0, 0.0]})  # two bad anecdotes
        view = SocialTrustView(
            own, {"skeptic": skeptic}, [_neighbour("skeptic", 0.5)],
        )
        assert view.score("src") > 0.7

    def test_opinions_listed_with_evidence(self):
        own = ReputationSystem()
        friend = _system({"a": [1.0], "b": [0.5]})
        view = SocialTrustView(own, {"f": friend}, [_neighbour("f", 0.8)])
        opinions = view.opinions("a")
        assert len(opinions) == 1
        assert opinions[0].neighbour_id == "f"
        assert opinions[0].affinity == 0.8
        assert view.opinions("unseen") == []

    def test_informed_sources_union(self):
        own = _system({"a": [1.0]})
        friend = _system({"b": [0.0]})
        view = SocialTrustView(own, {"f": friend}, [_neighbour("f", 0.5)])
        assert view.informed_sources() == ["a", "b"]

    def test_neighbour_without_shared_system_ignored(self):
        own = ReputationSystem()
        view = SocialTrustView(own, {}, [_neighbour("private-friend", 0.9)])
        assert view.score("src") == 0.5
