"""Domain-sharded rank service bridging sources to the shard pool.

:class:`ParallelRankService` is what the agora hands to the retrieve
path: sources keep owning their per-domain candidate blocks (live ingest
appends to them between queries), and the service mirrors each block
into the pool on demand — registering it whole on its domain's worker
the first time it is seen, then shipping only the appended tail on later
queries.  Block identity is tracked with an explicit token counter
stamped on the block (``_parallel_token``), *not* ``id()``: a rebuilt
block can land at a recycled address, but it never carries a token the
service minted for its predecessor.

Every entry point returns ``None`` when the pool cannot serve (not
started, or degraded by a worker crash *during this call*), and the
source falls back to its own in-process scoring — which is bitwise the
same answer, so degradation never changes results, only telemetry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.data.items import InformationItem
from repro.parallel.pool import ShardPool
from repro.parallel.shards import partition_domains, stable_worker_for
from repro.uncertainty.matching import CandidateBlock
from repro.uncertainty.pruning import PruneStats

#: Attribute stamped on mirrored blocks to detect rebuilds.
_TOKEN_ATTR = "_parallel_token"


class ParallelRankService:
    """Routes per-domain rank requests through a :class:`ShardPool`."""

    def __init__(self, pool: ShardPool) -> None:
        self._pool = pool
        self._domain_worker: Dict[str, int] = {}
        #: key -> (block token, number of items already mirrored)
        self._synced: Dict[str, Tuple[int, int]] = {}
        self._next_token = 0

    @property
    def pool(self) -> ShardPool:
        """The underlying worker pool."""
        return self._pool

    @property
    def active(self) -> bool:
        """Whether requests can currently be served by workers."""
        return self._pool.started and not self._pool.degraded

    def assign_domains(self, domains: List[str]) -> None:
        """Fix the domain → worker placement (round-robin, sorted)."""
        self._domain_worker = partition_domains(domains, self._pool.n_shards)

    def worker_for(self, domain: Optional[str]) -> int:
        """Worker owning ``domain`` (stable hash for unassigned ones)."""
        name = domain if domain is not None else ""
        assigned = self._domain_worker.get(name)
        if assigned is not None:
            return assigned
        return stable_worker_for(name, self._pool.n_shards)

    # -- block mirroring -------------------------------------------------
    def _sync(self, key: str, domain: Optional[str], block: CandidateBlock) -> None:
        """Bring the pool's mirror of ``block`` up to date.

        A block the service has never stamped (or a rebuilt replacement)
        is registered from scratch; a stamped block that only grew ships
        its appended tail.  Shrinking is impossible by construction —
        sources rebuild (new object) rather than remove.
        """
        token = getattr(block, _TOKEN_ATTR, None)
        recorded = self._synced.get(key)
        if token is None or recorded is None or recorded[0] != token:
            token = self._next_token
            self._next_token += 1
            setattr(block, _TOKEN_ATTR, token)
            self._pool.register(
                key, list(block.items), worker=self.worker_for(domain)
            )
            self._synced[key] = (token, len(block))
            return
        mirrored = recorded[1]
        if len(block) > mirrored:
            self._pool.extend(key, block.items[mirrored:])
            self._synced[key] = (token, len(block))

    @staticmethod
    def _key(source_id: str, domain: Optional[str]) -> str:
        return f"{source_id}/{domain if domain is not None else '*'}"

    # -- rank entry points -----------------------------------------------
    def rank_block_topk(
        self,
        source_id: str,
        domain: Optional[str],
        block: CandidateBlock,
        query: InformationItem,
        k: int,
        limit: Optional[int] = None,
        score_floor: float = 0.0,
        now: float = 0.0,
    ) -> Optional[Tuple[List[Tuple[InformationItem, float]], PruneStats]]:
        """Sharded ``rank_block_topk`` or ``None`` when unavailable."""
        if not self.active:
            return None
        key = self._key(source_id, domain)
        self._sync(key, domain, block)
        # If a worker crashes during this call the pool computes the
        # in-process fallback itself (bitwise the same answer); ``active``
        # turns False afterwards, so later requests skip the pool entirely.
        return self._pool.rank_topk(
            key, query, k, limit=limit, score_floor=score_floor, now=now
        )

    def rank_block(
        self,
        source_id: str,
        domain: Optional[str],
        block: CandidateBlock,
        query: InformationItem,
        limit: Optional[int] = None,
        now: float = 0.0,
    ) -> Optional[List[Tuple[InformationItem, float]]]:
        """Sharded full ``rank_block`` or ``None`` when unavailable."""
        if not self.active:
            return None
        key = self._key(source_id, domain)
        self._sync(key, domain, block)
        return self._pool.rank(key, query, limit=limit, now=now)
