"""A persistent spawn-based worker pool for sharded candidate scoring.

Architecture (DESIGN.md §2h):

- The coordinator owns a :class:`ShardPool` with an explicit
  ``start``/``stop`` lifecycle.  ``start`` verifies the shard-safety
  manifest (:mod:`repro.parallel.safety`), pickles the matching engine
  once (metrics detached — workers keep their own registries), and
  spawns ``n_shards`` daemon workers, each with a duplex pipe and a
  :class:`~repro.obs.context.TraceContext` whose shard id namespaces its
  span ids.
- Candidate pools are **registered** under a key, either sliced across
  every worker (engine-level fan-out) or placed whole on one worker
  (domain mode).  Registration optionally exports the coordinator
  block's dense matrices into shared memory so workers adopt read-only
  views instead of re-deriving them.
- **Ranks fan out** to the placements and merge deterministically
  (:mod:`repro.parallel.merge`); per-candidate floats are bitwise what
  the in-process path computes, so sharded == single-process output
  exactly.
- **Crashes degrade, never diverge**: the first definitive transport
  failure (broken pipe / EOF) flips the pool into fallback mode and
  every rank from then on is computed in-process on the coordinator's
  mirror block — bitwise the same answers, just slower.  There are no
  wall-clock timeouts anywhere (the determinism lint would reject them,
  and a timeout would make "crashed or slow?" machine-dependent).
"""

from __future__ import annotations

import pickle
import traceback
from bisect import bisect_left
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.items import InformationItem
from repro.obs.aggregate import ShardSnapshot, snapshot_shard
from repro.obs.context import TraceContext, derive_trace_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.parallel.merge import (
    RankPartial,
    merge_prune_stats,
    merge_ranked,
    merge_scores,
)
from repro.parallel.safety import verify_worker_roots
from repro.parallel.shards import Placement, single_placement, slice_placements
from repro.parallel.shm import AttachedArray, SharedArraySpec, ShmArena
from repro.uncertainty.matching import CandidateBlock, MatchingEngine
from repro.uncertainty.pruning import PruneStats

#: Transport failures that definitively mean "the worker is gone".
_CRASH_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


@dataclass(frozen=True)
class _BlockExport:
    """Picklable description of a parent block's shared dense matrices."""

    media: Optional[SharedArraySpec]
    lift: Optional[SharedArraySpec]
    norms: Optional[SharedArraySpec]
    media_positions: Tuple[int, ...]
    noncompound_positions: Tuple[int, ...]

    def specs(self) -> List[SharedArraySpec]:
        """Every non-empty segment spec in this export."""
        return [s for s in (self.media, self.lift, self.norms) if s is not None]


@dataclass
class _WorkerEntry:
    """Worker-side state for one registered key."""

    block: CandidateBlock
    start: int
    pos_by_id: Dict[str, int]
    attachments: List[AttachedArray] = field(default_factory=list)

    def close_attachments(self) -> None:
        for attachment in self.attachments:
            attachment.close()
        self.attachments = []


def _adopt_export(
    entry: _WorkerEntry, export: _BlockExport, stop: int
) -> None:
    """Install the worker's row ranges of the parent's shared matrices.

    Row ranges come from bisecting the parent's partition position lists
    with the worker's ``[start, stop)`` slice; the resulting views are
    bitwise the rows the worker would have derived itself, because every
    per-item vector is a pure function of the item.
    """
    start = entry.start
    if export.media is not None:
        lo = bisect_left(export.media_positions, start)
        hi = bisect_left(export.media_positions, stop)
        view = AttachedArray(export.media)
        entry.attachments.append(view)
        entry.block.install_dense(view.array[lo:hi], None, None)
    if export.lift is not None and export.norms is not None:
        lo = bisect_left(export.noncompound_positions, start)
        hi = bisect_left(export.noncompound_positions, stop)
        lift_view = AttachedArray(export.lift)
        norms_view = AttachedArray(export.norms)
        entry.attachments.extend([lift_view, norms_view])
        entry.block.install_dense(
            None, lift_view.array[lo:hi], norms_view.array[lo:hi]
        )


def _index_items(items: Sequence[InformationItem], start: int = 0) -> Dict[str, int]:
    return {item.item_id: start + offset for offset, item in enumerate(items)}


def _worker_main(
    conn: Connection, engine_blob: bytes, context_payload: Dict[str, Any]
) -> None:
    """Worker entry point (top-level so ``spawn`` can pickle it)."""
    engine: MatchingEngine = pickle.loads(engine_blob)
    registry = MetricsRegistry()
    engine.attach_metrics(registry)
    context = TraceContext.from_dict(context_payload)
    clock = {"now": 0.0}
    tracer = SpanTracer()
    tracer.bind_clock(lambda: clock["now"])
    tracer.attach(context)
    entries: Dict[str, _WorkerEntry] = {}
    requests = 0
    while True:
        try:
            message = conn.recv()
        except _CRASH_ERRORS:
            break
        kind = message[0]
        try:
            if kind == "stop":
                conn.send(("ok", None))
                break
            if kind == "register":
                __, key, items, start, stop, export = message
                previous = entries.pop(key, None)
                if previous is not None:
                    previous.close_attachments()
                entry = _WorkerEntry(
                    block=engine.prepare(items),
                    start=start,
                    pos_by_id=_index_items(items, start),
                )
                if export is not None:
                    _adopt_export(entry, export, stop)
                entries[key] = entry
                conn.send(("ok", None))
            elif kind == "extend":
                __, key, new_items = message
                entry = entries[key]
                entry.pos_by_id.update(
                    _index_items(new_items, entry.start + len(entry.block))
                )
                entry.block.extend(new_items)
                conn.send(("ok", None))
            elif kind == "rank":
                __, key, payload = message
                entry = entries[key]
                requests += 1
                clock["now"] = payload["now"]
                mode = payload["mode"]
                with tracer.span(
                    "shard-rank", key=key, mode=mode, limit=payload["limit"]
                ) as span:
                    if mode == "topk":
                        pairs, stats = engine.rank_block_topk(
                            payload["query"],
                            entry.block,
                            payload["k"],
                            limit=payload["limit"],
                            score_floor=payload["floor"],
                        )
                        partial = [
                            (entry.pos_by_id[item.item_id], score)
                            for item, score in pairs
                        ]
                        span.annotate(
                            returned=len(partial), scored=stats.candidates_scored
                        )
                        conn.send(("ok", (partial, stats)))
                    else:  # "score": the raw vector; rank merges coordinator-side
                        scores = entry.block.score(
                            payload["query"], limit=payload["limit"]
                        )
                        span.annotate(returned=int(scores.shape[0]))
                        conn.send(("ok", scores))
            elif kind == "snapshot":
                snapshot = snapshot_shard(
                    context.shard_id,
                    registry,
                    tracer=tracer,
                    sim_time=clock["now"],
                    event_count=requests,
                )
                conn.send(("ok", snapshot.to_dict()))
            else:
                conn.send(("err", f"unknown message kind {kind!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    for key in sorted(entries):
        entries[key].close_attachments()
    conn.close()


@dataclass
class _KeyState:
    """Coordinator-side state for one registered key."""

    items: List[InformationItem]
    placements: List[Placement]
    share: bool
    block: Optional[CandidateBlock] = None
    export: Optional[_BlockExport] = None

    def mirror_block(self, engine: MatchingEngine) -> CandidateBlock:
        """The coordinator's own block over the full pool (lazy)."""
        if self.block is None:
            self.block = engine.prepare(self.items)
        return self.block


@dataclass
class _WorkerHandle:
    process: Any
    conn: Connection
    alive: bool = True


class ShardPool:
    """Explicitly managed pool of scoring workers.

    Parameters
    ----------
    engine:
        The coordinator's matching engine.  Workers receive a pickled
        copy (metrics detached) at spawn; worker-side derived-state
        caches warm up independently and deterministically.
    n_shards:
        Number of worker processes.
    seed:
        Seed folded into the pool's trace id, so per-shard spans of two
        same-seed runs align.
    manifest_path:
        Shard-safety manifest location (default: repo root).  Pool
        construction fails with
        :class:`~repro.parallel.safety.ShardSafetyError` unless every
        worker root is certified PURE/READS_SHARED.
    trace_scope:
        Scope string for the derived trace id.
    """

    def __init__(
        self,
        engine: MatchingEngine,
        n_shards: int,
        seed: int = 0,
        manifest_path: Optional[Union[str, Path]] = None,
        trace_scope: str = "shard-pool",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        verify_worker_roots(manifest_path)
        self.engine = engine
        self.n_shards = n_shards
        self.seed = seed
        self.trace_id = derive_trace_id(seed, scope=trace_scope)
        self.fallbacks = 0
        self._workers: List[_WorkerHandle] = []
        self._keys: Dict[str, _KeyState] = {}
        self._arena: Optional[ShmArena] = None
        self._started = False
        self._degraded = False

    # -- lifecycle -------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the pool has live (or once-live) workers."""
        return self._started

    @property
    def degraded(self) -> bool:
        """Whether a worker crash has forced in-process fallback."""
        return self._degraded

    def start(self) -> "ShardPool":
        """Spawn the workers (idempotent)."""
        if self._started:
            return self
        spawn = get_context("spawn")
        engine_blob = self._pickle_engine()
        self._arena = ShmArena()
        for index in range(self.n_shards):
            parent_conn, child_conn = spawn.Pipe(duplex=True)
            context = TraceContext(trace_id=self.trace_id, shard_id=index + 1)
            process = spawn.Process(
                target=_worker_main,
                args=(child_conn, engine_blob, context.to_dict()),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process=process, conn=parent_conn))
        self._started = True
        return self

    def stop(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        for handle in self._workers:
            if handle.alive:
                try:
                    handle.conn.send(("stop", None))
                    handle.conn.recv()
                except _CRASH_ERRORS:
                    pass
            handle.conn.close()
            handle.process.join(timeout=10)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=10)
        self._workers = []
        if self._arena is not None:
            self._arena.close_and_unlink()
            self._arena = None
        self._started = False

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _pickle_engine(self) -> bytes:
        metrics = self.engine._metrics
        self.engine.attach_metrics(None)
        try:
            return pickle.dumps(self.engine)
        finally:
            self.engine.attach_metrics(metrics)

    # -- registration ----------------------------------------------------
    def register(
        self,
        key: str,
        items: Sequence[InformationItem],
        worker: Optional[int] = None,
        share: bool = True,
    ) -> None:
        """Register a candidate pool under ``key``.

        ``worker=None`` slices the pool across every worker (engine-level
        fan-out); ``worker=i`` places it whole on worker ``i`` (domain
        mode).  With ``share=True`` the coordinator block's dense
        matrices are exported through shared memory and workers adopt
        read-only row views.  Re-registering a key replaces it (and
        retires its old segments).
        """
        self._require_started()
        pool = list(items)
        if worker is None:
            placements = slice_placements(len(pool), self.n_shards)
        else:
            if not 0 <= worker < self.n_shards:
                raise ValueError(f"worker index {worker} out of range")
            placements = single_placement(len(pool), worker)
        state = _KeyState(items=pool, placements=placements, share=share)
        if share:
            state.export = self._export_block(state)
        previous = self._keys.get(key)
        self._keys[key] = state
        if not self._degraded:
            for placement in placements:
                self._request(
                    placement.worker,
                    (
                        "register",
                        key,
                        pool[placement.start:placement.stop],
                        placement.start,
                        placement.stop,
                        state.export,
                    ),
                )
        if previous is not None and previous.export is not None:
            # Workers have re-attached (or the pool is degraded and they
            # no longer matter); the old segments can go now.
            if self._arena is not None:
                self._arena.release(previous.export.specs())

    def _export_block(self, state: _KeyState) -> Optional[_BlockExport]:
        """Build the mirror block and share its dense matrices."""
        if self._arena is None:
            return None
        block = state.mirror_block(self.engine)
        try:
            media, lift, norms = block.dense_stack()
        except RuntimeError:
            # e.g. an unfitted lifter over a media pool: the in-process
            # path would fail identically at first cross-type score, so
            # just skip sharing and let workers derive (or fail) locally.
            return None
        return _BlockExport(
            media=self._arena.share(media),
            lift=self._arena.share(lift),
            norms=self._arena.share(norms),
            media_positions=tuple(block.media_positions()),
            noncompound_positions=tuple(block.noncompound_positions()),
        )

    def extend(self, key: str, new_items: Sequence[InformationItem]) -> None:
        """Append live-ingested items to a registered pool.

        The appended run extends the final placement (contiguity is what
        matters for parity, not balance).  Workers drop any adopted
        dense views for the key and rebuild locally — re-deriving the
        identical floats.
        """
        self._require_started()
        state = self._keys[key]
        delta = list(new_items)
        if not delta:
            return
        state.items.extend(delta)
        last = state.placements[-1]
        state.placements[-1] = Placement(
            worker=last.worker, start=last.start, stop=last.stop + len(delta)
        )
        if state.block is not None:
            state.block.extend(delta)
        if not self._degraded:
            self._request(last.worker, ("extend", key, delta))

    def registered(self, key: str) -> bool:
        """Whether ``key`` has a registered pool."""
        return key in self._keys

    def pool_size(self, key: str) -> int:
        """Number of items registered under ``key``."""
        return len(self._keys[key].items)

    # -- ranking ---------------------------------------------------------
    def rank(
        self,
        key: str,
        query: InformationItem,
        limit: Optional[int] = None,
        now: float = 0.0,
    ) -> List[Tuple[InformationItem, float]]:
        """Full rank over the first ``limit`` candidates of ``key``.

        Bitwise equal to ``engine.rank_block(query, block, limit)`` over
        the coordinator's mirror block.
        """
        self._require_started()
        state = self._keys[key]
        n = self._clamp(state, limit)
        parts = self._fan_scores(state, key, query, n, now)
        if parts is None:
            self.fallbacks += 1
            return self.engine.rank_block(
                query, state.mirror_block(self.engine), limit=n
            )
        scores = merge_scores(parts)
        pairs = [
            (item, float(score)) for item, score in zip(state.items[:n], scores)
        ]
        pairs.sort(key=lambda pair: (-pair[1], pair[0].item_id))
        return pairs

    def rank_topk(
        self,
        key: str,
        query: InformationItem,
        k: int,
        limit: Optional[int] = None,
        score_floor: float = 0.0,
        now: float = 0.0,
    ) -> Tuple[List[Tuple[InformationItem, float]], PruneStats]:
        """Pruned top-k over ``key``; bitwise equal to the in-process path."""
        self._require_started()
        state = self._keys[key]
        n = self._clamp(state, limit)
        requests: List[Tuple[int, Tuple[Any, ...]]] = []
        for placement in state.placements:
            local_limit = min(placement.stop, n) - placement.start
            if local_limit <= 0:
                continue
            payload = {
                "mode": "topk",
                "query": query,
                "k": k,
                "limit": local_limit,
                "floor": score_floor,
                "now": now,
            }
            requests.append((placement.worker, ("rank", key, payload)))
        replies = self._fan_out(requests)
        if replies is None:
            self.fallbacks += 1
            return self.engine.rank_block_topk(
                query,
                state.mirror_block(self.engine),
                k,
                limit=n,
                score_floor=score_floor,
            )
        partials: List[RankPartial] = [reply[0] for reply in replies]
        stats = merge_prune_stats([reply[1] for reply in replies])
        if not replies:
            # Zero-candidate rank: mirror the in-process empty result.
            stats = PruneStats(candidates_total=max(n, 0))
        merged = merge_ranked(state.items, partials, k=k, score_floor=score_floor)
        return merged, stats

    def score_many(
        self,
        key: str,
        query: InformationItem,
        limit: Optional[int] = None,
        now: float = 0.0,
    ) -> np.ndarray:
        """Score vector over the first ``limit`` candidates of ``key``."""
        self._require_started()
        state = self._keys[key]
        n = self._clamp(state, limit)
        parts = self._fan_scores(state, key, query, n, now)
        if parts is None:
            self.fallbacks += 1
            return state.mirror_block(self.engine).score(query, limit=n)
        return merge_scores(parts)

    def _fan_scores(
        self,
        state: _KeyState,
        key: str,
        query: InformationItem,
        n: int,
        now: float,
    ) -> Optional[List[np.ndarray]]:
        requests: List[Tuple[int, Tuple[Any, ...]]] = []
        for placement in state.placements:
            local_limit = min(placement.stop, n) - placement.start
            if local_limit <= 0:
                continue
            payload = {
                "mode": "score",
                "query": query,
                "limit": local_limit,
                "now": now,
            }
            requests.append((placement.worker, ("rank", key, payload)))
        return self._fan_out(requests)

    @staticmethod
    def _clamp(state: _KeyState, limit: Optional[int]) -> int:
        n = len(state.items)
        return n if limit is None else max(0, min(limit, n))

    # -- telemetry -------------------------------------------------------
    def snapshots(self) -> List[ShardSnapshot]:
        """Per-worker telemetry snapshots (live workers only).

        Merge them — together with the coordinator's own snapshot — via
        :func:`repro.obs.aggregate.merge_snapshots`.
        """
        self._require_started()
        snapshots: List[ShardSnapshot] = []
        if self._degraded:
            return snapshots
        for index in range(self.n_shards):
            payload = self._request(index, ("snapshot", None))
            if payload is not _CRASHED and payload is not None:
                snapshots.append(ShardSnapshot.from_dict(payload))
        return snapshots

    # -- transport -------------------------------------------------------
    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("ShardPool is not started (call start() first)")

    def _request(self, worker: int, message: Tuple[Any, ...]) -> Any:
        """One round trip to one worker; ``_CRASHED`` on transport death."""
        replies = self._fan_out([(worker, message)])
        if replies is None:
            return _CRASHED
        return replies[0]

    def _fan_out(
        self, requests: List[Tuple[int, Tuple[Any, ...]]]
    ) -> Optional[List[Any]]:
        """Send every request, then collect every reply in request order.

        Returns ``None`` when any involved worker is (or turns out to
        be) dead — the caller falls back in-process.  A worker that
        *replies* with an error is a bug, not a crash: that raises.
        """
        if self._degraded:
            return None
        sent: List[int] = []
        for worker, message in requests:
            handle = self._workers[worker]
            if not handle.alive or not handle.process.is_alive():
                self._mark_degraded(worker)
                break
            try:
                handle.conn.send(message)
            except _CRASH_ERRORS:
                self._mark_degraded(worker)
                break
            sent.append(worker)
        replies: List[Any] = []
        for worker in sent:
            handle = self._workers[worker]
            try:
                status, value = handle.conn.recv()
            except _CRASH_ERRORS:
                self._mark_degraded(worker)
                continue
            if status == "err":
                raise RuntimeError(
                    f"shard worker {worker} failed:\n{value}"
                )
            replies.append(value)
        if self._degraded or len(replies) != len(requests):
            return None
        return replies

    def _mark_degraded(self, worker: int) -> None:
        """Record a definitive worker death; the pool stays degraded."""
        self._degraded = True
        handle = self._workers[worker]
        handle.alive = False


#: Sentinel for "the worker transport is dead".
_CRASHED = object()
