"""Information sources: collections, registry, update streams (substrate).

Public API:

- :class:`InformationSource`, :class:`SourceQuality`, :class:`SourceAnswer`
  — the independent systems that hold and serve content.
- :class:`SourceRegistry`, :class:`SourceDescriptor` — discovery via
  (possibly optimistic) advertisements.
- :class:`UpdateStream` — Poisson item arrivals feeding a source.
- :class:`CollectionIndex` — sorted, bucketed item index behind sources.
"""

from repro.sources.index import CollectionIndex
from repro.sources.personal import PERSONAL_DOMAIN, PersonalInformationBase
from repro.sources.registry import SourceDescriptor, SourceRegistry
from repro.sources.source import (
    TRUST_CLASSES,
    InformationSource,
    SourceAnswer,
    SourceQuality,
)
from repro.sources.streams import UpdateStream

__all__ = [
    "CollectionIndex",
    "InformationSource",
    "PERSONAL_DOMAIN",
    "PersonalInformationBase",
    "SourceAnswer",
    "SourceDescriptor",
    "SourceQuality",
    "SourceRegistry",
    "TRUST_CLASSES",
    "UpdateStream",
]
