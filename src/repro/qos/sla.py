"""Service-Level Agreement contracts.

The paper (§3): "Open Agoras should model QoS through the use of Service
Level Agreement (SLA) contracts, which ... are different from 'normal'
contracts in the QoS premium paid, according to the risk/uncertainty of the
requested service."  A contract binds a provider to a QoS requirement for a
price; breaking it triggers compensation to the other party.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.qos.vector import QoSRequirement, QoSVector

_CONTRACT_COUNTER = itertools.count()


class ContractState(Enum):
    """Lifecycle states of an SLA contract."""
    OPEN = "open"
    FULFILLED = "fulfilled"
    BREACHED = "breached"
    CANCELLED = "cancelled"


@dataclass
class SLAContract:
    """A signed agreement between a consumer and a provider.

    Attributes
    ----------
    provider_id / consumer_id:
        The contracting parties (overlay node ids).
    requirement:
        The QoS bounds the provider promises to meet.
    base_price:
        Price of the service itself.
    premium:
        Extra paid for the QoS guarantee (the "insurance" part).
    compensation:
        Amount the provider pays the consumer per breached contract.
    cancellation_fee:
        Paid by whichever party unilaterally cancels.
    """

    provider_id: str
    consumer_id: str
    requirement: QoSRequirement
    base_price: float
    premium: float = 0.0
    compensation: float = 0.0
    cancellation_fee: float = 0.0
    signed_at: float = 0.0
    job_id: Optional[str] = None
    contract_id: int = field(default_factory=lambda: next(_CONTRACT_COUNTER))
    state: ContractState = ContractState.OPEN

    def __post_init__(self) -> None:
        for name in ("base_price", "premium", "compensation", "cancellation_fee"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    @property
    def total_price(self) -> float:
        """Base price plus premium."""
        return self.base_price + self.premium

    def settle(self, delivered: QoSVector) -> "SLAOutcome":
        """Evaluate delivery against the contract and settle payments.

        Returns the settlement; transitions the contract to FULFILLED or
        BREACHED.  Settling a non-open contract is an error.
        """
        if self.state is not ContractState.OPEN:
            raise ContractError(f"contract {self.contract_id} is {self.state.value}")
        violations = self.requirement.violated_dimensions(delivered)
        breached = bool(violations)
        self.state = ContractState.BREACHED if breached else ContractState.FULFILLED
        payout = self.compensation if breached else 0.0
        return SLAOutcome(
            contract=self,
            delivered=delivered,
            breached=breached,
            violated_dimensions=violations,
            consumer_paid=self.total_price,
            compensation_paid=payout,
        )

    def cancel(self, by_provider: bool) -> "SLAOutcome":
        """Unilateral cancellation; the canceller pays the cancellation fee."""
        if self.state is not ContractState.OPEN:
            raise ContractError(f"contract {self.contract_id} is {self.state.value}")
        self.state = ContractState.CANCELLED
        return SLAOutcome(
            contract=self,
            delivered=None,
            breached=True,
            violated_dimensions=["cancelled"],
            consumer_paid=0.0,
            compensation_paid=self.cancellation_fee if by_provider else -self.cancellation_fee,
        )


class ContractError(RuntimeError):
    """Raised on invalid contract state transitions."""


@dataclass
class SLAOutcome:
    """The settlement of one contract.

    ``compensation_paid`` flows provider → consumer when positive and
    consumer → provider when negative (consumer-side cancellation).
    """

    contract: SLAContract
    delivered: Optional[QoSVector]
    breached: bool
    violated_dimensions: List[str]
    consumer_paid: float
    compensation_paid: float

    @property
    def consumer_net_cost(self) -> float:
        """What the consumer ended up paying, net of compensation."""
        return self.consumer_paid - self.compensation_paid

    @property
    def provider_revenue(self) -> float:
        """What the provider netted from this settlement."""
        return self.consumer_paid - self.compensation_paid

    @property
    def compliance(self) -> float:
        """1.0 for a clean delivery, 0.0 for a fully breached one.

        Partial credit per satisfied dimension, used as the reputation
        outcome signal.
        """
        if self.delivered is None:
            return 0.0
        total = 5  # number of QoS dimensions
        return (total - len(self.violated_dimensions)) / total


def reset_contract_ids() -> None:
    """Reset the contract-id counter (tests only)."""
    global _CONTRACT_COUNTER
    _CONTRACT_COUNTER = itertools.count()
