"""Tests for the latent topic space."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import TopicSpace


class TestConstruction:
    def test_default_names(self):
        space = TopicSpace(3)
        assert len(space.names) == 3

    def test_custom_names(self):
        space = TopicSpace(2, names=["a", "b"])
        assert space.names == ["a", "b"]

    def test_name_length_mismatch(self):
        with pytest.raises(ValueError):
            TopicSpace(2, names=["only-one"])

    def test_zero_topics_rejected(self):
        with pytest.raises(ValueError):
            TopicSpace(0)

    def test_many_topics_get_generated_names(self):
        space = TopicSpace(15)
        assert space.names[-1] == "topic-14"


class TestVectors:
    def test_validate_rejects_wrong_shape(self):
        space = TopicSpace(4)
        with pytest.raises(ValueError):
            space.validate(np.ones(3))

    def test_validate_rejects_negative(self):
        space = TopicSpace(3)
        with pytest.raises(ValueError):
            space.validate(np.array([0.5, -0.2, 0.7]))

    def test_normalize_sums_to_one(self):
        space = TopicSpace(4)
        vector = space.normalize(np.array([1.0, 1.0, 2.0, 0.0]))
        assert vector.sum() == pytest.approx(1.0)

    def test_normalize_zero_vector_gives_uniform(self):
        space = TopicSpace(4)
        vector = space.normalize(np.zeros(4))
        np.testing.assert_allclose(vector, 0.25)

    def test_basis_concentrates_on_topic(self):
        space = TopicSpace(5)
        vector = space.basis(space.names[2], weight=0.9)
        assert np.argmax(vector) == 2
        assert vector.sum() == pytest.approx(1.0)

    def test_basis_unknown_topic(self):
        with pytest.raises(KeyError):
            TopicSpace(3).basis("no-such-topic")

    def test_basis_invalid_weight(self):
        space = TopicSpace(3)
        with pytest.raises(ValueError):
            space.basis(space.names[0], weight=1.5)


class TestRelevance:
    def test_self_relevance_is_one(self):
        space = TopicSpace(4)
        vector = space.normalize(np.array([0.1, 0.2, 0.3, 0.4]))
        assert space.relevance(vector, vector) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        space = TopicSpace(2)
        assert space.relevance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector_relevance_is_zero(self):
        space = TopicSpace(2)
        assert space.relevance(np.zeros(2), np.array([1.0, 0.0])) == 0.0

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10**6))
    def test_relevance_bounded(self, n_topics, seed):
        space = TopicSpace(n_topics)
        rng = np.random.default_rng(seed)
        a = space.sample(rng)
        b = space.sample(rng)
        value = space.relevance(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9

    def test_relevance_symmetric(self):
        space = TopicSpace(5)
        rng = np.random.default_rng(3)
        a, b = space.sample(rng), space.sample(rng)
        assert space.relevance(a, b) == pytest.approx(space.relevance(b, a))


class TestSampling:
    def test_sample_on_simplex(self):
        space = TopicSpace(6)
        rng = np.random.default_rng(0)
        vector = space.sample(rng)
        assert vector.sum() == pytest.approx(1.0)
        assert np.all(vector >= 0)

    def test_prior_biases_samples(self):
        space = TopicSpace(4)
        rng = np.random.default_rng(0)
        prior = space.basis(space.names[1], weight=0.95)
        draws = np.stack([space.sample(rng, prior=prior) for __ in range(200)])
        assert np.argmax(draws.mean(axis=0)) == 1

    def test_peak_topic(self):
        space = TopicSpace(3, names=["x", "y", "z"])
        assert space.peak_topic(np.array([0.1, 0.7, 0.2])) == "y"
