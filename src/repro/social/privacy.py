"""Privacy policies over profile parts.

"The set of others' profiles and queries that someone has access to must
be restricted based on access rights that have been granted according to
users' privacy concerns" (§6).  Each profile part (interests, QoS weights,
interaction history, queries) has a visibility level; access checks combine
the level with the social graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List

from repro.social.graph import SocialGraph

PROFILE_PARTS = ("interests", "qos_weights", "history", "queries")


class Visibility(Enum):
    """Access levels for profile parts."""
    PUBLIC = "public"
    FRIENDS = "friends"
    PRIVATE = "private"


@dataclass
class PrivacyPolicy:
    """One user's visibility settings per profile part."""

    owner_id: str
    levels: Dict[str, Visibility] = field(
        default_factory=lambda: {
            "interests": Visibility.FRIENDS,
            "qos_weights": Visibility.PRIVATE,
            "history": Visibility.PRIVATE,
            "queries": Visibility.FRIENDS,
        }
    )

    def __post_init__(self) -> None:
        unknown = set(self.levels) - set(PROFILE_PARTS)
        if unknown:
            raise ValueError(f"unknown profile parts: {sorted(unknown)}")
        for part in PROFILE_PARTS:
            self.levels.setdefault(part, Visibility.PRIVATE)

    def set_level(self, part: str, level: Visibility) -> None:
        """Change the visibility of one profile part."""
        if part not in PROFILE_PARTS:
            raise ValueError(f"unknown profile part {part!r}")
        self.levels[part] = level

    def allows(self, part: str, viewer_id: str, graph: SocialGraph) -> bool:
        """Whether ``viewer_id`` may read ``part`` of the owner's profile."""
        if part not in PROFILE_PARTS:
            raise ValueError(f"unknown profile part {part!r}")
        if viewer_id == self.owner_id:
            return True
        level = self.levels[part]
        if level is Visibility.PUBLIC:
            return True
        if level is Visibility.FRIENDS:
            return graph.are_friends(self.owner_id, viewer_id)
        return False


class PrivacyRegistry:
    """All users' privacy policies (default: the conservative policy)."""

    def __init__(self, graph: SocialGraph):
        self.graph = graph
        self._policies: Dict[str, PrivacyPolicy] = {}

    def policy(self, owner_id: str) -> PrivacyPolicy:
        """The owner's policy (created with defaults on first use)."""
        if owner_id not in self._policies:
            self._policies[owner_id] = PrivacyPolicy(owner_id)
        return self._policies[owner_id]

    def set_policy(self, policy: PrivacyPolicy) -> None:
        """Install or replace an owner's policy."""
        self._policies[policy.owner_id] = policy

    def can_see(self, viewer_id: str, owner_id: str, part: str) -> bool:
        """Whether ``viewer_id`` may read ``part`` of ``owner_id``."""
        return self.policy(owner_id).allows(part, viewer_id, self.graph)

    def visible_users(
        self, viewer_id: str, part: str, candidates: Iterable[str]
    ) -> List[str]:
        """The subset of ``candidates`` whose ``part`` the viewer may read."""
        return sorted(
            owner_id
            for owner_id in candidates
            if self.can_see(viewer_id, owner_id, part)
        )
