"""Observability overhead: the T2 availability scenario, tracing on vs off.

Runs the same seeded scenario several ways and compares wall-clock cost:

- ``off``      — ``enable_tracing=False`` (the default): the kernel hot
  loop only pays a ``tracer is None`` branch check.
- ``tracing``  — causal spans + per-event kernel accounting on.
- ``profiler`` — tracing plus the sim-time profiler hooked into kernel
  dispatch (one dict update per event).
- ``dashboard``— tracing on, plus rendering the markdown dashboard and
  exporting the full artifact set (the worst case a benchmark run pays).
- ``merge``    — snapshotting + deterministically merging four copies of
  the traced run's telemetry (the coordinator-side cost of a sharded run).

A second, events-driven series schedules the queries on the virtual
timeline (the scenario above resolves queries synchronously, so it never
exercises the per-event hooks) and times only the kernel run:

- ``events-tracing`` — the timeline scenario with causal tracing on.
- ``events-flight``  — the same timeline with the flight recorder also
  on (one canonical-JSON append + rolling digest update per event).
- ``kernel-tracing`` / ``kernel-flight`` — a 4000-event dispatch-only
  loop whose callbacks do almost nothing: the recorder's adversarial
  worst case, reported for visibility but not gated.

The acceptance bars: tracing *off* stays within noise of the
pre-observability kernel, profiler-on stays under 2x the tracing-only
cost, and the flight recorder stays under 1.5x the tracing-only cost on
the events-driven scenario — asserted loosely here (wall-clock in CI is
jittery) and recorded precisely in the benchmark report.
"""

import time

import numpy as np
import pytest

from repro import Consumer, UserProfile, build_agora
from repro.experiments import ExperimentResult, render_run_dashboard
from repro.obs import SpanTracer, merge_snapshots, snapshot_shard
from repro.obs.flight import FlightRecorder
from repro.resilience import ResilienceConfig
from repro.sim import Simulator
from repro.workloads import QueryWorkloadGenerator


def run_scenario(seed=23, n_sources=10, n_queries=10, availability=0.5,
                 enable_tracing=False, enable_profiling=False):
    agora = build_agora(seed=seed, n_sources=n_sources, items_per_source=12,
                        calibration_pairs=0, enable_tracing=enable_tracing,
                        enable_profiling=enable_profiling)
    rng = np.random.default_rng(seed + 1)
    for node in agora.topology.nodes[:-1]:  # keep the consumer node up
        agora.health.set_state(node, bool(rng.random() < availability))
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t2"),
    )
    profile = UserProfile(
        user_id="obs-user",
        interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(agora, profile, planner="trading",
                        resilience=ResilienceConfig.default_enabled())
    for index in range(n_queries):
        topic = agora.topic_space.names[index % 5]
        consumer.ask(workload.topic_query(topic, k=10))
    return agora


#: Virtual-time spacing between scheduled queries in the events series.
QUERY_SPACING = 5.0


def events_run_seconds(seed=23, n_queries=8, flight=False, repeats=3):
    """Best-of-N seconds for the *kernel run* of the timeline scenario.

    Builds a fresh agora per repeat (a consumed timeline cannot be
    re-run) and times only ``agora.run`` — the region the flight
    recorder actually hooks — with churn on so background events
    interleave with the scheduled queries.
    """
    best = float("inf")
    for __ in range(repeats):
        agora = build_agora(seed=seed, n_sources=8, items_per_source=12,
                            calibration_pairs=0, enable_tracing=True,
                            enable_churn=True, enable_flight_recorder=flight)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t2"),
        )
        profile = UserProfile(
            user_id="obs-user",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading",
                            resilience=ResilienceConfig.default_enabled())
        queries = [
            workload.topic_query(agora.topic_space.names[index % 5], k=10)
            for index in range(n_queries)
        ]
        assert agora.tracer is not None
        with agora.tracer.span("drive"):
            for index, query in enumerate(queries):
                agora.sim.schedule(
                    QUERY_SPACING * index + QUERY_SPACING / 2,
                    (lambda q=query, c=consumer: c.ask(q)),
                    tag=f"query-{index}",
                )
        horizon = QUERY_SPACING * (n_queries + 1)
        started = time.perf_counter()  # agora: ignore[AGR001] measures real runtime
        agora.run(until=horizon)
        elapsed = time.perf_counter() - started  # agora: ignore[AGR001] measures real runtime
        best = min(best, elapsed)
    return best


def run_event_loop(n_events=4000, flight_on=False, seed=5):
    """A kernel-dispatch loop with per-event RNG draws and spans.

    Every event re-enters its causal span and draws once, so the
    tracing-only and recorder-on timings compare the same real per-event
    work — the delta is exactly the recorder's append path.
    """
    tracer = SpanTracer()
    flight = FlightRecorder() if flight_on else None
    sim = Simulator(seed=seed, tracer=tracer, flight=flight)
    rng = sim.rng.stream("bench")

    def worker():
        for __ in range(n_events):
            rng.random()
            yield 0.01

    with tracer.span("bench"):
        sim.process(worker(), tag="bench")
    sim.run()
    assert sim.processed >= n_events
    return sim


def timed(fn, repeats=3):
    """Best-of-N wall-clock seconds (best-of to shed scheduler noise)."""
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()  # agora: ignore[AGR001] measures real runtime
        fn()
        elapsed = time.perf_counter() - started  # agora: ignore[AGR001] measures real runtime
        best = min(best, elapsed)
    return best


def run_overhead(seed=23, repeats=3) -> ExperimentResult:
    result = ExperimentResult(
        "OBS", "Observability overhead on the T2 availability scenario",
        ["mode", "best_seconds", "vs_off", "spans", "metrics"],
    )
    off = timed(lambda: run_scenario(seed=seed), repeats)
    on = timed(lambda: run_scenario(seed=seed, enable_tracing=True), repeats)
    profiled = timed(
        lambda: run_scenario(seed=seed, enable_tracing=True,
                             enable_profiling=True),
        repeats,
    )

    def full():
        agora = run_scenario(seed=seed, enable_tracing=True)
        render_run_dashboard(agora, title="overhead probe")

    dashboard = timed(full, repeats)

    traced = run_scenario(seed=seed, enable_tracing=True)
    spans = traced.tracer.span_count
    metric_count = (
        len(traced.sim.metrics.counters())
        + len(traced.sim.metrics.gauges())
        + len(traced.sim.metrics.histograms())
    )

    def merge_shards():
        snapshots = [
            snapshot_shard(shard_id, traced.sim.metrics, tracer=traced.tracer,
                           sim_time=traced.sim.now,
                           event_count=traced.sim.processed)
            for shard_id in range(4)
        ]
        merge_snapshots(snapshots)

    merge = timed(merge_shards, repeats)

    events_tracing = events_run_seconds(seed=seed, repeats=repeats)
    events_flight = events_run_seconds(seed=seed, flight=True, repeats=repeats)
    kernel_tracing = timed(lambda: run_event_loop(), repeats)
    kernel_flight = timed(lambda: run_event_loop(flight_on=True), repeats)

    result.add_row("off", round(off, 4), 1.0, 0, 0)
    result.add_row("tracing", round(on, 4), round(on / off, 3), spans,
                   metric_count)
    result.add_row("profiler", round(profiled, 4), round(profiled / off, 3),
                   spans, metric_count)
    result.add_row("dashboard", round(dashboard, 4), round(dashboard / off, 3),
                   spans, metric_count)
    result.add_row("merge(4 shards)", round(merge, 4), round(merge / off, 3),
                   4 * spans, metric_count)
    result.add_row("events-tracing", round(events_tracing, 4), 1.0, 1, 0)
    result.add_row(
        "events-flight", round(events_flight, 4),
        round(events_flight / events_tracing, 3), 1, 0,
    )
    result.add_row("kernel-tracing", round(kernel_tracing, 4), 1.0, 1, 0)
    result.add_row(
        "kernel-flight", round(kernel_flight, 4),
        round(kernel_flight / kernel_tracing, 3), 1, 0,
    )
    result.add_note(
        "vs_off is the wall-clock ratio against tracing disabled; the "
        "acceptance bars are off-mode overhead <= 5% vs the seed kernel "
        "and profiler-on < 2x the tracing-only cost"
    )
    result.add_note(
        "events-*/kernel-* rows time the kernel run only and their "
        "vs_off column is the ratio against the matching tracing-only "
        "row; the flight-recorder acceptance bar is events-flight < "
        "1.5x events-tracing (kernel-flight is the dispatch-only worst "
        "case, reported for visibility but ungated)"
    )
    return result


@pytest.mark.benchmark(group="OBS")
def test_obs_overhead(benchmark):
    result = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    result.print()
    by_mode = {row[0]: row for row in result.rows}
    # Wall-clock in shared CI is noisy: assert only that tracing does not
    # blow the run up (the precise numbers live in the report).
    assert by_mode["tracing"][2] < 2.0
    assert by_mode["dashboard"][2] < 2.5
    assert by_mode["tracing"][3] > 0  # spans actually recorded
    # Profiler-on must stay under 2x the tracing-only wall clock.
    assert by_mode["profiler"][1] < 2.0 * by_mode["tracing"][1]
    # The flight recorder must stay under 1.5x the tracing-only cost on
    # the events-driven scenario (its vs_off column holds that ratio).
    assert by_mode["events-flight"][2] < 1.5


if __name__ == "__main__":
    run_overhead().print()
