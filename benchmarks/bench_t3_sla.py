"""T3 (§3 QoS): SLA pricing policies under breach risk.

Regenerates the T3 table: sweep the true breach probability of a service
and compare pricing policies on (a) how well the charged premium tracks
the actuarially fair price and (b) the consumer's net cost variance with
vs without compensation.  Expected shape: the risk-priced premium grows
linearly with breach probability while the flat premium stays constant;
SLA compensation cuts the consumer's downside when breaches are common.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentResult
from repro.qos import (
    ContractMonitor,
    FlatPricing,
    QoSRequirement,
    QoSVector,
    RiskPricedPremium,
    SLAContract,
)

BREACH_LEVELS = [0.05, 0.2, 0.4, 0.6]
REQUIREMENT = QoSRequirement(min_completeness=0.8)
GOOD = QoSVector(response_time=1.0, completeness=0.9)
BAD = QoSVector(response_time=1.0, completeness=0.3)


def _run_policy(policy, breach_probability, n_contracts, rng):
    """Simulate ``n_contracts`` deliveries under one pricing policy."""
    monitor = ContractMonitor()
    net_costs = []
    for index in range(n_contracts):
        quote = policy.quote(REQUIREMENT, base_cost=1.0,
                             breach_probability=breach_probability)
        contract = SLAContract(
            provider_id="provider", consumer_id="consumer",
            requirement=REQUIREMENT,
            base_price=quote.base_price, premium=quote.premium,
            compensation=quote.compensation,
        )
        delivered = BAD if rng.random() < breach_probability else GOOD
        outcome = monitor.settle(contract, delivered)
        net_costs.append(outcome.consumer_net_cost)
    return quote, monitor, np.asarray(net_costs)


def run_t3(seed=5, n_contracts=400) -> ExperimentResult:
    result = ExperimentResult(
        "T3", "SLA premium pricing under breach risk",
        ["breach_prob", "policy", "premium", "fair_premium",
         "consumer_mean_cost", "consumer_cost_std", "provider_profit"],
    )
    for breach_probability in BREACH_LEVELS:
        for policy_name, policy in [
            ("flat", FlatPricing(margin=1.2, flat_premium=0.5)),
            ("risk-priced", RiskPricedPremium(margin=1.2, loading=0.25)),
        ]:
            rng = np.random.default_rng(seed)
            quote, monitor, net_costs = _run_policy(
                policy, breach_probability, n_contracts, rng
            )
            fair = breach_probability * quote.compensation
            ledger = monitor.ledger("provider")
            result.add_row(
                breach_probability,
                policy_name,
                quote.premium,
                fair,
                float(net_costs.mean()),
                float(net_costs.std()),
                ledger.revenue - n_contracts * 1.0,  # revenue minus cost
            )
    result.add_note(
        "expected shape: risk-priced premium tracks fair price; flat premium "
        "underprices high risk (provider loses money) and overprices low risk"
    )
    return result


def run_t3_compensation(seed=5, n_contracts=400, value=3.0) -> ExperimentResult:
    """Companion table: does compensation protect the consumer's downside?

    Each delivery is worth ``value`` when clean and 0 when breached.  With
    an SLA the consumer pays base+premium but receives compensation on
    breach; without, it pays only the base price and eats the loss.  The
    5th-percentile surplus is the downside-risk measure a risk-averse user
    (§2, §5) cares about.
    """
    result = ExperimentResult(
        "T3b", "Consumer surplus with vs without SLA compensation",
        ["breach_prob", "mean_with_sla", "p5_with_sla",
         "mean_without", "p5_without"],
    )
    for breach_probability in BREACH_LEVELS:
        rng = np.random.default_rng(seed)
        policy = RiskPricedPremium(margin=1.2, loading=0.25)
        quote = policy.quote(REQUIREMENT, 1.0, breach_probability)
        with_sla, without_sla = [], []
        for __ in range(n_contracts):
            breached = rng.random() < breach_probability
            delivered_value = 0.0 if breached else value
            compensation = quote.compensation if breached else 0.0
            with_sla.append(delivered_value - quote.total + compensation)
            without_sla.append(delivered_value - quote.base_price)
        with_sla = np.asarray(with_sla)
        without_sla = np.asarray(without_sla)
        result.add_row(
            breach_probability,
            float(with_sla.mean()), float(np.percentile(with_sla, 5)),
            float(without_sla.mean()), float(np.percentile(without_sla, 5)),
        )
    result.add_note(
        "expected shape: compensation floors the 5th-percentile surplus; "
        "without an SLA the downside collapses as breaches rise"
    )
    return result


@pytest.mark.benchmark(group="T3")
def test_t3_sla(benchmark):
    result = benchmark.pedantic(run_t3, rounds=1, iterations=1)
    result.print()
    companion = run_t3_compensation()
    companion.print()
    # Compensation floors the downside at every breach level.
    for row in companion.rows:
        assert row[2] > row[4]
    rows = {(row[0], row[1]): row for row in result.rows}
    # Risk-priced premium tracks the fair price within the loading factor.
    for breach_probability in BREACH_LEVELS:
        premium = rows[(breach_probability, "risk-priced")][2]
        fair = rows[(breach_probability, "risk-priced")][3]
        assert premium == pytest.approx(fair * 1.25, rel=1e-6)
    # Flat pricing loses provider money at high risk, risk-priced does not.
    assert rows[(0.6, "flat")][6] < rows[(0.6, "risk-priced")][6]


if __name__ == "__main__":
    run_t3().print()
    run_t3_compensation().print()
