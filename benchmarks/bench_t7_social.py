"""T7 (§6 Socialization): social fusion quality by affinity threshold.

Regenerates the T7 tables.  A clustered user population (communities of
shared taste) with a homophilous social graph; each user ranks a result
pool with (a) their own profile only, (b) social fusion over neighbours
above an affinity threshold, and (c) fusion over *random* users (the
control showing that affinity — not mere crowd signal — carries the
value).  A second table shows how privacy settings shrink the usable
neighbourhood.

Expected shape: fusion with high-affinity neighbours ≥ personal-only;
fusion with random users hurts; stricter privacy leaves fewer visible
neighbours.
"""

import numpy as np
import pytest

from repro import build_agora
from repro.experiments import ExperimentResult, summarize
from repro.personalization import PersonalizedRanker, ProfileStore, UserProfile
from repro.social import (
    AffineNeighbour,
    AffinityIndex,
    PrivacyPolicy,
    PrivacyRegistry,
    SocialGraph,
    SocialRanker,
    Visibility,
)
from repro.workloads import QueryWorkloadGenerator


def _build_community(agora, n_per_cluster=5, noise=0.25):
    """Three interest communities with intra-community friendships."""
    space = agora.topic_space
    rng = agora.sim.rng.stream("t7-users")
    clusters = {
        "jewelry": space.basis("folk-jewelry", 0.9),
        "dance": space.basis("dance-forms", 0.9),
        "fashion": space.basis("fashion-trends", 0.9),
    }
    store = ProfileStore()
    graph = SocialGraph()
    members = {name: [] for name in clusters}
    for cluster_name, centre in sorted(clusters.items()):
        for index in range(n_per_cluster):
            interests = np.clip(
                centre + rng.normal(0, noise, size=space.n_topics), 1e-6, None,
            )
            profile = UserProfile(
                user_id=f"{cluster_name}-{index}", interests=interests,
            )
            store.save(profile)
            members[cluster_name].append(profile)
        for a in members[cluster_name]:
            for b in members[cluster_name]:
                if a.user_id < b.user_id:
                    graph.befriend(a.user_id, b.user_id, strength=0.9)
    return store, graph, members


def _personal_gain(agora, profile, query, item):
    topical = agora.oracle.relevance(query, item)
    personal = agora.topic_space.relevance(profile.interests, item.latent)
    return 0.5 * topical + 0.5 * personal


def _ndcg(agora, profile, query, items, k=10):
    if not items:
        return 0.0
    gains = [_personal_gain(agora, profile, query, item) for item in items[:k]]
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(np.dot(gains, discounts))
    ideal = sorted((_personal_gain(agora, profile, query, item) for item in items),
                   reverse=True)[:k]
    ideal_dcg = float(np.dot(ideal, 1.0 / np.log2(np.arange(2, len(ideal) + 2))))
    return dcg / ideal_dcg if ideal_dcg > 0 else 0.0


def run_t7(seed=47, queries_per_user=4) -> ExperimentResult:
    agora = build_agora(seed=seed, n_sources=8, items_per_source=40,
                        calibration_pairs=300)
    store, graph, members = _build_community(agora)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t7-q"),
    )
    from repro import Consumer

    index = AffinityIndex(store, graph)
    rng = agora.sim.rng.stream("t7-random")
    conditions = {
        "personal_only": [],
        "fusion_affine_0.6": None,   # filled per user
        "fusion_affine_0.3": None,
        "fusion_random_users": None,
    }
    ndcg = {name: [] for name in conditions}
    all_profiles = [store.load(uid) for uid in store.user_ids()]
    for _, cluster_profiles in sorted(members.items()):
        for profile in cluster_profiles[:3]:
            consumer = Consumer(agora, profile, planner="greedy")
            for __ in range(queries_per_user):
                query = workload.interest_query(profile, k=12)
                outcome = consumer.ask(query, personalize=False)
                personal_ranker = PersonalizedRanker(
                    profile, consumer.concept_of, personalization_weight=0.6,
                )
                neighbourhoods = {
                    "personal_only": [],
                    "fusion_affine_0.6": index.neighbourhood(
                        profile, k=4, min_affinity=0.6),
                    "fusion_affine_0.3": index.neighbourhood(
                        profile, k=4, min_affinity=0.3),
                    "fusion_random_users": [
                        AffineNeighbour(p.user_id, 1.0, p)
                        for p in [all_profiles[int(rng.integers(len(all_profiles)))]
                                  for __ in range(4)]
                    ],
                }
                for name, neighbours in neighbourhoods.items():
                    ranker = SocialRanker(personal_ranker, neighbours,
                                          social_weight=0.4)
                    items = ranker.rerank_items(outcome.results)
                    ndcg[name].append(_ndcg(agora, profile, query, items))
    result = ExperimentResult(
        "T7", "Social fusion by affinity (personal NDCG@10)",
        ["condition", "ndcg"],
    )
    for name in ("personal_only", "fusion_affine_0.6", "fusion_affine_0.3",
                 "fusion_random_users"):
        result.add_row(name, summarize(ndcg[name]).mean)
    result.add_note(
        "expected shape: high-affinity fusion ≥ personal-only > random-user fusion"
    )
    result.companion = run_t7_privacy(agora, store, graph)  # type: ignore[attr-defined]
    return result


def run_t7_privacy(agora, store, graph) -> ExperimentResult:
    """How privacy levels shrink the usable neighbourhood."""
    result = ExperimentResult(
        "T7b", "Privacy filtering of the social neighbourhood",
        ["interests_visibility", "mean_visible_neighbours"],
    )
    for label, level in [("public", Visibility.PUBLIC),
                         ("friends", Visibility.FRIENDS),
                         ("private", Visibility.PRIVATE)]:
        privacy = PrivacyRegistry(graph)
        for user_id in store.user_ids():
            policy = PrivacyPolicy(user_id)
            policy.set_level("interests", level)
            privacy.set_policy(policy)
        index = AffinityIndex(store, graph, privacy=privacy)
        counts = [
            len(index.neighbourhood(store.load(user_id), k=100))
            for user_id in store.user_ids()
        ]
        result.add_row(label, float(np.mean(counts)))
    result.add_note("expected shape: public > friends > private (=0)")
    return result


@pytest.mark.benchmark(group="T7")
def test_t7_social(benchmark):
    result = benchmark.pedantic(run_t7, rounds=1, iterations=1)
    result.print()
    result.companion.print()
    rows = {row[0]: row for row in result.rows}
    assert rows["fusion_affine_0.6"][1] >= rows["fusion_random_users"][1]
    privacy_rows = {row[0]: row for row in result.companion.rows}
    assert privacy_rows["public"][1] > privacy_rows["friends"][1] > 0
    assert privacy_rows["private"][1] == 0.0


if __name__ == "__main__":
    result = run_t7()
    result.print()
    result.companion.print()
