"""Tests for declarative SLOs and rolling burn-rate evaluation."""

import pytest

from repro.obs import (
    MetricsRegistry,
    SLOMonitor,
    SLOReport,
    SLOSpec,
    load_slo_report,
    write_slo_report,
)


def error_budget_spec(window=50.0, objective=0.9):
    return SLOSpec(
        name="success", kind="error_budget", objective=objective,
        window=window, bad="errors", total="ops",
    )


def availability_spec(window=50.0, objective=0.9):
    return SLOSpec(
        name="avail", kind="availability", objective=objective,
        window=window, good="ok", total="ops",
    )


def latency_spec(window=50.0, objective=0.9, threshold=1.0):
    return SLOSpec(
        name="lat", kind="latency_quantile", objective=objective,
        window=window, metric="lat", threshold=threshold,
    )


class TestSpecValidation:
    def test_kind_must_be_known(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="throughput", objective=0.9)

    def test_objective_must_be_open_interval(self):
        for objective in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                error_budget_spec(objective=objective)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            error_budget_spec(window=0.0)

    def test_kind_specific_fields_required(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency_quantile", objective=0.9)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", objective=0.9, good="ok")
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="error_budget", objective=0.9, bad="errors")

    def test_budget_is_one_minus_objective(self):
        assert error_budget_spec(objective=0.99).budget == pytest.approx(0.01)

    def test_spec_round_trip(self):
        spec = latency_spec()
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SLOMonitor(registry, [error_budget_spec(), error_budget_spec()])


class TestErrorBudgetBurn:
    def test_burn_rate_is_error_fraction_over_budget(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [error_budget_spec(objective=0.9)])
        registry.counter("ops").inc(100)
        registry.counter("errors").inc(5)
        monitor.sample(10.0)
        (status,) = monitor.evaluate().statuses
        assert status.sli == pytest.approx(0.95)
        assert status.burn_rate == pytest.approx(0.5)
        assert status.events == 100
        assert status.status == "ok"

    def test_status_ladder(self):
        for errors, expected in ((5, "ok"), (10, "warn"), (25, "critical")):
            registry = MetricsRegistry()
            monitor = SLOMonitor(registry, [error_budget_spec(objective=0.9)])
            registry.counter("ops").inc(100)
            registry.counter("errors").inc(errors)
            monitor.sample(1.0)
            (status,) = monitor.evaluate().statuses
            assert status.status == expected, errors

    def test_no_samples_reports_clean(self):
        monitor = SLOMonitor(MetricsRegistry(), [error_budget_spec()])
        (status,) = monitor.evaluate().statuses
        assert status.status == "ok"
        assert status.events == 0
        assert status.burn_rate == 0.0


class TestRollingWindow:
    def test_old_errors_age_out_of_the_window(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [error_budget_spec(window=50.0)])
        # Early burst of errors, sampled at t=10.
        registry.counter("ops").inc(50)
        registry.counter("errors").inc(25)
        monitor.sample(10.0)
        (early,) = monitor.evaluate().statuses
        assert early.status == "critical"
        # A long clean stretch; by t=100 the window [50, 100] starts
        # after the burst's sample, so the errors no longer count.
        registry.counter("ops").inc(50)
        monitor.sample(100.0)
        (late,) = monitor.evaluate().statuses
        assert late.events == 50
        assert late.burn_rate == 0.0
        assert late.status == "ok"

    def test_window_shorter_than_history_uses_expanding_window(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [error_budget_spec(window=1000.0)])
        registry.counter("ops").inc(10)
        registry.counter("errors").inc(1)
        monitor.sample(5.0)
        (status,) = monitor.evaluate().statuses
        # Window predates all history: everything counts from zero state.
        assert status.events == 10
        assert status.sli == pytest.approx(0.9)

    def test_same_time_resample_replaces(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [error_budget_spec()])
        registry.counter("ops").inc(10)
        monitor.sample(5.0)
        registry.counter("ops").inc(10)
        monitor.sample(5.0)
        assert monitor.sample_count == 1
        (status,) = monitor.evaluate().statuses
        assert status.events == 20

    def test_sample_ring_is_capped(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [error_budget_spec()], max_samples=4)
        for tick in range(10):
            monitor.sample(float(tick))
        assert monitor.sample_count == 4


class TestAvailability:
    def test_availability_counts_missing_good_as_errors(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [availability_spec(objective=0.9)])
        registry.counter("ops").inc(20)
        registry.counter("ok").inc(18)
        monitor.sample(1.0)
        (status,) = monitor.evaluate().statuses
        assert status.sli == pytest.approx(0.9)
        assert status.burn_rate == pytest.approx(1.0)
        assert status.status == "warn"


class TestLatencyQuantile:
    def test_bucket_deltas_above_threshold_burn_budget(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [latency_spec(threshold=1.0)])
        histogram = registry.histogram("lat", buckets=(0.5, 1.0, 2.0))
        for value in (0.1, 0.7, 0.9, 1.5):  # one observation above 1.0
            histogram.observe(value)
        monitor.sample(1.0)
        (status,) = monitor.evaluate().statuses
        assert status.events == 4
        assert status.sli == pytest.approx(0.75)
        assert status.burn_rate == pytest.approx(2.5)
        assert status.status == "critical"

    def test_windowed_deltas_only(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [latency_spec(window=50.0, threshold=1.0)])
        histogram = registry.histogram("lat", buckets=(0.5, 1.0, 2.0))
        for __ in range(10):
            histogram.observe(5.0)  # all slow, before the window
        monitor.sample(10.0)
        for __ in range(10):
            histogram.observe(0.1)  # all fast, inside the window
        monitor.sample(100.0)
        (status,) = monitor.evaluate().statuses
        assert status.events == 10
        assert status.burn_rate == 0.0

    def test_unobserved_metric_reports_clean(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, [latency_spec()])
        monitor.sample(1.0)
        (status,) = monitor.evaluate().statuses
        assert status.events == 0
        assert status.status == "ok"


class TestReport:
    def make_report(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(
            registry, [error_budget_spec(), availability_spec()]
        )
        registry.counter("ops").inc(100)
        registry.counter("errors").inc(30)
        registry.counter("ok").inc(95)
        monitor.sample(7.0)
        return monitor.evaluate()

    def test_breached_and_worst_burn(self):
        report = self.make_report()
        assert report.breached  # error budget at 3x
        assert report.worst_burn_rate == pytest.approx(3.0)
        assert report.evaluated_at == 7.0

    def test_render_is_tabular(self):
        text = self.make_report().render()
        assert "success" in text and "critical" in text
        assert SLOReport(evaluated_at=0.0).render() == "(no SLOs configured)"

    def test_file_round_trip(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "slo.json"
        write_slo_report(report, path)
        assert load_slo_report(path) == report


class TestQosWiring:
    def make_monitor(self):
        from repro.qos.monitor import ContractMonitor, default_qos_slos

        registry = MetricsRegistry()
        slos = SLOMonitor(registry, default_qos_slos(window=100.0))
        clock = {"now": 0.0}
        monitor = ContractMonitor(metrics=registry)
        monitor.attach_slos(slos, now_fn=lambda: clock["now"])
        return registry, monitor, clock

    def test_settlements_sample_and_report(self):
        from repro.qos.sla import SLAContract
        from repro.qos.vector import QoSRequirement, QoSVector

        registry, monitor, clock = self.make_monitor()
        contract = SLAContract(
            provider_id="p", consumer_id="u",
            requirement=QoSRequirement(min_completeness=0.8),
            base_price=1.0,
        )
        clock["now"] = 3.0
        monitor.settle(contract, QoSVector(completeness=0.9))
        report = monitor.slo_report()
        assert report is not None
        assert report.evaluated_at == 3.0
        by_name = {status.name: status for status in report.statuses}
        assert by_name["qos-contract-success"].events == 1

    def test_unattached_monitor_reports_none(self):
        from repro.qos.monitor import ContractMonitor

        assert ContractMonitor().slo_report() is None
