"""Interprocedural effect analysis and the shard-safety contract.

Builds a project-wide call graph, infers per-function effect summaries,
propagates them to a fixpoint (:mod:`.fixpoint`), certifies the
``# agora: shard-safe`` declared set (rules AGR101-AGR104,
:mod:`.rules`), and emits the byte-stable ``shard_safety.json``
attestation manifest (:mod:`.manifest`) that the multi-worker scale-out
consumes before dispatching work.

Run it as ``python -m repro.analysis effects [paths...]``.
"""

from repro.analysis.effects.cli import main as effects_cli
from repro.analysis.effects.fixpoint import EffectAnalysis, EffectsResult, analyse
from repro.analysis.effects.manifest import (
    ShardSafetyManifest,
    build_manifest,
    diff_manifests,
    render_manifest,
    write_manifest,
)
from repro.analysis.effects.model import (
    MUTATES_SHARED,
    PURE,
    READS_SHARED,
    UNKNOWN,
    Effect,
)
from repro.analysis.effects.project import ProjectIndex
from repro.analysis.effects.rules import (
    EFFECTS_RULE_IDS,
    build_report,
    effects_violations,
)

__all__ = [
    "EFFECTS_RULE_IDS",
    "MUTATES_SHARED",
    "PURE",
    "READS_SHARED",
    "UNKNOWN",
    "Effect",
    "EffectAnalysis",
    "EffectsResult",
    "ProjectIndex",
    "ShardSafetyManifest",
    "analyse",
    "build_manifest",
    "build_report",
    "diff_manifests",
    "effects_cli",
    "effects_violations",
    "render_manifest",
    "write_manifest",
]
