"""Social relevance fusion and cross-user learning.

"If personalization implies using the user's own profile to customize a
query, socialization implies that other people's profiles should be used
concurrently as well to affect the relevance of an information item" (§6).

The :class:`SocialRanker` extends the personalized blend with an
affinity-weighted vote of the visible neighbourhood:

    score = (1−β)·personal + β·Σₙ aₙ·interestₙ(item) / Σₙ aₙ

It also implements the paper's second direction — "using one's own profile
on queries that others pose to learn from their interests" — by turning
visible peer queries into profile-learning events.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.data.items import InformationItem
from repro.personalization.learning import InteractionEvent, ProfileLearner
from repro.personalization.ranking import PersonalizedRanker
from repro.social.affinity import AffineNeighbour
from repro.uncertainty.results import UncertainMatch, UncertainResultSet

ConceptFn = Callable[[InformationItem], np.ndarray]


class SocialRanker:
    """Ranks results using one's own and one's neighbours' profiles.

    Parameters
    ----------
    personal:
        The user's own personalized ranker.
    neighbours:
        Affine neighbours (already privacy-filtered by the AffinityIndex).
    social_weight:
        β — how much the neighbourhood vote counts against the personal
        score.  β = 0 reduces to pure personalization.
    """

    def __init__(
        self,
        personal: PersonalizedRanker,
        neighbours: Sequence[AffineNeighbour],
        social_weight: float = 0.3,
    ):
        if not 0.0 <= social_weight <= 1.0:
            raise ValueError("social_weight must be in [0, 1]")
        self.personal = personal
        self.neighbours = list(neighbours)
        self.beta = social_weight

    # ------------------------------------------------------------------
    def neighbourhood_interest(self, item: InformationItem) -> float:
        """Affinity-weighted neighbour interest in ``item``."""
        if not self.neighbours:
            return 0.0
        concept = self.personal.concept_fn(item)
        total_affinity = sum(n.affinity for n in self.neighbours)
        if total_affinity <= 0:
            return 0.0
        vote = sum(
            n.affinity * n.profile.interest_in(concept) for n in self.neighbours
        )
        return vote / total_affinity

    def item_score(self, match: UncertainMatch) -> float:
        """Blended personal + neighbourhood score for one match."""
        personal = self.personal.item_score(match)
        if not self.neighbours:
            return personal
        social = self.neighbourhood_interest(match.item)
        return (1.0 - self.beta) * personal + self.beta * social

    def rerank(self, results: UncertainResultSet) -> List[UncertainMatch]:
        """Matches sorted by blended score, best first."""
        scored = [(self.item_score(match), match) for match in results]
        scored.sort(key=lambda pair: (-pair[0], pair[1].item.item_id))
        return [match for __, match in scored]

    def rerank_items(self, results: UncertainResultSet) -> List[InformationItem]:
        """Items of :meth:`rerank`."""
        return [match.item for match in self.rerank(results)]


def learn_from_peer_queries(
    learner: ProfileLearner,
    observer_id: str,
    peer_evidence_items: Sequence[InformationItem],
    weight_action: str = "click",
) -> int:
    """Fold visible peer-query evidence into the observer's profile.

    ``peer_evidence_items`` are the evidence items of queries the observer
    was allowed to see (privacy already enforced upstream).  Each becomes a
    weak interest signal.  Returns the number of events applied.
    """
    count = 0
    for item in peer_evidence_items:
        learner.observe(
            InteractionEvent(
                user_id=observer_id, item=item, action=weight_action, mode="query",
            )
        )
        count += 1
    return count
