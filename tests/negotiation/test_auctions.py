"""Tests for sealed-bid auctions."""

import pytest

from repro.negotiation import (
    AuctionKind,
    CallForProposals,
    Proposal,
    SealedBidAuction,
)
from repro.qos import QoSRequirement, QoSVector, Quote


def _cfp():
    return CallForProposals(
        job_id="job", domain="museum",
        requirement=QoSRequirement(min_completeness=0.5),
        consumer_id="iris",
    )


def _bidder(provider_id, price, quality=0.9, decline=False):
    def bid(cfp):
        if decline:
            return None
        return Proposal(
            provider_id=provider_id, cfp=cfp,
            quote=Quote(base_price=price, premium=0.1 * price,
                        compensation=2 * price),
            promised=QoSVector(response_time=1.0, completeness=quality),
        )

    return bid


class TestFirstPrice:
    def test_cheapest_wins_and_pays_own_bid(self):
        auction = SealedBidAuction(AuctionKind.FIRST_PRICE)
        outcome = auction.run(_cfp(), [_bidder("a", 5.0), _bidder("b", 3.0)])
        assert outcome.winner.provider_id == "b"
        assert outcome.clearing_price == pytest.approx(3.3)  # 3.0 + 10% premium
        assert outcome.contract.total_price == pytest.approx(3.3)

    def test_no_bidders(self):
        outcome = SealedBidAuction().run(_cfp(), [_bidder("a", 5.0, decline=True)])
        assert not outcome.sold
        assert outcome.contract is None


class TestSecondPrice:
    def test_winner_pays_runner_up_price(self):
        auction = SealedBidAuction(AuctionKind.SECOND_PRICE)
        outcome = auction.run(_cfp(), [_bidder("a", 5.0), _bidder("b", 3.0)])
        assert outcome.winner.provider_id == "b"
        assert outcome.clearing_price == pytest.approx(5.5)  # runner-up's total
        assert outcome.contract.total_price == pytest.approx(5.5)

    def test_single_bidder_capped_by_reserve(self):
        auction = SealedBidAuction(AuctionKind.SECOND_PRICE, reserve_price=4.0)
        outcome = auction.run(_cfp(), [_bidder("solo", 2.0)])
        assert outcome.sold
        assert outcome.clearing_price <= 4.0

    def test_winner_never_pays_less_than_first_price(self):
        bidders = [_bidder("a", 5.0), _bidder("b", 3.0), _bidder("c", 4.0)]
        first = SealedBidAuction(AuctionKind.FIRST_PRICE).run(_cfp(), bidders)
        second = SealedBidAuction(AuctionKind.SECOND_PRICE).run(_cfp(), bidders)
        assert second.clearing_price >= first.clearing_price


class TestScreening:
    def test_reserve_rejects_expensive_bids(self):
        auction = SealedBidAuction(reserve_price=2.0)
        outcome = auction.run(_cfp(), [_bidder("pricey", 5.0)])
        assert not outcome.sold
        assert outcome.bids == []

    def test_qualifier_filters(self):
        auction = SealedBidAuction(
            qualifier=lambda p: p.promised.completeness >= 0.8,
        )
        outcome = auction.run(
            _cfp(), [_bidder("shallow", 1.0, quality=0.4),
                     _bidder("deep", 4.0, quality=0.9)],
        )
        assert outcome.winner.provider_id == "deep"

    def test_tie_broken_by_provider_id(self):
        outcome = SealedBidAuction().run(
            _cfp(), [_bidder("b", 3.0), _bidder("a", 3.0)],
        )
        assert outcome.winner.provider_id == "a"

    def test_invalid_reserve(self):
        with pytest.raises(ValueError):
            SealedBidAuction(reserve_price=0.0)

    def test_contract_splits_price_proportionally(self):
        auction = SealedBidAuction(AuctionKind.SECOND_PRICE)
        outcome = auction.run(_cfp(), [_bidder("a", 5.0), _bidder("b", 3.0)])
        contract = outcome.contract
        # base:premium stays 10:1 after rescaling to the clearing price.
        assert contract.premium / contract.base_price == pytest.approx(0.1)
        assert contract.compensation == pytest.approx(6.0)  # unscaled
