"""AGR002 — unseeded / global-state randomness.

All stochastic draws must come from :class:`repro.sim.rng.RngStreams`
named streams (or a generator explicitly seeded from one).  The stdlib
``random`` module and numpy's module-level global RandomState functions
(``np.random.seed``, ``np.random.random``, …) are process-global mutable
state: any library touching them perturbs every other component's draws
and destroys seed-stability.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

#: numpy.random attributes that are legitimate, explicitly-seeded APIs.
_ALLOWED_NUMPY = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "default_rng",
    }
)


class UnseededRandomnessRule(Rule):
    """Ban the stdlib ``random`` module and numpy's global RandomState."""

    rule_id = "AGR002"
    title = "unseeded randomness"
    rationale = (
        "Global RNG state breaks stream isolation; draw from RngStreams "
        "named streams instead."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "benchmarks", "examples"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield self.violation(
                            ctx,
                            node,
                            "stdlib `random` is process-global state; use "
                            "RngStreams named streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.violation(
                        ctx,
                        node,
                        "stdlib `random` is process-global state; use "
                        "RngStreams named streams",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if not isinstance(node.ctx, ast.Load):
                    continue
                resolved = ctx.resolve(node)
                if resolved is None or not resolved.startswith("numpy.random."):
                    continue
                leaf = resolved.split(".")[2]
                if leaf not in _ALLOWED_NUMPY:
                    yield self.violation(
                        ctx,
                        node,
                        f"`{resolved}` uses numpy's global RandomState; draw "
                        "from an RngStreams named stream",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if (
                    resolved == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "`default_rng()` without a seed is entropy-seeded; "
                        "derive the seed from an RngStreams stream name",
                    )
