"""The declared layer DAG of ``repro`` packages.

Each top-level package lists the packages it may import at runtime.  The
graph is acyclic: the observability substrate (``repro.obs``) sits at
the very bottom and imports nothing, the sim kernel directly above it
may import only ``obs`` (a kernel that imports domain code can never be
reasoned about in isolation, and an accidental ``repro.sim`` →
``repro.core`` edge is how determinism bugs smuggle themselves into the
clock).  ``repro.core`` is the composition root at the top;
``repro.workloads`` sits above it because workloads script whole agoras.

``import`` statements inside ``if TYPE_CHECKING:`` blocks are exempt —
they cannot affect runtime behaviour and are the sanctioned way to
annotate against a higher layer.

A few *interface modules* are pinned beneath their home package:
``repro.query.model`` defines the plain query/subquery dataclasses that
sources consume, so ``repro.sources`` may import it even though the rest
of ``repro.query`` (executor, adaptive re-planning) sits above sources.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

#: package -> packages it may import at runtime (besides itself/stdlib).
LAYER_DEPS: Dict[str, FrozenSet[str]] = {
    # The observability substrate is the true bottom: even the sim kernel
    # records into it (span propagation, registry-backed traces), so it
    # must import nothing from the library at all.
    "obs": frozenset(),
    "sim": frozenset({"obs"}),
    "analysis": frozenset(),
    "trust": frozenset(),
    "experiments": frozenset({"obs"}),
    "data": frozenset({"sim"}),
    "net": frozenset({"obs", "sim"}),
    "qos": frozenset({"obs", "sim"}),
    "uncertainty": frozenset({"data", "obs", "sim"}),
    "resilience": frozenset({"net", "obs", "qos", "sim"}),
    "sources": frozenset(
        {"data", "net", "obs", "qos", "sim", "trust", "uncertainty"}
    ),
    "query": frozenset(
        {"data", "obs", "qos", "resilience", "sim", "sources", "uncertainty"}
    ),
    "negotiation": frozenset({"qos", "sim"}),
    "personalization": frozenset({"data", "negotiation", "qos", "uncertainty"}),
    "context": frozenset({"personalization", "qos"}),
    "social": frozenset({"data", "personalization", "trust", "uncertainty"}),
    "multimodal": frozenset(
        {"data", "personalization", "query", "sim", "sources", "uncertainty"}
    ),
    "collaboration": frozenset(
        {"data", "personalization", "query", "uncertainty"}
    ),
    "optimizer": frozenset(
        {"negotiation", "qos", "query", "sim", "sources", "trust", "uncertainty"}
    ),
    "core": frozenset(
        {
            "context",
            "data",
            "multimodal",
            "negotiation",
            "net",
            "obs",
            "optimizer",
            "personalization",
            "qos",
            "query",
            "resilience",
            "sim",
            "social",
            "sources",
            "trust",
            "uncertainty",
        }
    ),
    "workloads": frozenset(
        {
            "core",
            "data",
            "multimodal",
            "obs",
            "personalization",
            "qos",
            "query",
            "sim",
            "social",
            "uncertainty",
        }
    ),
}

#: Modules pinned beneath their home package: importer package -> modules
#: it may import from otherwise-forbidden packages.
INTERFACE_MODULES: Dict[str, FrozenSet[str]] = {
    "sources": frozenset({"repro.query.model"}),
}


def package_of(module: str) -> Optional[str]:
    """Top-level ``repro`` subpackage of a dotted module name, if any."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def check_import(
    importer_module: str, imported_module: str
) -> Tuple[bool, Optional[str]]:
    """Validate one runtime import edge against the layer DAG.

    Returns ``(allowed, importer_package)``.  Imports of non-``repro``
    modules, intra-package imports, and imports from undeclared packages
    (treated as unrestricted, e.g. the ``repro`` facade itself) are
    allowed.
    """
    importer_pkg = package_of(importer_module)
    imported_pkg = package_of(imported_module)
    if imported_pkg is None:
        return True, importer_pkg
    if importer_pkg is None or importer_pkg == imported_pkg:
        return True, importer_pkg
    if importer_pkg not in LAYER_DEPS:
        return True, importer_pkg
    if imported_pkg in LAYER_DEPS.get(importer_pkg, frozenset()):
        return True, importer_pkg
    allowed_modules = INTERFACE_MODULES.get(importer_pkg, frozenset())
    if imported_module in allowed_modules:
        return True, importer_pkg
    if any(imported_module.startswith(mod + ".") for mod in allowed_modules):
        return True, importer_pkg
    return False, importer_pkg
