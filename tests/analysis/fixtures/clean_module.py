# module: repro.core.fixture_clean
"""Fixture: determinism-respecting code no rule should flag."""

import math

import numpy as np


def behave(sim, streams, handlers):
    rng = np.random.default_rng(42)
    stream = streams.spawn("clean")
    for name in sorted(handlers):
        sim.schedule(1.0, name)
    close_enough = math.isclose(sim.now, 10.0)
    return rng, stream, close_enough


def merge(items=None):
    return list(items or [])
