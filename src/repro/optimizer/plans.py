"""Candidate plans and their evaluation.

A plan assigns each job one or more sources (replicating a job across
sources buys completeness at the price of extra cost).  Aggregation rules:

- response time: max over assignments (jobs run in parallel);
- completeness: per job, 1 − Π(1 − cᵢ) over its replicas; mean over jobs;
- freshness / correctness / trust: mean over assignments;
- price: sum of per-assignment prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.optimizer.candidates import CandidateAssignment
from repro.qos.vector import QoSVector, QoSWeights, scalarize
from repro.query.algebra import PlanNode, Retrieve, standard_plan
from repro.query.model import Query
from repro.uncertainty.risk import RiskProfile, risk_neutral


@dataclass
class CandidatePlan:
    """An assignment of jobs to (one or more) sources each."""

    assignments: Dict[str, List[CandidateAssignment]]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("plan must cover at least one job")
        for job_id, replicas in self.assignments.items():
            if not replicas:
                raise ValueError(f"job {job_id} has no assigned source")
            sources = [r.source_id for r in replicas]
            if len(set(sources)) != len(sources):
                raise ValueError(f"job {job_id} assigns a source twice")

    # ------------------------------------------------------------------
    @property
    def job_ids(self) -> List[str]:
        """Sorted ids of the jobs this plan covers."""
        return sorted(self.assignments)

    @property
    def all_assignments(self) -> List[CandidateAssignment]:
        """Every assignment, grouped by job order."""
        flat = []
        for job_id in self.job_ids:
            flat.extend(self.assignments[job_id])
        return flat

    @property
    def source_ids(self) -> List[str]:
        """Sorted distinct sources the plan uses."""
        return sorted({a.source_id for a in self.all_assignments})

    def replication_factor(self) -> float:
        """Mean number of sources per job."""
        return len(self.all_assignments) / len(self.assignments)

    # ------------------------------------------------------------------
    def expected_qos(self) -> QoSVector:
        """Aggregate the consumer's expected QoS for this plan."""
        assignments = self.all_assignments
        response_time = max(a.expected.response_time for a in assignments)
        per_job_completeness = []
        for job_id in self.job_ids:
            misses = 1.0
            for assignment in self.assignments[job_id]:
                misses *= 1.0 - assignment.expected.completeness
            per_job_completeness.append(1.0 - misses)
        return QoSVector(
            response_time=response_time,
            completeness=float(np.mean(per_job_completeness)),
            freshness=float(np.mean([a.expected.freshness for a in assignments])),
            correctness=float(np.mean([a.expected.correctness for a in assignments])),
            trust=float(np.mean([a.expected.trust for a in assignments])),
        )

    def expected_price(self, unit_price: float = 1.0) -> float:
        """Price proxy: cost-mean of each assignment times ``unit_price``."""
        return unit_price * sum(a.cost.mean for a in self.all_assignments)

    def breach_risk(self) -> float:
        """Probability at least one assignment breaches (independent)."""
        survival = 1.0
        for assignment in self.all_assignments:
            survival *= 1.0 - assignment.breach_risk
        return 1.0 - survival

    # ------------------------------------------------------------------
    def to_plan_tree(self, query: Query) -> PlanNode:
        """Materialise as an executable plan tree."""
        leaves = [
            Retrieve(assignment.subquery, assignment.source_id)
            for assignment in self.all_assignments
        ]
        return standard_plan(leaves, k=query.k, tau=query.threshold)

    def signature(self) -> tuple:
        """Hashable identity: which sources serve which jobs."""
        return tuple(
            (job_id, tuple(sorted(a.source_id for a in self.assignments[job_id])))
            for job_id in self.job_ids
        )


@dataclass(frozen=True)
class PlanEvaluation:
    """A plan scored under a user's preferences."""

    plan: CandidatePlan
    qos: QoSVector
    price: float
    utility: float
    risk_adjusted_utility: float
    breach_risk: float


def evaluate_plan(
    plan: CandidatePlan,
    weights: QoSWeights,
    price_sensitivity: float = 0.02,
    risk_profile: Optional[RiskProfile] = None,
    breach_penalty: float = 0.5,
) -> PlanEvaluation:
    """Score ``plan`` for a user.

    The *risk-adjusted* utility treats the plan as a lottery: with
    probability (1 − breach risk) the expected utility materialises; with
    probability breach-risk only ``breach_penalty`` of it does.  The user's
    risk profile turns that lottery into a certainty equivalent — risk
    -averse users pay a premium to avoid risky plans (§2, §5).
    """
    if risk_profile is None:
        risk_profile = risk_neutral()
    qos = plan.expected_qos()
    price = plan.expected_price()
    utility = max(0.0, scalarize(qos, weights) - price_sensitivity * price)
    risk = plan.breach_risk()
    degraded = utility * breach_penalty
    risk_adjusted = risk_profile.certainty_equivalent(
        [utility, degraded], [1.0 - risk, risk]
    )
    return PlanEvaluation(
        plan=plan,
        qos=qos,
        price=price,
        utility=utility,
        risk_adjusted_utility=risk_adjusted,
        breach_risk=risk,
    )
