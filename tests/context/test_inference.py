"""Tests for context inference."""

import pytest

from repro.context import ActivityObservation, Context, ContextInferencer


def _train(inferencer):
    # Browsing museums in the morning = project-start research.
    for __ in range(10):
        inferencer.observe(
            ActivityObservation(mode="browse", dominant_domain="museum"),
            Context(time_of_day="morning", task="project-start",
                    previous_activity="browse"),
        )
    # Direct queries on theses in the evening = paper writing.
    for __ in range(10):
        inferencer.observe(
            ActivityObservation(mode="query", dominant_domain="thesis"),
            Context(time_of_day="evening", task="paper-writing",
                    previous_activity="query"),
        )
    return inferencer


class TestInference:
    def test_untrained_returns_default(self):
        inferencer = ContextInferencer()
        default = Context(task="leisure")
        assert inferencer.infer(
            ActivityObservation("query", "museum"), default=default
        ) == default

    def test_learns_evidence_mapping(self):
        inferencer = _train(ContextInferencer())
        predicted = inferencer.infer(ActivityObservation("browse", "museum"))
        assert predicted.task == "project-start"
        assert predicted.time_of_day == "morning"
        predicted = inferencer.infer(ActivityObservation("query", "thesis"))
        assert predicted.task == "paper-writing"

    def test_unseen_evidence_falls_back_to_marginal(self):
        inferencer = ContextInferencer()
        for __ in range(9):
            inferencer.observe(
                ActivityObservation("query", "thesis"),
                Context(task="paper-writing"),
            )
        inferencer.observe(
            ActivityObservation("browse", "museum"),
            Context(task="leisure"),
        )
        predicted = inferencer.infer(ActivityObservation("feed", "magazine"))
        assert predicted.task == "paper-writing"  # the dominant marginal

    def test_accuracy_on_training_distribution(self):
        inferencer = _train(ContextInferencer())
        samples = [
            (ActivityObservation("browse", "museum"),
             Context(time_of_day="morning", task="project-start",
                     previous_activity="browse")),
            (ActivityObservation("query", "thesis"),
             Context(time_of_day="evening", task="paper-writing",
                     previous_activity="query")),
        ]
        assert inferencer.accuracy(samples) == 1.0

    def test_accuracy_empty(self):
        assert ContextInferencer().accuracy([]) == 0.0

    def test_observation_count(self):
        inferencer = _train(ContextInferencer())
        assert inferencer.observations == 20

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ContextInferencer(smoothing=0.0)
