# module: repro.core.fixture_randomness
"""Fixture: global-state randomness that AGR002 must flag."""

import random  # expect: AGR002

import numpy as np

from random import choice  # expect: AGR002


def draw_things(streams):
    np.random.seed(1)  # expect: AGR002
    noise = np.random.random()  # expect: AGR002
    unseeded = np.random.default_rng()  # expect: AGR002
    seeded = np.random.default_rng(42)  # fine: explicit seed
    stream = streams.spawn("fixture")  # fine: named stream
    return random, choice, noise, unseeded, seeded, stream
