"""Markdown dashboard renderer for one run's observability state.

Turns a metric snapshot (and optionally the span forest and manifest)
into the GitHub-flavoured markdown section the experiment harness
appends to benchmark reports: a provenance header, a counter table, a
distribution table with quantiles, and a per-name span cost table.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.divergence import DivergenceReport, render_report
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOReport
from repro.obs.spans import Span

#: Counter prefix under which the matching engine reports pruning.
PRUNE_PREFIX = "matching.prune."


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4f}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def span_cost_rows(spans: Sequence[Span]) -> List[Tuple[str, int, float, float]]:
    """Aggregate spans by name → (name, count, total time, mean time)."""
    totals: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        totals[span.name].append(span.duration)
    rows: List[Tuple[str, int, float, float]] = []
    for name in sorted(totals):
        durations = totals[name]
        total = sum(durations)
        rows.append((name, len(durations), total, total / len(durations)))
    return rows


def _pruning_lines(registry: MetricsRegistry) -> List[str]:
    """The "Pruning" section: PR 5's top-k skip telemetry, if present."""
    counters = registry.counters()
    if not any(name.startswith(PRUNE_PREFIX) for name in counters):
        return []
    scored = counters.get("matching.prune.candidates_scored", 0.0)
    total = counters.get("matching.prune.candidates_total", 0.0)
    skipped = counters.get("matching.prune.chunks_skipped", 0.0)
    chunks = counters.get("matching.prune.chunks_total", 0.0)
    rows = [
        ["pruned rank calls", _format(counters.get("matching.prune.calls", 0.0))],
        [
            "exhaustive fallbacks",
            _format(counters.get("matching.prune.fallback_calls", 0.0)),
        ],
        ["domain skips", _format(counters.get("matching.prune.domain_skips", 0.0))],
        [
            "candidates scored / total",
            f"{_format(scored)} / {_format(total)}"
            + (f" ({scored / total:.1%})" if total > 0 else ""),
        ],
        [
            "chunks skipped / total",
            f"{_format(skipped)} / {_format(chunks)}"
            + (f" ({skipped / chunks:.1%})" if chunks > 0 else ""),
        ],
    ]
    lines = ["### Pruning", ""]
    lines.extend(_table(["pruning", "value"], rows))
    histogram = registry.histograms().get("matching.prune.scored_fraction")
    if histogram is not None:
        summary = histogram.summary()
        lines.extend(
            [
                "",
                "scored fraction per pruned call: "
                f"mean {summary['mean']:.3f}, p50 {summary['p50']:.3f}, "
                f"p90 {summary['p90']:.3f} (n={_format(summary['count'])})",
            ]
        )
    lines.append("")
    return lines


def render_dashboard(
    registry: MetricsRegistry,
    spans: Optional[Sequence[Span]] = None,
    manifest: Optional[RunManifest] = None,
    title: str = "Run dashboard",
    slo_report: Optional[SLOReport] = None,
    divergence: Optional[DivergenceReport] = None,
) -> str:
    """Render the full markdown dashboard for one run."""
    lines: List[str] = [f"## {title}", ""]
    if manifest is not None:
        lines.extend(
            [
                f"- seed: `{manifest.seed}`",
                f"- config digest: `{manifest.config_digest[:16]}`",
                f"- events processed: {manifest.event_count}",
                f"- spans recorded: {manifest.span_count}",
                f"- manifest digest: `{manifest.digest()[:16]}`",
                "",
            ]
        )
        if manifest.shards:
            lines.extend(["### Shards", ""])
            rows = []
            for shard_id in sorted(manifest.shards, key=int):
                section = manifest.shards[shard_id]
                rows.append(
                    [
                        shard_id,
                        _format(float(section.get("sim_time", 0.0))),
                        str(int(section.get("event_count", 0))),
                        str(int(section.get("span_count", 0))),
                        str(int(section.get("dropped_spans", 0))),
                    ]
                )
            lines.extend(
                _table(["shard", "sim time", "events", "spans", "dropped"], rows)
            )
            lines.append("")
    if slo_report is not None and slo_report.statuses:
        lines.extend(["### SLO burn rates", ""])
        lines.extend(
            _table(
                ["slo", "kind", "sli", "budget", "burn", "events", "status"],
                [
                    [
                        status.name,
                        status.kind,
                        f"{status.sli:.4f}",
                        f"{status.budget:.4f}",
                        f"{status.burn_rate:.2f}",
                        str(status.events),
                        status.status,
                    ]
                    for status in slo_report.statuses
                ],
            )
        )
        lines.append("")
    if divergence is not None:
        lines.extend(["### Divergence", "", "```"])
        lines.append(render_report(divergence))
        lines.extend(["```", ""])
    lines.extend(_pruning_lines(registry))
    counters = registry.counters()
    if counters:
        lines.extend(["### Counters", ""])
        lines.extend(
            _table(
                ["counter", "value"],
                [[name, _format(value)] for name, value in counters.items()],
            )
        )
        lines.append("")
    gauges = registry.gauges()
    if gauges:
        lines.extend(["### Gauges", ""])
        lines.extend(
            _table(
                ["gauge", "value"],
                [[name, _format(value)] for name, value in gauges.items()],
            )
        )
        lines.append("")
    histograms = registry.histograms()
    if histograms:
        lines.extend(["### Distributions", ""])
        rows = []
        for name, histogram in histograms.items():
            summary = histogram.summary()
            rows.append(
                [
                    name,
                    _format(summary["count"]),
                    _format(summary["mean"]),
                    _format(summary["p50"]),
                    _format(summary["p90"]),
                    _format(summary["p99"]),
                    _format(summary["max"]),
                ]
            )
        lines.extend(
            _table(["distribution", "count", "mean", "p50", "p90", "p99", "max"], rows)
        )
        lines.append("")
    if spans:
        lines.extend(["### Span costs", ""])
        lines.extend(
            _table(
                ["span", "count", "total time", "mean time"],
                [
                    [name, str(count), _format(total), _format(mean)]
                    for name, count, total, mean in span_cost_rows(spans)
                ],
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def append_dashboard(
    path: Union[str, Path],
    registry: MetricsRegistry,
    spans: Optional[Sequence[Span]] = None,
    manifest: Optional[RunManifest] = None,
    title: str = "Run dashboard",
    slo_report: Optional[SLOReport] = None,
    divergence: Optional[DivergenceReport] = None,
) -> None:
    """Append the rendered dashboard to a markdown report file."""
    with open(path, "a") as handle:
        handle.write(
            "\n"
            + render_dashboard(registry, spans, manifest, title, slo_report, divergence)
        )
