"""Agora configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.resilience.policy import ResilienceConfig

TOPOLOGY_KINDS = ("random", "small-world", "scale-free", "star")
PLANNER_KINDS = ("trading", "exhaustive", "greedy", "local")


@dataclass
class AgoraConfig:
    """Tunable knobs for building an agora.

    Defaults give a laptop-scale agora: 10 sources over the five Iris
    domains, a random overlay, churn off.
    """

    seed: int = 7
    n_sources: int = 10
    items_per_source: int = 60
    n_topics: int = 10
    feature_dimensions: int = 32
    vocabulary_size: int = 2000
    topology: str = "random"
    topology_edge_probability: float = 0.3
    enable_churn: bool = False
    mean_uptime: float = 500.0
    mean_downtime: float = 20.0
    load_capacity: float = 50.0
    calibration_pairs: int = 600
    lifter_sample_size: int = 120
    feature_set: str = "content_metadata"
    planner: str = "trading"
    relevance_threshold: float = 0.75
    start_update_streams: bool = False
    #: attach a causal span tracer to the kernel and record per-query
    #: span trees (off by default: tracing costs a few percent and most
    #: runs only need the metrics registry, which is always on)
    enable_tracing: bool = False
    #: hook a sim-time profiler into kernel dispatch, attributing
    #: virtual-time deltas and event counts to span stacks; pairs with
    #: ``enable_tracing`` for named stacks (without it every sample
    #: lands in the unattributed bucket)
    enable_profiling: bool = False
    #: sample and evaluate the stock observe-only QoS SLOs
    #: (:func:`repro.qos.monitor.default_qos_slos`) at each settlement
    enable_slos: bool = False
    #: hook a flight recorder into kernel dispatch: one byte-stable log
    #: record per event (seq, time, kind, callback, span, RNG draws)
    #: with periodic digest checkpoints, so two runs can be aligned by
    #: ``python -m repro.obs divergence`` down to the first forked event
    enable_flight_recorder: bool = False
    #: fan retrieve-path ranking out over a persistent shard-worker pool
    #: (:mod:`repro.parallel`); answers are bitwise identical with this
    #: on or off — the pool buys host-level parallelism, not different
    #: results — and simulated timings are untouched either way
    enable_parallel: bool = False
    #: worker count for the shard pool (used when ``enable_parallel`` or
    #: when :meth:`repro.core.agora.Agora.start_parallel` is called)
    n_shards: int = 2
    #: default consumer-side resilience policies (off unless enabled);
    #: individual consumers may override with their own config
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    overpromise_range: Tuple[float, float] = (0.0, 0.3)
    coverage_range: Tuple[float, float] = (0.6, 1.0)
    error_rate_range: Tuple[float, float] = (0.0, 0.15)
    freshness_lag_range: Tuple[float, float] = (0.0, 20.0)

    def __post_init__(self) -> None:
        if self.n_sources < 1:
            raise ValueError("n_sources must be >= 1")
        if self.items_per_source < 0:
            raise ValueError("items_per_source must be non-negative")
        if self.topology not in TOPOLOGY_KINDS:
            raise ValueError(f"topology must be one of {TOPOLOGY_KINDS}")
        if self.planner not in PLANNER_KINDS:
            raise ValueError(f"planner must be one of {PLANNER_KINDS}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        for name in ("overpromise_range", "coverage_range",
                     "error_rate_range", "freshness_lag_range"):
            low, high = getattr(self, name)
            if low > high:
                raise ValueError(f"{name}: low must be <= high")
