"""Fuzz tests: CollectionIndex invalidation under interleaved writes.

The pruning layer hangs score ceilings off :class:`CollectionIndex` via
two protocols: ``dirty_from``/``checkpoint`` (positional cache coherence
for prepared candidate blocks) and the per-bucket stat cache (bound
aggregates, cleared wholesale on any write).  Both are fuzzed here
against naive reference models over arbitrary interleavings of appends,
prefix inserts, checkpoints and stat stores — a cached value observed
through either protocol must always describe the bucket's *current*
contents.
"""

from bisect import bisect_right, insort

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    InformationItem,
    TopicSpace,
    Vocabulary,
)
from repro.sim import RngStreams
from repro.sources import CollectionIndex

pytestmark = [pytest.mark.property]

_DOMAINS = ["alpha", "beta", None]  # None = the ALL bucket key


def _item(index: int, domain: str) -> InformationItem:
    return InformationItem(
        item_id=f"fz-{domain}-{index}", domain=domain, latent=np.zeros(2)
    )


# An op is ("add", domain_index in {0,1}, visible_at) or
# ("checkpoint", domain_index in {0,1,2}) — adds never target the ALL
# bucket directly (CollectionIndex.add maintains it implicitly).
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(min_value=0, max_value=1),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        st.tuples(st.just("checkpoint"), st.integers(min_value=0, max_value=2)),
    ),
    min_size=0,
    max_size=40,
)


class _ReferenceModel:
    """Naive re-implementation of bucket order + dirty tracking."""

    def __init__(self):
        self.seq = 0
        self.buckets = {None: []}
        self.dirty = {}

    def add(self, domain, visible_at):
        entry = (visible_at, self.seq)
        self.seq += 1
        for key in (None, domain):
            bucket = self.buckets.setdefault(key, [])
            position = bisect_right(bucket, entry)
            insort(bucket, entry)
            if key not in self.dirty or position < self.dirty[key]:
                self.dirty[key] = position

    def checkpoint(self, domain):
        self.dirty.pop(domain, None)


class TestDirtyFromFuzz:
    @settings(max_examples=120, deadline=None)
    @given(ops=_OPS)
    def test_dirty_from_matches_reference_model(self, ops):
        """``dirty_from`` is exactly the smallest touched position."""
        index = CollectionIndex()
        model = _ReferenceModel()
        counter = 0
        for op in ops:
            if op[0] == "add":
                __, domain_index, visible_at = op
                domain = _DOMAINS[domain_index]
                index.add(_item(counter, domain), visible_at)
                model.add(domain, visible_at)
                counter += 1
            else:
                domain = _DOMAINS[op[1]]
                index.checkpoint(domain)
                model.checkpoint(domain)
            for key in _DOMAINS:
                assert index.dirty_from(key) == model.dirty.get(key), (
                    f"bucket {key!r} after {op}"
                )

    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_bucket_order_matches_reference_model(self, ops):
        """Buckets stay sorted by (visible_at, seq) under any interleaving."""
        index = CollectionIndex()
        model = _ReferenceModel()
        counter = 0
        items = {}
        for op in ops:
            if op[0] != "add":
                continue
            __, domain_index, visible_at = op
            domain = _DOMAINS[domain_index]
            item = _item(counter, domain)
            items[model.seq] = item
            index.add(item, visible_at)
            model.add(domain, visible_at)
            counter += 1
        for key in _DOMAINS:
            expected = [items[seq] for __, seq in model.buckets.get(key, [])]
            assert index.bucket_items(key) == expected


class TestStatCacheFuzz:
    @settings(max_examples=120, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("add"),
                    st.integers(min_value=0, max_value=1),
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                ),
                st.tuples(st.just("store"), st.integers(min_value=0, max_value=2)),
                st.tuples(st.just("probe"), st.integers(min_value=0, max_value=2)),
                st.tuples(
                    st.just("checkpoint"), st.integers(min_value=0, max_value=2)
                ),
            ),
            min_size=0,
            max_size=50,
        )
    )
    def test_cached_stat_never_describes_stale_contents(self, ops):
        """A non-None ``cached_stat`` always matches the current bucket.

        The stored value is a fingerprint of the bucket contents at store
        time; any write to the bucket must drop it.  ``checkpoint`` is
        interleaved to prove the two invalidation protocols are
        independent — checkpointing never resurrects or clears stats.
        """
        index = CollectionIndex()
        counter = 0
        for op in ops:
            if op[0] == "add":
                __, domain_index, visible_at = op
                index.add(_item(counter, _DOMAINS[domain_index]), visible_at)
                counter += 1
            elif op[0] == "store":
                key = _DOMAINS[op[1]]
                fingerprint = tuple(i.item_id for i in index.bucket_items(key))
                index.store_stat("fingerprint", fingerprint, key)
            elif op[0] == "checkpoint":
                index.checkpoint(_DOMAINS[op[1]])
            else:
                key = _DOMAINS[op[1]]
                cached = index.cached_stat("fingerprint", key)
                current = tuple(i.item_id for i in index.bucket_items(key))
                assert cached is None or cached == current
            # The invariant must also hold between explicit probes.
            for key in _DOMAINS:
                cached = index.cached_stat("fingerprint", key)
                current = tuple(i.item_id for i in index.bucket_items(key))
                assert cached is None or cached == current


@pytest.fixture(scope="module")
def bounds_world():
    """A fitted engine plus a mixed item pool for bound-cache fuzzing."""
    from repro.uncertainty import build_matching_engine

    streams = RngStreams(seed=909).spawn("bounds")
    space = TopicSpace(8)
    vocabulary = Vocabulary(
        space, streams.spawn("v"), vocabulary_size=300, terms_per_topic=40
    )
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=16
    )
    extractor = FeatureExtractor(16, streams.spawn("f"))
    spec = DomainSpec(
        name="pool",
        topic_prior={"folk-jewelry": 0.5, "tourism": 0.5},
        type_mix={"text": 0.4, "media": 0.4, "compound": 0.2},
        concentration=0.5,
    )
    sample = corpus.generate(
        DomainSpec(
            name="sample",
            topic_prior={"folk-jewelry": 0.5, "dance-forms": 0.5},
            type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        ),
        30,
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    pool = corpus.generate(spec, 40)
    return engine, pool


class TestBoundAggregateCoherence:
    @settings(max_examples=60, deadline=None)
    @given(
        cut_points=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=6
        ),
    )
    def test_incremental_extend_equals_rebuild(self, bounds_world, cut_points):
        """Bounds grown by ``extend`` == bounds rebuilt from scratch.

        The source's block cache appends live-ingested items to existing
        :class:`BlockBounds`; the resulting per-chunk stats and aggregate
        must be indistinguishable from a cold rebuild over the same item
        sequence, or cached ceilings would drift from reality.
        """
        engine, pool = bounds_world
        incremental = engine.prepare([]).bounds()
        fed = []
        cursor = 0
        for cut in sorted(cut_points):
            chunk = pool[cursor:cut]
            cursor = max(cursor, cut)
            if not chunk:
                continue
            incremental.extend(chunk)
            fed.extend(chunk)
        rebuilt = engine.prepare(fed).bounds()
        assert len(incremental) == len(fed)
        assert incremental.aggregate.as_dict() == rebuilt.aggregate.as_dict()
        assert [c.as_dict() for c in incremental.chunks] == [
            c.as_dict() for c in rebuilt.chunks
        ]
        # And the ceilings derived from them agree for a real query.
        if fed:
            state = rebuilt.query_state(fed[0])
            if state is not None:
                a = [s.ceiling(state) for __, __, s in incremental.chunk_ranges(len(fed))]
                b = [s.ceiling(state) for __, __, s in rebuilt.chunk_ranges(len(fed))]
                assert a == b
