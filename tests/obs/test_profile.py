"""Tests for the sim-time profiler and its kernel dispatch hook."""

import json

import pytest

from repro.obs import SimProfiler, SpanTracer, parse_folded, render_hotspots
from repro.obs.profile import DROPPED, SIM_TIME_TICKS, UNATTRIBUTED, write_profile
from repro.sim.kernel import Simulator


def run_profiled(seed=3):
    """A tiny traced + profiled kernel run with a two-level span stack."""
    tracer = SpanTracer()
    profiler = SimProfiler()
    sim = Simulator(seed=seed, tracer=tracer, profiler=profiler)

    def leaf():
        pass

    def branch():
        with tracer.span("branch"):
            sim.schedule(1.0, leaf, tag="leaf")

    with tracer.span("root"):
        sim.schedule(2.0, branch, tag="branch")
        sim.schedule(5.0, leaf, tag="tail")
    sim.run()
    return tracer, profiler


class TestKernelHook:
    def test_sim_time_attributes_to_scheduling_stack(self):
        tracer, profiler = run_profiled()
        stacks = dict(parse_folded(profiler.folded_text(tracer.spans())))
        # branch (t=2) and tail (t=5) were scheduled under "root"; the
        # leaf (t=3) was scheduled under "root;branch".  Each event gets
        # the delta since the previous one: 2.0 + 2.0 for root, 1.0 for
        # the branch leaf.
        assert stacks["root"] == round(4.0 * SIM_TIME_TICKS)
        assert stacks["root;branch"] == round(1.0 * SIM_TIME_TICKS)
        assert profiler.event_count == 3
        assert profiler.total_sim_time == pytest.approx(5.0)

    def test_event_weighted_folded(self):
        tracer, profiler = run_profiled()
        stacks = dict(
            parse_folded(profiler.folded_text(tracer.spans(), weight="events"))
        )
        assert stacks == {"root": 2, "root;branch": 1}

    def test_unattributed_events_land_in_their_own_bucket(self):
        profiler = SimProfiler()
        sim = Simulator(seed=1, profiler=profiler)  # no tracer at all
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert dict(parse_folded(profiler.folded_text([]))) == {
            UNATTRIBUTED: round(4.0 * SIM_TIME_TICKS)
        }

    def test_missing_span_maps_to_dropped(self):
        profiler = SimProfiler()
        profiler.record(999, 2.0)
        stacks = dict(parse_folded(profiler.folded_text([])))
        assert stacks == {DROPPED: round(2.0 * SIM_TIME_TICKS)}

    def test_disabled_profiler_records_nothing(self):
        profiler = SimProfiler(enabled=False)
        profiler.record(None, 5.0)
        assert profiler.event_count == 0
        assert profiler.folded_text([]) == ""


class TestDeterminism:
    def test_same_seed_folded_output_is_identical(self):
        first_tracer, first = run_profiled(seed=9)
        second_tracer, second = run_profiled(seed=9)
        assert first.folded_text(first_tracer.spans()) == second.folded_text(
            second_tracer.spans()
        )


class TestReporting:
    def test_hotspots_rank_by_sim_time(self):
        tracer, profiler = run_profiled()
        spots = profiler.hotspots(tracer.spans(), top=10)
        assert [spot.stack for spot in spots] == ["root", "root;branch"]
        assert spots[0].sim_time == pytest.approx(4.0)
        assert spots[0].events == 2

    def test_render_hotspots_table(self):
        tracer, profiler = run_profiled()
        text = render_hotspots(
            profiler.hotspots(tracer.spans()), profiler.total_sim_time
        )
        assert "stack" in text.splitlines()[0]
        assert "root;branch" in text
        assert render_hotspots([], 0.0) == "(no profile samples)"

    def test_folded_rejects_unknown_weight(self):
        with pytest.raises(ValueError):
            SimProfiler().folded([], weight="wall_clock")

    def test_parse_folded_round_trip_and_errors(self):
        lines = "a;b 3\n\nc 4\n"
        assert parse_folded(lines) == [("a;b", 3), ("c", 4)]
        with pytest.raises(ValueError):
            parse_folded("justonetoken\n")
        with pytest.raises(ValueError):
            parse_folded("stack notanumber\n")

    def test_write_profile_artifacts(self, tmp_path):
        tracer, profiler = run_profiled()
        written = write_profile(tmp_path, profiler, tracer.spans(), top=5)
        assert sorted(written) == ["folded", "profile"]
        folded = (tmp_path / "profile.folded").read_text()
        assert parse_folded(folded)  # parseable, non-empty
        payload = json.loads((tmp_path / "profile.json").read_text())
        assert payload["total_events"] == 3
        assert payload["hotspots"][0]["stack"] == "root"
