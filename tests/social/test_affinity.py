"""Tests for affinity computation."""

import numpy as np
import pytest

from repro.personalization import ProfileStore, UserProfile
from repro.social import (
    AffinityIndex,
    PrivacyPolicy,
    PrivacyRegistry,
    SocialGraph,
    Visibility,
    affinity,
)


def _profile(user_id, interests):
    return UserProfile(user_id=user_id, interests=np.asarray(interests, float))


@pytest.fixture
def world():
    graph = SocialGraph()
    graph.befriend("iris", "jason")
    graph.add_user("twin")       # same interests, no social tie
    graph.add_user("stranger")
    store = ProfileStore()
    store.save(_profile("iris", [0.8, 0.2]))
    store.save(_profile("jason", [0.2, 0.8]))
    store.save(_profile("twin", [0.8, 0.2]))
    store.save(_profile("stranger", [0.0, 1.0]))
    return graph, store


class TestAffinityFunction:
    def test_bounds(self, world):
        graph, store = world
        value = affinity(store.load("iris"), store.load("jason"), graph)
        assert 0.0 <= value <= 1.0

    def test_blend_weights(self, world):
        graph, store = world
        iris = store.load("iris")
        twin = store.load("twin")
        jason = store.load("jason")
        interest_only = affinity(iris, twin, graph, interest_weight=1.0)
        social_only = affinity(iris, jason, graph, interest_weight=0.0)
        assert interest_only == pytest.approx(1.0)
        assert social_only == pytest.approx(0.5)  # proximity 1/(1+1)

    def test_invalid_weight(self, world):
        graph, store = world
        with pytest.raises(ValueError):
            affinity(store.load("iris"), store.load("jason"), graph, interest_weight=2.0)


class TestAffinityIndex:
    def test_neighbourhood_ranked(self, world):
        graph, store = world
        index = AffinityIndex(store, graph)
        neighbours = index.neighbourhood(store.load("iris"), k=3)
        assert neighbours[0].user_id == "twin"  # highest blended affinity
        assert all(
            a.affinity >= b.affinity for a, b in zip(neighbours, neighbours[1:])
        )

    def test_self_excluded(self, world):
        graph, store = world
        index = AffinityIndex(store, graph)
        neighbours = index.neighbourhood(store.load("iris"), k=10)
        assert all(n.user_id != "iris" for n in neighbours)

    def test_min_affinity_filters(self, world):
        graph, store = world
        index = AffinityIndex(store, graph)
        neighbours = index.neighbourhood(store.load("iris"), k=10, min_affinity=0.9)
        assert all(n.affinity >= 0.9 for n in neighbours)

    def test_privacy_filters_neighbours(self, world):
        graph, store = world
        privacy = PrivacyRegistry(graph)
        # Default policy: interests visible to friends only.
        index = AffinityIndex(store, graph, privacy=privacy)
        neighbours = index.neighbourhood(store.load("iris"), k=10)
        assert [n.user_id for n in neighbours] == ["jason"]

    def test_public_interests_visible_to_all(self, world):
        graph, store = world
        privacy = PrivacyRegistry(graph)
        open_policy = PrivacyPolicy(
            "twin", levels={"interests": Visibility.PUBLIC}
        )
        privacy.set_policy(open_policy)
        index = AffinityIndex(store, graph, privacy=privacy)
        neighbours = index.neighbourhood(store.load("iris"), k=10)
        assert {n.user_id for n in neighbours} == {"jason", "twin"}

    def test_invalid_params(self, world):
        graph, store = world
        index = AffinityIndex(store, graph)
        with pytest.raises(ValueError):
            index.neighbourhood(store.load("iris"), k=0)
        with pytest.raises(ValueError):
            index.neighbourhood(store.load("iris"), min_affinity=1.5)
