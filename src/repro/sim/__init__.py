"""Discrete-event simulation kernel (substrate).

Public API:

- :class:`Simulator` — the event loop with a virtual clock.
- :class:`Event`, :class:`EventQueue` — scheduled callbacks.
- :class:`RngStreams`, :class:`ScopedStreams` — deterministic named RNG streams.
- :class:`TraceRecorder` — counters, timers and event records.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.rng import RngStreams, ScopedStreams, derive_seed
from repro.sim.trace import TimerStats, TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "RngStreams",
    "ScopedStreams",
    "SimulationError",
    "Simulator",
    "TimerStats",
    "TraceRecord",
    "TraceRecorder",
    "derive_seed",
]
