"""Tests for observable feature extraction."""

import numpy as np
import pytest

from repro.data import FeatureExtractor, FeatureSetSpec, MediaObject
from repro.sim import RngStreams


@pytest.fixture
def extractor():
    return FeatureExtractor(true_dimensions=16, streams=RngStreams(7).spawn("feat"))


def _media(item_id, features):
    return MediaObject(
        item_id=item_id, domain="museum", latent=np.array([1.0]),
        true_features=np.asarray(features, dtype=float),
    )


class TestSpecs:
    def test_invalid_fidelity(self):
        with pytest.raises(ValueError):
            FeatureSetSpec("bad", 4, fidelity=1.5, noise_scale=0.1)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FeatureSetSpec("bad", 0, fidelity=0.5, noise_scale=0.1)

    def test_negative_noise(self):
        with pytest.raises(ValueError):
            FeatureSetSpec("bad", 4, fidelity=0.5, noise_scale=-0.1)

    def test_default_sets_present(self, extractor):
        names = extractor.feature_set_names()
        assert "color_histogram" in names
        assert "content_metadata" in names

    def test_unknown_set_raises(self, extractor):
        with pytest.raises(KeyError):
            extractor.spec("no-such-set")


class TestExtraction:
    def test_output_dimension_matches_spec(self, extractor):
        rng = np.random.default_rng(0)
        obj = _media("m1", rng.normal(size=16))
        vector = extractor.extract(obj, "texture")
        assert vector.shape == (extractor.spec("texture").dimensions,)

    def test_output_is_normalised(self, extractor):
        rng = np.random.default_rng(0)
        obj = _media("m1", rng.normal(size=16))
        vector = extractor.extract(obj, "color_histogram")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_extraction_is_deterministic(self, extractor):
        rng = np.random.default_rng(0)
        obj = _media("m1", rng.normal(size=16))
        a = extractor.extract(obj, "shape")
        b = extractor.extract(obj, "shape")
        # Extraction is a pure function of (feature set, item): repeated
        # calls reproduce the same vector, and a second extractor with
        # the same seed agrees bitwise.
        np.testing.assert_array_equal(a, b)
        other = FeatureExtractor(16, RngStreams(7).spawn("feat"))
        c = other.extract(obj, "shape")
        np.testing.assert_array_equal(a, c)

    def test_wrong_feature_dim_rejected(self, extractor):
        obj = _media("m1", np.ones(4))
        with pytest.raises(ValueError):
            extractor.extract(obj, "texture")

    def test_high_fidelity_preserves_similarity_better(self, extractor):
        """Items with identical truth should look more alike under
        content_metadata (fidelity .85) than color_histogram (.45)."""
        rng = np.random.default_rng(1)
        truth = rng.normal(size=16)
        pairs = [(_media(f"a{i}", truth), _media(f"b{i}", truth)) for i in range(30)]

        def mean_cosine(feature_set):
            sims = []
            for a, b in pairs:
                va = extractor.extract(a, feature_set)
                vb = extractor.extract(b, feature_set)
                sims.append(float(np.dot(va, vb)))
            return np.mean(sims)

        assert mean_cosine("content_metadata") > mean_cosine("color_histogram")

    def test_extract_many_shape(self, extractor):
        rng = np.random.default_rng(0)
        objs = [_media(f"m{i}", rng.normal(size=16)) for i in range(5)]
        matrix = extractor.extract_many(objs, "texture")
        assert matrix.shape == (5, extractor.spec("texture").dimensions)

    def test_extract_many_empty(self, extractor):
        matrix = extractor.extract_many([], "texture")
        assert matrix.shape == (0, extractor.spec("texture").dimensions)


class TestCombined:
    def test_combined_spec_dimensions(self, extractor):
        spec = extractor.combined_spec(["color_histogram", "texture"], label="combo")
        expected = (
            extractor.spec("color_histogram").dimensions
            + extractor.spec("texture").dimensions
        )
        assert spec.dimensions == expected

    def test_combined_cost_sums(self, extractor):
        spec = extractor.combined_spec(["color_histogram", "texture"], label="combo")
        assert spec.cost == pytest.approx(
            extractor.spec("color_histogram").cost + extractor.spec("texture").cost
        )

    def test_extract_combined(self, extractor):
        extractor.combined_spec(["color_histogram", "shape"], label="combo")
        rng = np.random.default_rng(0)
        obj = _media("m1", rng.normal(size=16))
        vector = extractor.extract_combined(obj, "combo")
        assert vector.shape == (extractor.spec("combo").dimensions,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_extract_combined_unregistered(self, extractor):
        with pytest.raises(KeyError):
            extractor.extract_combined(_media("m", np.ones(16)), "nope")

    def test_empty_combination_rejected(self, extractor):
        with pytest.raises(ValueError):
            extractor.combined_spec([], label="empty")
