"""Deterministic partitioning of candidate pools and domains onto shards.

Two placement modes, both pure functions of their inputs:

- **slice mode** — one candidate pool split into ``n_shards`` contiguous
  ranges (:func:`slice_ranges`), one range per worker.  Used by the
  engine-level fan-out (``ShardPool.rank``/``rank_topk``/``score_many``):
  every worker scores its slice of the same pool.
- **domain mode** — the registry's domains distributed round-robin over
  sorted domain names (:func:`partition_domains`), so each worker owns
  whole domains.  Used by the agora's per-source rank routing: one
  source×domain block lives entirely on one worker.

Determinism matters more than balance here: the same inputs must place
the same items on the same shards in every run, or two same-seed runs
could not be compared bitwise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


# agora: shard-safe
def slice_ranges(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_items)`` into ``n_shards`` contiguous ranges.

    The first ``n_items % n_shards`` ranges get one extra item, so sizes
    differ by at most one.  Empty ranges are kept (a worker with nothing
    to do still gets a well-defined ``(start, start)`` range), which
    keeps worker indexing positional.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    base, extra = divmod(n_items, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        width = base + (1 if shard < extra else 0)
        ranges.append((start, start + width))
        start += width
    return ranges


# agora: shard-safe
def partition_domains(domains: Sequence[str], n_shards: int) -> Dict[str, int]:
    """Assign each domain a worker index, round-robin over sorted names.

    Sorting first makes the assignment independent of input order; the
    round-robin spreads domains evenly.  Workers are indexed ``0 ..
    n_shards - 1``.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return {
        domain: index % n_shards
        for index, domain in enumerate(sorted(set(domains)))
    }


# agora: shard-safe
def stable_worker_for(name: str, n_shards: int) -> int:
    """A deterministic worker index for a name outside any partition map.

    SHA-256 of the name modulo the shard count: stable across runs,
    platforms and ``PYTHONHASHSEED`` — used for domains that appear after
    the initial partition (e.g. the whole-collection ``None`` bucket).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % n_shards


@dataclass(frozen=True)
class Placement:
    """Where one contiguous run of a registered pool lives.

    ``worker`` holds pool positions ``[start, stop)``; positions are
    global (coordinator-side) indices, so merged partial results can be
    mapped straight back to items.
    """

    worker: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be non-negative")
        if not 0 <= self.start <= self.stop:
            raise ValueError("need 0 <= start <= stop")

    @property
    def width(self) -> int:
        """Number of pool positions this placement covers."""
        return self.stop - self.start


# agora: shard-safe
def slice_placements(n_items: int, n_shards: int) -> List[Placement]:
    """Slice-mode placements: one contiguous range per worker."""
    return [
        Placement(worker=index, start=start, stop=stop)
        for index, (start, stop) in enumerate(slice_ranges(n_items, n_shards))
    ]


# agora: shard-safe
def single_placement(n_items: int, worker: int) -> List[Placement]:
    """Domain-mode placement: the whole pool on one worker."""
    return [Placement(worker=worker, start=0, stop=n_items)]
