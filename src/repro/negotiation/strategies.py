"""Concession strategies.

A strategy decides the utility level an agent demands at each moment of
the negotiation.  Classic families (Faratin et al., echoed in the paper's
Rosenschein & Zlotkin reference):

- time-dependent: Boulware (concede late), Conceder (concede early),
  Linear — all special cases of an exponent ``e`` on normalised time;
- behaviour-dependent: Tit-for-Tat mirrors the opponent's concessions;
- Firm: never concedes (take-it-or-leave-it baseline).

Personalization hook: a user's profile carries a *negotiation style* that
maps directly to one of these strategies (§5: "different levels of ability
to negotiate with the merchant").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence


class ConcessionStrategy(ABC):
    """Maps negotiation progress to the utility the agent insists on."""

    #: highest utility demanded (at t=0)
    start_utility: float = 0.95

    @abstractmethod
    def target(self, t: float, own_floor: float, opponent_utilities: Sequence[float]) -> float:
        """Demanded own-utility at normalised time ``t`` ∈ [0, 1].

        ``own_floor`` is the reservation utility; targets never go below
        it.  ``opponent_utilities`` is the history of the opponent's offers
        valued by *our* utility (for behaviour-dependent strategies).
        """

    @staticmethod
    def _check_time(t: float) -> None:
        if not 0.0 <= t <= 1.0:
            raise ValueError("t must be in [0, 1]")


@dataclass
class TimeDependentStrategy(ConcessionStrategy):
    """Faratin-style time-dependent concession.

    target(t) = floor + (start − floor) · (1 − t^(1/e))

    - ``e`` < 1: Boulware — holds firm, concedes only near the deadline.
    - ``e`` = 1: linear concession.
    - ``e`` > 1: Conceder — gives ground early.
    """

    e: float = 1.0
    start_utility: float = 0.95
    name: str = "time-dependent"

    def __post_init__(self) -> None:
        if self.e <= 0:
            raise ValueError("exponent e must be positive")
        if not 0.0 <= self.start_utility <= 1.0:
            raise ValueError("start_utility must be in [0, 1]")

    def target(self, t, own_floor, opponent_utilities) -> float:
        """Demanded own-utility at normalised time ``t``."""
        self._check_time(t)
        span = max(0.0, self.start_utility - own_floor)
        return own_floor + span * (1.0 - t ** (1.0 / self.e))


def boulware(e: float = 0.2, start_utility: float = 0.95) -> TimeDependentStrategy:
    """A tough negotiator (concedes late)."""
    if not 0 < e < 1:
        raise ValueError("boulware needs 0 < e < 1")
    return TimeDependentStrategy(e=e, start_utility=start_utility, name="boulware")


def conceder(e: float = 3.0, start_utility: float = 0.95) -> TimeDependentStrategy:
    """A soft negotiator (concedes early)."""
    if e <= 1:
        raise ValueError("conceder needs e > 1")
    return TimeDependentStrategy(e=e, start_utility=start_utility, name="conceder")


def linear(start_utility: float = 0.95) -> TimeDependentStrategy:
    """A linear-concession negotiator."""
    return TimeDependentStrategy(e=1.0, start_utility=start_utility, name="linear")


@dataclass
class TitForTatStrategy(ConcessionStrategy):
    """Behaviour-dependent: reciprocate the opponent's concessions.

    Our target drops by ``reciprocity`` × the opponent's last concession
    (measured in our utility).  Facing a stubborn opponent we stay firm;
    facing a conceder we meet them part-way.
    """

    reciprocity: float = 1.0
    start_utility: float = 0.95
    name: str = "tit-for-tat"

    def __post_init__(self) -> None:
        if self.reciprocity < 0:
            raise ValueError("reciprocity must be non-negative")

    def target(self, t, own_floor, opponent_utilities) -> float:
        """Demanded own-utility at normalised time ``t``."""
        self._check_time(t)
        target = self.start_utility
        for previous, current in zip(opponent_utilities, opponent_utilities[1:]):
            concession = max(0.0, current - previous)
            target -= self.reciprocity * concession
        return max(own_floor, target)


@dataclass
class FirmStrategy(ConcessionStrategy):
    """Never concede: take it or leave it."""

    start_utility: float = 0.95
    name: str = "firm"

    def target(self, t, own_floor, opponent_utilities) -> float:
        """Demanded own-utility at normalised time ``t``."""
        self._check_time(t)
        return max(own_floor, self.start_utility)


def standard_strategy_suite() -> List[ConcessionStrategy]:
    """The five strategies used in the T4 tournament."""
    return [
        boulware(),
        conceder(),
        linear(),
        TitForTatStrategy(),
        FirmStrategy(),
    ]
