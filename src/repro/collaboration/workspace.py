"""Shared workspaces for collaborative information shopping.

"They all see everyone's results at the same time, potentially fusing some
of them into richer collections, and one may pick up on someone else's
thread of actions" (§7).  A :class:`SharedWorkspace` is the common result
pool with contributor attribution; an :class:`ExplorationThread` is a
member's visible trail of queries that any member can continue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.data.items import InformationItem
from repro.query.model import Query
from repro.uncertainty.results import UncertainMatch, UncertainResultSet

_THREAD_COUNTER = itertools.count()


@dataclass
class Contribution:
    """One member's addition to the workspace."""

    user_id: str
    match: UncertainMatch
    time: float
    thread_id: Optional[int] = None


class SharedWorkspace:
    """The group's fused result collection.

    Duplicate items keep their *first* contribution (discovery credit) but
    upgrade the stored probability when a later contribution is more
    confident.
    """

    def __init__(self) -> None:
        self._contributions: Dict[str, Contribution] = {}  # by item id
        self._order: List[str] = []

    # ------------------------------------------------------------------
    def contribute(
        self,
        user_id: str,
        matches: Iterable[UncertainMatch],
        time: float = 0.0,
        thread_id: Optional[int] = None,
    ) -> int:
        """Add matches; returns how many were new items."""
        added = 0
        for match in matches:
            item_id = match.item.item_id
            existing = self._contributions.get(item_id)
            if existing is None:
                self._contributions[item_id] = Contribution(
                    user_id=user_id, match=match, time=time, thread_id=thread_id
                )
                self._order.append(item_id)
                added += 1
            elif match.probability > existing.match.probability:
                # Keep discovery credit, upgrade confidence.
                existing.match = match
        return added

    # ------------------------------------------------------------------
    def items(self) -> List[InformationItem]:
        """Workspace items in discovery order."""
        return [self._contributions[i].match.item for i in self._order]

    def matches(self) -> UncertainResultSet:
        """The workspace contents as an uncertain result set."""
        return UncertainResultSet(
            self._contributions[i].match for i in self._order
        )

    def contributions(self) -> List[Contribution]:
        """All contributions in discovery order."""
        return [self._contributions[i] for i in self._order]

    def contributions_by(self, user_id: str) -> List[Contribution]:
        """The contributions first discovered by ``user_id``."""
        return [c for c in self.contributions() if c.user_id == user_id]

    def first_finder(self, item_id: str) -> Optional[str]:
        """Who first contributed ``item_id`` (None if absent)."""
        contribution = self._contributions.get(item_id)
        return contribution.user_id if contribution else None

    def contributors(self) -> List[str]:
        """Sorted ids of members who contributed anything."""
        return sorted({c.user_id for c in self._contributions.values()})

    def __len__(self) -> int:
        return len(self._contributions)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._contributions


@dataclass
class ExplorationThread:
    """A visible trail of one member's queries."""

    owner_id: str
    thread_id: int = field(default_factory=lambda: next(_THREAD_COUNTER))
    steps: List[Query] = field(default_factory=list)
    taken_over_by: List[str] = field(default_factory=list)

    def extend(self, query: Query) -> None:
        """Append a query to the thread's trail."""
        self.steps.append(query)

    @property
    def last_query(self) -> Optional[Query]:
        """The most recent query of the thread, if any."""
        return self.steps[-1] if self.steps else None

    def pick_up(self, user_id: str) -> Optional[Query]:
        """Another member continues this thread from its last query.

        Returns the query to continue from (the caller re-issues it under
        their own profile, per §7).
        """
        if user_id != self.owner_id and user_id not in self.taken_over_by:
            self.taken_over_by.append(user_id)
        return self.last_query


def reset_thread_ids() -> None:
    """Reset the thread counter (tests only)."""
    global _THREAD_COUNTER
    _THREAD_COUNTER = itertools.count()
