# module: repro.resilience.fixture_exceptions
"""Fixture: overbroad exception handling that AGR007 must flag."""


def swallow_everything(call):
    try:
        return call()
    except:  # expect: AGR007
        return None


def absorb_broadly(call):
    try:
        return call()
    except Exception:  # expect: AGR007
        return None


def rethrow(call):
    try:
        return call()
    except Exception:  # fine: the handler re-raises
        raise


def narrow(call):
    try:
        return call()
    except ValueError:  # fine: specific exception
        return None
