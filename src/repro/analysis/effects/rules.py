"""AGR100-series rules: certification of ``# agora: shard-safe`` roots.

The interprocedural verdicts turn into engine-style violations so the
existing suppression and reporter machinery applies unchanged:

AGR101
    shared-state mutation (global/instance write, memo, I/O, wall clock)
    reachable from a function declared ``# agora: shard-safe``.
AGR102
    RNG draw without a threaded generator parameter on a shard-safe path.
AGR103
    unresolved dynamic call inside a shard-safe region — the analysis
    refuses to certify what it cannot bound.
AGR104
    stale declaration: a ``# agora: worker-local`` annotation that drops
    no effect (the function already verifies without trust), or an
    ``# agora:`` annotation attached to no function.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.effects.fixpoint import EffectsResult
from repro.analysis.effects.model import (
    IO,
    MEMO,
    MUTATES_SHARED,
    RNG_DRAW,
    UNKNOWN,
    WALL_CLOCK,
    WRITE_ARG,
    WRITE_GLOBAL,
    WRITE_SELF,
    Effect,
    iter_sorted,
)
from repro.analysis.effects.project import SHARD_SAFE, FunctionInfo
from repro.analysis.engine import (
    AnalysisReport,
    FileReport,
    apply_suppressions,
)
from repro.analysis.suppressions import parse_suppressions
from repro.analysis.violations import Violation

AGR101 = "AGR101"
AGR102 = "AGR102"
AGR103 = "AGR103"
AGR104 = "AGR104"

EFFECTS_RULE_IDS = frozenset({AGR101, AGR102, AGR103, AGR104})

_MUTATION_KINDS = frozenset(
    {WRITE_GLOBAL, WRITE_SELF, WRITE_ARG, MEMO, IO, WALL_CLOCK}
)

#: rule id -> (title, rationale) for reporting/docs
RULE_DOCS: Dict[str, Tuple[str, str]] = {
    AGR101: (
        "shard-unsafe mutation on a certified path",
        "a # agora: shard-safe function reaches a write to shared state; "
        "running it in a worker pool would diverge across workers",
    ),
    AGR102: (
        "unthreaded RNG draw on a certified path",
        "a shard-safe path draws randomness that is not threaded in as a "
        "parameter, so per-worker streams cannot be reproduced",
    ),
    AGR103: (
        "unresolved dynamic call on a certified path",
        "the analysis cannot bound a callee reachable from a shard-safe "
        "root; certification refuses to guess",
    ),
    AGR104: (
        "stale shard-safety declaration",
        "a # agora: worker-local declaration attests nothing (or an "
        "annotation attaches to no function) and must be removed",
    ),
}


def _rule_for(effect: Effect) -> str:
    if effect.kind == RNG_DRAW:
        return AGR102
    if effect.severity == UNKNOWN:
        return AGR103
    return AGR101


def _witness(root: str, chain: Tuple[str, ...]) -> str:
    return " -> ".join((root,) + chain)


def effects_violations(result: EffectsResult) -> List[Violation]:
    """All AGR10x violations implied by ``result`` (unsuppressed)."""
    violations: List[Violation] = []
    for func in result.index.declared(SHARD_SAFE):
        violations.extend(_root_violations(result, func))
    for qualname in result.stale_declarations:
        func = result.index.functions[qualname]
        annotation = func.annotation
        assert annotation is not None
        violations.append(
            Violation(
                path=func.path,
                line=annotation.lineno,
                col=0,
                rule_id=AGR104,
                message=(
                    f"stale worker-local declaration on '{qualname}': the "
                    "analysis drops no effect for it; remove the annotation"
                ),
            )
        )
    for annotation in result.index.dangling:
        violations.append(
            Violation(
                path=annotation.path,
                line=annotation.lineno,
                col=0,
                rule_id=AGR104,
                message=(
                    f"dangling '# agora: {annotation.kind}' annotation: it "
                    "attaches to no function definition"
                ),
            )
        )
    return sorted(violations)


def _root_violations(
    result: EffectsResult, func: FunctionInfo
) -> List[Violation]:
    summary = result.exported.get(func.qualname, {})
    violations: List[Violation] = []
    for effect, chain in iter_sorted(summary):
        if effect.severity not in (MUTATES_SHARED, UNKNOWN):
            continue
        rule_id = _rule_for(effect)
        witness = _witness(func.qualname, chain)
        violations.append(
            Violation(
                path=func.path,
                line=func.lineno,
                col=0,
                rule_id=rule_id,
                message=(
                    f"'{func.qualname}' is declared shard-safe but "
                    f"{effect.reason} [witness: {witness}]"
                ),
            )
        )
    return violations


def build_report(result: EffectsResult) -> AnalysisReport:
    """Wrap the AGR10x violations in the engine's report shape.

    Suppressions in the affected files apply exactly as they do for the
    per-file rules, and unused AGR10x suppressions are reported as
    AGR000 (this run executes the whole AGR10x family, so an
    ``ignore[AGR101]`` that matches nothing here *is* stale).
    """
    by_path: Dict[str, List[Violation]] = {}
    for violation in effects_violations(result):
        by_path.setdefault(violation.path, []).append(violation)

    report = AnalysisReport()
    paths = set(by_path)
    # every analysed file participates so stale AGR10x suppressions are
    # caught even in files with no violations
    module_paths: Dict[str, str] = {}
    for module in result.index.modules.values():
        paths.add(module.path)
        module_paths[module.path] = module.name
    for path in sorted(paths):
        module = result.index.modules.get(module_paths.get(path, ""))
        source = module.ctx.source if module is not None else ""
        suppressions = parse_suppressions(source, path)
        active, silenced, marked = apply_suppressions(
            by_path.get(path, []),
            suppressions,
            executed_rule_ids=set(EFFECTS_RULE_IDS),
            flag_unused=True,
        )
        if not active and not silenced and not marked:
            continue
        report.files.append(
            FileReport(
                path=path,
                module=module.name if module is not None else None,
                violations=active,
                suppressed=silenced,
                suppressions=marked,
            )
        )
    for path, error in sorted(result.index.parse_errors):
        report.files.append(
            FileReport(path=path, module=None, parse_error=error)
        )
    return report
