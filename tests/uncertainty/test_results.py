"""Tests for uncertain result sets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import InformationItem
from repro.uncertainty import UncertainMatch, UncertainResultSet, merge_all


def _item(item_id):
    return InformationItem(item_id=item_id, domain="d", latent=np.array([1.0]))


def _match(item_id, probability, score=None, source="s1"):
    return UncertainMatch(
        item=_item(item_id),
        score=score if score is not None else probability,
        probability=probability,
        source_id=source,
    )


class TestMatch:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            _match("a", 1.5)

    def test_invalid_score(self):
        with pytest.raises(ValueError):
            UncertainMatch(item=_item("a"), score=2.0, probability=0.5)


class TestResultSet:
    def test_sorted_by_probability(self):
        results = UncertainResultSet([_match("a", 0.3), _match("b", 0.9)])
        assert [m.item.item_id for m in results] == ["b", "a"]

    def test_ties_broken_by_item_id(self):
        results = UncertainResultSet([_match("z", 0.5), _match("a", 0.5)])
        assert [m.item.item_id for m in results] == ["a", "z"]

    def test_top_k(self):
        results = UncertainResultSet([_match(f"i{j}", j / 10) for j in range(1, 6)])
        top = results.top_k(2)
        assert len(top) == 2
        assert top.matches[0].probability == 0.5

    def test_top_k_negative_rejected(self):
        with pytest.raises(ValueError):
            UncertainResultSet().top_k(-1)

    def test_filter_confidence(self):
        results = UncertainResultSet([_match("a", 0.2), _match("b", 0.8)])
        filtered = results.filter_confidence(0.5)
        assert [m.item.item_id for m in filtered] == ["b"]

    def test_expected_precision(self):
        results = UncertainResultSet([_match("a", 0.4), _match("b", 0.8)])
        assert results.expected_precision() == pytest.approx(0.6)

    def test_expected_precision_empty(self):
        assert UncertainResultSet().expected_precision() == 0.0

    def test_expected_recall(self):
        results = UncertainResultSet([_match("a", 0.5), _match("b", 0.5)])
        assert results.expected_recall(total_relevant=4) == pytest.approx(0.25)

    def test_expected_recall_clips_at_one(self):
        results = UncertainResultSet([_match("a", 1.0), _match("b", 1.0)])
        assert results.expected_recall(total_relevant=1) == 1.0

    def test_expected_recall_zero_relevant(self):
        assert UncertainResultSet().expected_recall(0) == 1.0
        assert UncertainResultSet([_match("a", 0.5)]).expected_recall(0) == 0.0

    def test_sample_world_extremes(self):
        rng = np.random.default_rng(0)
        certain = UncertainResultSet([_match("a", 1.0)])
        impossible = UncertainResultSet([_match("b", 0.0)])
        assert len(certain.sample_world(rng)) == 1
        assert len(impossible.sample_world(rng)) == 0

    def test_sample_world_statistics(self):
        rng = np.random.default_rng(0)
        results = UncertainResultSet([_match("a", 0.3)])
        inclusions = sum(len(results.sample_world(rng)) for __ in range(2000))
        assert inclusions / 2000 == pytest.approx(0.3, abs=0.05)

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), max_size=20))
    def test_expected_relevant_is_sum(self, probabilities):
        matches = [_match(f"i{j}", p) for j, p in enumerate(probabilities)]
        results = UncertainResultSet(matches)
        assert results.expected_relevant() == pytest.approx(sum(probabilities))


class TestMerge:
    def test_merge_disjoint(self):
        a = UncertainResultSet([_match("x", 0.5)])
        b = UncertainResultSet([_match("y", 0.7)])
        merged = a.merge(b)
        assert len(merged) == 2

    def test_merge_keeps_higher_probability(self):
        a = UncertainResultSet([_match("x", 0.5, source="s1")])
        b = UncertainResultSet([_match("x", 0.9, source="s2")])
        merged = a.merge(b)
        assert len(merged) == 1
        assert merged.matches[0].probability == 0.9
        assert merged.matches[0].source_id == "s2"

    def test_merge_all_order_independent(self):
        sets = [
            UncertainResultSet([_match("x", 0.5)]),
            UncertainResultSet([_match("x", 0.9), _match("y", 0.1)]),
            UncertainResultSet([_match("z", 0.3)]),
        ]
        forward = merge_all(sets)
        backward = merge_all(list(reversed(sets)))
        assert [m.item.item_id for m in forward] == [m.item.item_id for m in backward]

    def test_reweighted(self):
        results = UncertainResultSet([_match("a", 0.5)])
        assert results.reweighted(0.5).matches[0].probability == 0.25
        assert results.reweighted(4.0).matches[0].probability == 1.0

    def test_reweighted_negative_rejected(self):
        with pytest.raises(ValueError):
            UncertainResultSet().reweighted(-1.0)
