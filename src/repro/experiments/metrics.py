"""Statistics helpers for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean ± a normal-approximation confidence half-width."""

    mean: float
    ci: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.ci:.3f}"


def summarize(values: Sequence[float], z: float = 1.96) -> Summary:
    """Mean and 95% (by default) confidence half-width of ``values``."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return Summary(mean=0.0, ci=0.0, n=0)
    mean = float(array.mean())
    if array.size == 1:
        return Summary(mean=mean, ci=0.0, n=1)
    sem = float(array.std(ddof=1) / np.sqrt(array.size))
    return Summary(mean=mean, ci=z * sem, n=int(array.size))


def relative_improvement(treatment: float, baseline: float) -> float:
    """(treatment − baseline) / |baseline|; 0 when baseline is 0."""
    if baseline == 0:
        return 0.0
    return (treatment - baseline) / abs(baseline)


def win_rate(treatment: Sequence[float], baseline: Sequence[float]) -> float:
    """Fraction of paired trials where treatment strictly beats baseline."""
    treatment = list(treatment)
    baseline = list(baseline)
    if len(treatment) != len(baseline):
        raise ValueError("paired sequences must have equal length")
    if not treatment:
        return 0.0
    wins = sum(1 for t, b in zip(treatment, baseline) if t > b)
    return wins / len(treatment)


def mann_whitney_p(treatment: Sequence[float], baseline: Sequence[float]) -> float:
    """One-sided Mann-Whitney p-value for "treatment > baseline".

    Uses scipy when available; falls back to a normal approximation of
    the U statistic otherwise.  Returns 1.0 for degenerate inputs.
    """
    treatment = np.asarray(list(treatment), dtype=float)
    baseline = np.asarray(list(baseline), dtype=float)
    if treatment.size == 0 or baseline.size == 0:
        return 1.0
    try:
        from scipy.stats import mannwhitneyu

        return float(
            mannwhitneyu(treatment, baseline, alternative="greater").pvalue
        )
    except ImportError:  # pragma: no cover - environment without scipy
        n1, n2 = treatment.size, baseline.size
        combined = np.concatenate([treatment, baseline])
        order = combined.argsort(kind="mergesort")
        ranks = np.empty_like(order, dtype=float)
        ranks[order] = np.arange(1, combined.size + 1)
        for value in np.unique(combined):
            mask = combined == value
            if mask.sum() > 1:
                ranks[mask] = ranks[mask].mean()
        u = ranks[:n1].sum() - n1 * (n1 + 1) / 2.0
        mean_u = n1 * n2 / 2.0
        std_u = np.sqrt(n1 * n2 * (n1 + n2 + 1) / 12.0)
        if std_u == 0:
            return 1.0
        z = (u - mean_u) / std_u
        return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))
