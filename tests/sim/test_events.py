"""Tests for the event queue."""

import pytest

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, tag="late")
        queue.push(1.0, lambda: None, tag="early")
        assert queue.pop().tag == "early"
        assert queue.pop().tag == "late"

    def test_ties_broken_by_priority_then_sequence(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=1, tag="low")
        queue.push(1.0, lambda: None, priority=0, tag="high")
        queue.push(1.0, lambda: None, priority=0, tag="high2")
        assert queue.pop().tag == "high"
        assert queue.pop().tag == "high2"
        assert queue.pop().tag == "low"

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.5, lambda: None)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, tag="a")
        queue.push(2.0, lambda: None, tag="b")
        event.cancel()
        assert queue.pop().tag == "b"
        assert queue.pop() is None

    def test_len_counts_live_events(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 3.0

    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
