"""Tests for social fusion ranking."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.personalization import (
    PersonalizedRanker,
    ProfileLearner,
    UserProfile,
)
from repro.social import AffineNeighbour, SocialRanker, learn_from_peer_queries
from repro.uncertainty import UncertainMatch, UncertainResultSet


def _item(latent, item_id):
    return InformationItem(item_id=item_id, domain="d", latent=np.asarray(latent, float))


def _match(latent, item_id, probability=0.5):
    return UncertainMatch(item=_item(latent, item_id), score=probability,
                          probability=probability)


def _personal_ranker(interests, alpha=0.5):
    profile = UserProfile(user_id="iris", interests=np.asarray(interests, float))
    return PersonalizedRanker(profile, concept_fn=lambda item: item.latent,
                              personalization_weight=alpha)


def _neighbour(user_id, interests, affinity_value):
    return AffineNeighbour(
        user_id=user_id,
        affinity=affinity_value,
        profile=UserProfile(user_id=user_id, interests=np.asarray(interests, float)),
    )


class TestSocialRanker:
    def test_no_neighbours_is_personal(self):
        personal = _personal_ranker([1.0, 0.0])
        social = SocialRanker(personal, [], social_weight=0.5)
        results = UncertainResultSet([_match([1, 0], "a"), _match([0, 1], "b")])
        assert social.rerank_items(results) == personal.rerank_items(results)

    def test_neighbours_shift_ranking(self):
        # Iris is indifferent; her high-affinity neighbour loves topic 1.
        personal = _personal_ranker([0.5, 0.5], alpha=0.5)
        neighbour = _neighbour("jason", [0.0, 1.0], affinity_value=1.0)
        social = SocialRanker(personal, [neighbour], social_weight=0.8)
        results = UncertainResultSet([
            _match([1.0, 0.0], "topic0"),
            _match([0.0, 1.0], "topic1"),
        ])
        assert social.rerank_items(results)[0].item_id == "topic1"

    def test_affinity_weights_votes(self):
        personal = _personal_ranker([0.5, 0.5], alpha=0.0)
        strong = _neighbour("strong", [0.0, 1.0], affinity_value=0.9)
        weak = _neighbour("weak", [1.0, 0.0], affinity_value=0.1)
        social = SocialRanker(personal, [strong, weak], social_weight=1.0)
        item1 = _item([0.0, 1.0], "i1")
        item0 = _item([1.0, 0.0], "i0")
        assert social.neighbourhood_interest(item1) > social.neighbourhood_interest(item0)

    def test_beta_zero_is_personal(self):
        personal = _personal_ranker([1.0, 0.0])
        neighbour = _neighbour("jason", [0.0, 1.0], affinity_value=1.0)
        social = SocialRanker(personal, [neighbour], social_weight=0.0)
        match = _match([0.0, 1.0], "x")
        assert social.item_score(match) == pytest.approx(personal.item_score(match))

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            SocialRanker(_personal_ranker([1, 0]), [], social_weight=1.5)


class TestPeerLearning:
    def test_peer_queries_shift_profile(self):
        learner = ProfileLearner(2, concept_fn=lambda item: item.latent)
        peer_items = [_item([0.0, 1.0], f"p{i}") for i in range(20)]
        applied = learn_from_peer_queries(learner, "iris", peer_items)
        assert applied == 20
        assert np.argmax(learner.interests("iris")) == 1

    def test_empty_peer_evidence(self):
        learner = ProfileLearner(2, concept_fn=lambda item: item.latent)
        assert learn_from_peer_queries(learner, "iris", []) == 0
