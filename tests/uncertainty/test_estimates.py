"""Tests for uncertain estimates."""

import numpy as np
import pytest

from repro.uncertainty import UncertainEstimate


class TestConstruction:
    def test_exact(self):
        estimate = UncertainEstimate.exact(5.0)
        assert estimate.mean == 5.0
        assert estimate.std == 0.0
        assert estimate.low == estimate.high == 5.0

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            UncertainEstimate(mean=1.0, std=-0.1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            UncertainEstimate(mean=1.0, low=2.0, high=0.0)

    def test_mean_outside_bounds_rejected(self):
        with pytest.raises(ValueError):
            UncertainEstimate(mean=5.0, low=0.0, high=1.0)

    def test_from_samples(self):
        estimate = UncertainEstimate.from_samples([1.0, 2.0, 3.0])
        assert estimate.mean == 2.0
        assert estimate.low == 1.0
        assert estimate.high == 3.0
        assert estimate.std == pytest.approx(1.0)

    def test_from_single_sample(self):
        estimate = UncertainEstimate.from_samples([4.0])
        assert estimate.std == 0.0

    def test_from_empty_rejected(self):
        with pytest.raises(ValueError):
            UncertainEstimate.from_samples([])


class TestArithmetic:
    def test_addition(self):
        a = UncertainEstimate(mean=1.0, std=3.0)
        b = UncertainEstimate(mean=2.0, std=4.0)
        total = a + b
        assert total.mean == 3.0
        assert total.std == pytest.approx(5.0)  # hypot(3, 4)

    def test_scale(self):
        estimate = UncertainEstimate(mean=2.0, std=1.0, low=0.0, high=4.0).scale(3.0)
        assert estimate.mean == 6.0
        assert estimate.std == 3.0
        assert estimate.high == 12.0

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            UncertainEstimate.exact(1.0).scale(-1.0)

    def test_combine_max(self):
        a = UncertainEstimate(mean=1.0, std=0.5)
        b = UncertainEstimate(mean=3.0, std=0.2)
        combined = a.combine_max(b)
        assert combined.mean == 3.0
        assert combined.std == 0.5

    def test_relative_error(self):
        assert UncertainEstimate(mean=10.0, std=1.0).relative_error == 0.1
        assert UncertainEstimate(mean=0.0, std=1.0).relative_error == float("inf")
        assert UncertainEstimate(mean=0.0, std=0.0).relative_error == 0.0


class TestSampling:
    def test_zero_std_sample_is_mean(self):
        rng = np.random.default_rng(0)
        assert UncertainEstimate.exact(7.0).sample(rng) == 7.0

    def test_samples_respect_bounds(self):
        rng = np.random.default_rng(0)
        estimate = UncertainEstimate(mean=0.5, std=5.0, low=0.0, high=1.0)
        for __ in range(100):
            assert 0.0 <= estimate.sample(rng) <= 1.0

    def test_sample_mean_tracks_mean(self):
        rng = np.random.default_rng(0)
        estimate = UncertainEstimate(mean=10.0, std=2.0)
        samples = [estimate.sample(rng) for __ in range(3000)]
        assert np.mean(samples) == pytest.approx(10.0, abs=0.2)

    def test_quantile_median(self):
        estimate = UncertainEstimate(mean=5.0, std=2.0)
        assert estimate.quantile(0.5) == pytest.approx(5.0, abs=1e-6)

    def test_quantile_tail_order(self):
        estimate = UncertainEstimate(mean=5.0, std=2.0)
        assert estimate.quantile(0.05) < estimate.quantile(0.5) < estimate.quantile(0.95)

    def test_quantile_matches_normal(self):
        estimate = UncertainEstimate(mean=0.0, std=1.0)
        assert estimate.quantile(0.975) == pytest.approx(1.96, abs=0.01)

    def test_quantile_invalid(self):
        with pytest.raises(ValueError):
            UncertainEstimate.exact(1.0).quantile(0.0)

    def test_quantile_zero_std(self):
        assert UncertainEstimate.exact(3.0).quantile(0.9) == 3.0
