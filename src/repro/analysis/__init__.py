"""Static determinism & simulation-safety analysis (rules AGR001-AGR008).

The sim kernel's contract — same root seed, identical run — is enforced
dynamically by the property tests and *statically* here: an AST-based
rule engine flags wall-clock reads, unseeded randomness, hash-ordered
effect loops, float timestamp equality, mutable defaults, kernel-internal
poking, overbroad exception handling in recovery paths, and layering
violations against the declared package DAG.

Run it as ``python -m repro.analysis [paths...]``; suppress a finding
inline with ``# agora: ignore[AGR00x] reason``.

Public API:

- :class:`AnalysisEngine`, :class:`AnalysisReport`, :class:`FileReport` —
  programmatic analysis.
- :class:`Violation`, :class:`Suppression` — report records.
- ``DEFAULT_RULES``, ``RULE_INDEX`` — the rule registry.
- :func:`render_text`, :func:`render_json` — reporters.
- ``LAYER_DEPS``, ``INTERFACE_MODULES`` — the declared layer DAG.
"""

from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisReport,
    FileReport,
    module_name_for,
)
from repro.analysis.layering import INTERFACE_MODULES, LAYER_DEPS, check_import
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import DEFAULT_RULES, RULE_INDEX, Rule, RuleContext
from repro.analysis.suppressions import parse_suppressions
from repro.analysis.violations import Suppression, Violation

__all__ = [
    "DEFAULT_RULES",
    "INTERFACE_MODULES",
    "LAYER_DEPS",
    "RULE_INDEX",
    "AnalysisEngine",
    "AnalysisReport",
    "FileReport",
    "Rule",
    "RuleContext",
    "Suppression",
    "Violation",
    "check_import",
    "module_name_for",
    "parse_suppressions",
    "render_json",
    "render_text",
]
