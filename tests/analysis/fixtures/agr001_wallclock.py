# module: repro.core.fixture_wallclock
"""Fixture: wall-clock reads that AGR001 must flag."""

import time
from datetime import datetime


def stamp_things(sim):
    started = time.time()  # expect: AGR001
    elapsed = time.perf_counter()  # expect: AGR001
    when = datetime.now()  # expect: AGR001
    virtual = sim.now  # fine: the kernel's virtual clock
    return started, elapsed, when, virtual
