"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exits 0 when every analysed file is clean and 1 otherwise, so the check
slots directly into CI next to ruff and mypy.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import AnalysisEngine
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import DEFAULT_RULES, RULE_INDEX, Rule


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & simulation-safety linter for the agora library "
            "(rules AGR001-AGR008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="AGR001,AGR002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressions",
        action="store_true",
        help="list every inline suppression (text format only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return list(DEFAULT_RULES)
    selected: List[Rule] = []
    for rule_id in (part.strip() for part in spec.split(",")):
        if not rule_id:
            continue
        if rule_id not in RULE_INDEX:
            raise SystemExit(
                f"unknown rule id {rule_id!r}; known: "
                + ", ".join(sorted(RULE_INDEX))
            )
        selected.append(RULE_INDEX[rule_id])
    return selected


def _rule_table() -> str:
    lines: List[str] = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code.

    ``python -m repro.analysis effects ...`` dispatches to the
    interprocedural shard-safety certifier; everything else runs the
    per-file rule engine as before.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "effects":
        from repro.analysis.effects.cli import main as effects_main

        return effects_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_rule_table())
        return 0
    engine = AnalysisEngine(rules=_select_rules(args.rules))
    report = engine.check_paths(args.paths)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressions=args.show_suppressions))
    return 0 if report.ok else 1
