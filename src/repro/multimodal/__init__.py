"""Multi-modal interaction: feeds, browsing, annotations (paper §9).

Public API:

- :class:`FeedService`, :class:`StandingQuery`, :class:`FeedHit` —
  continuous feeds with live query modification.
- :class:`BrowseGraph`, :class:`Browser`, :class:`BrowseStep` —
  profile-guided navigation.
- :class:`AnnotationService`, :class:`AnnotationRecord` —
  annotation-triggered comparisons.
- :class:`InteractionSession`, :class:`Discovery` — interleaved sessions.
"""

from repro.multimodal.annotations import AnnotationRecord, AnnotationService
from repro.multimodal.browsing import BrowseGraph, Browser, BrowseStep
from repro.multimodal.feeds import (
    FeedHit,
    FeedService,
    StandingQuery,
    reset_standing_ids,
)
from repro.multimodal.session import Discovery, InteractionSession

__all__ = [
    "AnnotationRecord",
    "AnnotationService",
    "BrowseGraph",
    "BrowseStep",
    "Browser",
    "Discovery",
    "FeedHit",
    "FeedService",
    "InteractionSession",
    "StandingQuery",
    "reset_standing_ids",
]
