"""Tests for the annotation service."""

import pytest

from repro.data import Annotation, DomainSpec
from repro.multimodal import AnnotationService, FeedService


def _item(corpus_generator, topic="folk-jewelry", name="museum"):
    spec = DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )
    return corpus_generator.generate(spec, 1)[0]


class TestAnnotations:
    def test_annotate_creates_annotation_item(self, corpus_generator):
        service = AnnotationService()
        target = _item(corpus_generator)
        record = service.annotate("iris", target, text="lovely filigree")
        assert isinstance(record.annotation, Annotation)
        assert record.annotation.author_id == "iris"
        assert record.annotation.target_item_id == target.item_id
        assert record.standing_id is None  # no feed service attached

    def test_annotation_inherits_target_latent(self, corpus_generator):
        service = AnnotationService()
        target = _item(corpus_generator)
        record = service.annotate("iris", target)
        assert (record.annotation.latent == target.latent).all()

    def test_auto_compare_registers_standing_query(
        self, corpus_generator, matching_engine
    ):
        feeds = FeedService(matching_engine)
        service = AnnotationService(feeds=feeds)
        target = _item(corpus_generator)
        record = service.annotate("iris", target)
        assert record.standing_id is not None
        standing = feeds.standing_query(record.standing_id)
        assert standing.owner_id == "iris"
        assert standing.comparison_items == [target]

    def test_annotation_triggers_feed_hits(self, corpus_generator, matching_engine):
        feeds = FeedService(matching_engine)
        service = AnnotationService(feeds=feeds)
        target = _item(corpus_generator)
        service.annotate("iris", target, comparison_threshold=0.3)
        similar = _item(corpus_generator, name="auction")
        feeds.on_new_item("auction-src", similar)
        assert len(feeds.inbox("iris")) == 1

    def test_extend_comparison(self, corpus_generator, matching_engine):
        feeds = FeedService(matching_engine)
        service = AnnotationService(feeds=feeds)
        target = _item(corpus_generator)
        record = service.annotate("iris", target)
        extra = _item(corpus_generator, topic="dance-forms", name="dance")
        service.extend_comparison("iris", record, extra)
        standing = feeds.standing_query(record.standing_id)
        assert len(standing.comparison_items) == 2

    def test_extend_requires_author(self, corpus_generator, matching_engine):
        feeds = FeedService(matching_engine)
        service = AnnotationService(feeds=feeds)
        record = service.annotate("iris", _item(corpus_generator))
        with pytest.raises(PermissionError):
            service.extend_comparison("jason", record, _item(corpus_generator))

    def test_extend_without_standing_rejected(self, corpus_generator):
        service = AnnotationService()
        record = service.annotate("iris", _item(corpus_generator))
        with pytest.raises(ValueError):
            service.extend_comparison("iris", record, _item(corpus_generator))

    def test_annotations_by_author(self, corpus_generator):
        service = AnnotationService()
        service.annotate("iris", _item(corpus_generator))
        service.annotate("iris", _item(corpus_generator))
        service.annotate("jason", _item(corpus_generator))
        assert len(service.annotations_by("iris")) == 2
        assert len(service.records_by("jason")) == 1
        assert service.annotations_by("nobody") == []
