"""The library must satisfy its own determinism contract.

This is the acceptance gate the CI job enforces: ``src/repro`` lints
clean under every AGR rule, and the sim kernel does it without a single
inline suppression — the kernel IS the contract, it doesn't get to opt
out of it.
"""

from pathlib import Path

from repro.analysis import AnalysisEngine

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_tree_exists():
    assert SRC.is_dir()


def test_src_repro_has_zero_violations():
    report = AnalysisEngine().check_paths([SRC])
    assert report.parse_errors == []
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.violations == [], f"src/repro must lint clean:\n{rendered}"


def test_sim_kernel_has_zero_suppressions():
    report = AnalysisEngine().check_paths([SRC / "sim"])
    assert report.suppressions == [], (
        "repro.sim and repro.sim.rng must satisfy the determinism contract "
        "without inline suppressions"
    )
