"""Tests for cross-process trace propagation (TraceContext + tracer attach)."""

import pytest

from repro.obs import (
    SHARD_SPAN_STRIDE,
    SpanTracer,
    TraceContext,
    derive_trace_id,
    seq_of,
    shard_of,
)


class TestSpanIdNamespaces:
    def test_shard_and_seq_recoverable_from_id(self):
        span_id = 3 * SHARD_SPAN_STRIDE + 17
        assert shard_of(span_id) == 3
        assert seq_of(span_id) == 17

    def test_shard_zero_ids_are_plain_sequence_numbers(self):
        assert shard_of(5) == 0
        assert seq_of(5) == 5

    def test_tracers_in_different_shards_never_collide(self):
        ids = set()
        for shard_id in (0, 1, 2):
            tracer = SpanTracer(shard_id=shard_id)
            for __ in range(5):
                with tracer.span("op"):
                    pass
            ids.update(span.span_id for span in tracer.spans())
        assert len(ids) == 15


class TestDeriveTraceId:
    def test_deterministic_in_seed_and_scope(self):
        assert derive_trace_id(11) == derive_trace_id(11)
        assert derive_trace_id(11) != derive_trace_id(12)
        assert derive_trace_id(11, scope="a") != derive_trace_id(11, scope="b")

    def test_short_hex(self):
        trace_id = derive_trace_id(7)
        assert len(trace_id) == 16
        int(trace_id, 16)  # valid hex


class TestTraceContext:
    def test_round_trip_through_json(self):
        context = TraceContext(trace_id="abc", shard_id=2, parent_span_id=5)
        assert TraceContext.from_json(context.to_json()) == context

    def test_rejects_negative_shard(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="abc", shard_id=-1)

    def test_context_for_carries_active_span_as_parent(self):
        tracer = SpanTracer(trace_id=derive_trace_id(11))
        with tracer.span("dispatch") as span:
            context = tracer.context_for(4)
        assert context.shard_id == 4
        assert context.trace_id == tracer.trace_id
        assert context.parent_span_id == span.span_id


class TestAttachDetach:
    def make_context(self, shard_id=1):
        coordinator = SpanTracer(trace_id=derive_trace_id(11))
        with coordinator.span("coordinate"):
            return coordinator.context_for(shard_id)

    def test_attached_tracer_continues_the_trace(self):
        context = self.make_context(shard_id=2)
        worker = SpanTracer()
        worker.attach(context)
        with worker.span("work"):
            pass
        assert worker.shard_id == 2
        assert worker.trace_id == context.trace_id
        (span,) = worker.spans()
        assert shard_of(span.span_id) == 2
        assert span.parent_id == context.parent_span_id

    def test_detach_returns_the_context(self):
        context = self.make_context()
        worker = SpanTracer()
        worker.attach(context)
        with worker.span("work"):
            pass
        assert worker.detach() == context
        assert worker.current_id is None

    def test_attach_twice_rejected(self):
        worker = SpanTracer()
        worker.attach(self.make_context())
        with pytest.raises(ValueError):
            worker.attach(self.make_context())

    def test_attach_requires_a_fresh_tracer(self):
        worker = SpanTracer()
        with worker.span("early"):
            pass
        with pytest.raises(ValueError):
            worker.attach(self.make_context())

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer().detach()

    def test_detach_with_open_span_rejected(self):
        worker = SpanTracer()
        worker.attach(self.make_context())
        with worker.span("open"):
            with pytest.raises(ValueError):
                worker.detach()

    def test_rootless_context_attaches_without_parent(self):
        context = TraceContext(trace_id="abc", shard_id=3)
        worker = SpanTracer()
        worker.attach(context)
        with worker.span("work"):
            pass
        (span,) = worker.spans()
        assert span.parent_id is None
        assert worker.detach() == context
