"""Tests for QoS requirement relaxation."""

import pytest

from repro import Consumer, QoSRequirement, QoSVector, UserProfile, build_agora
from repro.workloads import QueryWorkloadGenerator


class TestRelaxedRequirement:
    def test_noop_at_zero(self):
        requirement = QoSRequirement(max_response_time=5.0, min_completeness=0.8)
        relaxed = requirement.relaxed(0.0)
        assert relaxed == requirement

    def test_bounds_loosen(self):
        requirement = QoSRequirement(
            max_response_time=5.0, min_completeness=0.8, min_trust=0.6,
        )
        relaxed = requirement.relaxed(0.5)
        assert relaxed.max_response_time == pytest.approx(10.0)
        assert relaxed.min_completeness == pytest.approx(0.4)
        assert relaxed.min_trust == pytest.approx(0.3)

    def test_unconstrained_stays_unconstrained(self):
        relaxed = QoSRequirement(min_completeness=0.8).relaxed(0.5)
        assert relaxed.max_response_time is None
        assert relaxed.min_freshness is None

    def test_anything_meeting_original_meets_relaxed(self):
        requirement = QoSRequirement(
            max_response_time=5.0, min_completeness=0.8,
            min_correctness=0.7, min_freshness=0.5, min_trust=0.4,
        )
        relaxed = requirement.relaxed(0.4)
        vector = QoSVector(response_time=4.9, completeness=0.81,
                           correctness=0.71, freshness=0.51, trust=0.41)
        assert vector.meets(requirement)
        assert vector.meets(relaxed)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            QoSRequirement().relaxed(1.0)
        with pytest.raises(ValueError):
            QoSRequirement().relaxed(-0.1)


class TestAskWithRelaxation:
    @pytest.fixture(scope="class")
    def setup(self):
        agora = build_agora(seed=37, n_sources=6, items_per_source=25,
                            calibration_pairs=200)
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("rx"),
        )
        profile = UserProfile(
            user_id="iris",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")
        return agora, workload, consumer

    def test_reasonable_requirement_needs_no_relaxation(self, setup):
        agora, workload, consumer = setup
        query = workload.topic_query(
            "folk-jewelry", k=5,
            requirement=QoSRequirement(min_completeness=0.1),
        )
        result = consumer.ask_with_relaxation(query)
        assert result.query.requirement.min_completeness == pytest.approx(0.1)
        assert not result.unserved_jobs

    def test_impossible_requirement_relaxes_until_served(self, setup):
        agora, workload, consumer = setup
        strict = QoSRequirement(
            min_completeness=0.999, min_correctness=0.999,
            max_response_time=1e-4,
        )
        query = workload.topic_query("folk-jewelry", k=5, requirement=strict)
        blunt = consumer.ask(query)
        assert blunt.unserved_jobs  # the strict ask fails outright
        relaxed_query = workload.topic_query("folk-jewelry", k=5,
                                             requirement=strict)
        result = consumer.ask_with_relaxation(
            relaxed_query, relaxation_step=0.6, max_relaxations=5,
        )
        assert not result.unserved_jobs
        assert len(result.ranked_items) > 0
        # The served requirement is weaker than the original demand.
        assert (result.query.requirement.min_completeness
                < strict.min_completeness)

    def test_invalid_parameters(self, setup):
        agora, workload, consumer = setup
        query = workload.topic_query("folk-jewelry", k=5)
        with pytest.raises(ValueError):
            consumer.ask_with_relaxation(query, relaxation_step=1.0)
        with pytest.raises(ValueError):
            consumer.ask_with_relaxation(query, max_relaxations=-1)
