"""Every AGR rule fires on its fixture, at the marked lines, and nowhere else.

Each fixture under ``fixtures/`` declares where it pretends to live with a
leading ``# module:`` comment and marks every expected violation with an
inline ``# expect: AGRxxx`` comment.  The tests cross-check the engine's
output against those markers — rule id AND line number must both match.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import AnalysisEngine, RULE_INDEX

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*(?P<rules>AGR\d{3}(?:\s*,\s*AGR\d{3})*)")

VIOLATION_FIXTURES = sorted(FIXTURES.glob("agr*.py"))


def expected_markers(path):
    """(line, rule_id) pairs declared by ``# expect:`` comments."""
    expected = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in re.split(r"\s*,\s*", match.group("rules")):
                expected.append((lineno, rule_id))
    return sorted(expected)


def test_fixture_inventory_covers_every_rule():
    covered = {path.name.split("_")[0].upper() for path in VIOLATION_FIXTURES}
    assert covered == set(RULE_INDEX), "each rule needs an agrNNN_*.py fixture"


@pytest.mark.parametrize(
    "fixture", VIOLATION_FIXTURES, ids=[p.stem for p in VIOLATION_FIXTURES]
)
def test_rule_fires_exactly_on_marked_lines(fixture):
    expected = expected_markers(fixture)
    assert expected, f"{fixture.name} declares no # expect: markers"
    report = AnalysisEngine().check_file(fixture)
    assert report.parse_error is None
    actual = sorted((v.line, v.rule_id) for v in report.violations)
    assert actual == expected


@pytest.mark.parametrize(
    "fixture", VIOLATION_FIXTURES, ids=[p.stem for p in VIOLATION_FIXTURES]
)
def test_fixture_exercises_its_own_rule(fixture):
    own_rule = fixture.name.split("_")[0].upper()
    report = AnalysisEngine().check_file(fixture)
    assert own_rule in {v.rule_id for v in report.violations}


def test_clean_fixture_is_clean():
    report = AnalysisEngine().check_file(FIXTURES / "clean_module.py")
    assert report.parse_error is None
    assert report.violations == []
    assert report.suppressed == []


def test_violations_carry_rationale_metadata():
    for rule in RULE_INDEX.values():
        assert rule.rule_id and rule.title and rule.rationale


def test_single_rule_selection_only_reports_that_rule():
    engine = AnalysisEngine(rules=[RULE_INDEX["AGR001"]])
    report = engine.check_paths([FIXTURES])
    assert {v.rule_id for v in report.violations} == {"AGR001"}
