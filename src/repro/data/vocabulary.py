"""Term vocabulary for text documents.

Each latent topic owns a Zipfian distribution over a shared vocabulary.
Documents draw terms from the mixture defined by their latent topic vector,
so term overlap between two documents correlates with latent relevance —
which is exactly the signal text matching algorithms can exploit, corrupted
by vocabulary noise.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

import numpy as np

from repro.data.topics import TopicSpace
from repro.sim.rng import ScopedStreams


class Vocabulary:
    """A topic-conditioned Zipfian vocabulary.

    Parameters
    ----------
    topic_space:
        The shared latent topic space.
    streams:
        RNG scope used to build per-topic term distributions.
    vocabulary_size:
        Number of distinct terms.
    zipf_exponent:
        Skew of each topic's term distribution (1.0 ≈ natural language).
    terms_per_topic:
        How many vocabulary slots each topic's distribution concentrates on.
    """

    def __init__(
        self,
        topic_space: TopicSpace,
        streams: ScopedStreams,
        vocabulary_size: int = 2000,
        zipf_exponent: float = 1.1,
        terms_per_topic: int = 150,
    ):
        if vocabulary_size < terms_per_topic:
            raise ValueError("vocabulary_size must be >= terms_per_topic")
        self.topic_space = topic_space
        self.vocabulary_size = vocabulary_size
        self.terms: List[str] = [f"w{i:05d}" for i in range(vocabulary_size)]
        self._topic_term_probs = self._build_topic_distributions(
            streams, zipf_exponent, terms_per_topic
        )
        # Precomputed so topic_posterior gathers rather than re-logs.
        self._log_term_probs = np.log(self._topic_term_probs + 1e-12)

    def _build_topic_distributions(
        self, streams: ScopedStreams, zipf_exponent: float, terms_per_topic: int
    ) -> np.ndarray:
        """Build an (n_topics, vocabulary_size) matrix of term probabilities."""
        rng = streams.stream("vocabulary")
        n_topics = self.topic_space.n_topics
        probs = np.zeros((n_topics, self.vocabulary_size))
        ranks = np.arange(1, terms_per_topic + 1, dtype=float)
        zipf_weights = 1.0 / ranks**zipf_exponent
        zipf_weights /= zipf_weights.sum()
        for topic_index in range(n_topics):
            slots = rng.choice(
                self.vocabulary_size, size=terms_per_topic, replace=False
            )
            probs[topic_index, slots] = zipf_weights
        # A small uniform smoothing models domain-independent stopwords.
        probs = 0.95 * probs + 0.05 / self.vocabulary_size
        return probs / probs.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def sample_terms(
        self,
        latent: np.ndarray,
        rng: np.random.Generator,
        length: int = 120,
    ) -> Dict[str, int]:
        """Draw a bag of terms for a document with topic vector ``latent``."""
        latent = self.topic_space.normalize(latent)
        mixture = latent @ self._topic_term_probs
        mixture /= mixture.sum()
        counts = rng.multinomial(length, mixture)
        bag: Counter = Counter()
        for index in np.nonzero(counts)[0]:
            bag[self.terms[index]] = int(counts[index])
        return dict(bag)

    def term_vector(self, terms: Dict[str, int]) -> np.ndarray:
        """Dense term-frequency vector for a bag of terms."""
        vector = np.zeros(self.vocabulary_size)
        for term, count in terms.items():
            try:
                index = int(term[1:])
            except (ValueError, IndexError):
                continue
            if 0 <= index < self.vocabulary_size:
                vector[index] = count
        return vector

    def _term_indices(self, terms: Dict[str, int]) -> "tuple[List[int], List[int]]":
        """In-vocabulary term indices and their counts, in bag order."""
        indices: List[int] = []
        counts: List[int] = []
        for term, count in terms.items():
            try:
                index = int(term[1:])
            except (ValueError, IndexError):
                continue
            if 0 <= index < self.vocabulary_size:
                indices.append(index)
                counts.append(count)
        return indices, counts

    def topic_posterior(self, terms: Dict[str, int]) -> np.ndarray:
        """Rough posterior over topics given a bag of terms.

        One EM-free estimate: normalised likelihood of each topic generating
        the bag, under an independence assumption.  Used by cross-type
        matching to lift text into the shared concept space.  The per-topic
        log term probabilities are precomputed, so a call is one gather and
        one einsum reduction instead of a Python loop over terms.
        """
        indices, counts = self._term_indices(terms)
        if not indices:
            n_topics = self.topic_space.n_topics
            return np.full(n_topics, 1.0 / n_topics)
        log_likelihood = np.einsum(
            "ij,j->i",
            self._log_term_probs[:, indices],
            np.asarray(counts, dtype=float),
        )
        log_likelihood -= log_likelihood.max()
        posterior = np.exp(log_likelihood)
        return posterior / posterior.sum()

    def topic_posterior_many(self, bags: List[Dict[str, int]]) -> np.ndarray:
        """Stacked :meth:`topic_posterior` rows for many term bags."""
        if not bags:
            return np.zeros((0, self.topic_space.n_topics))
        return np.stack([self.topic_posterior(bag) for bag in bags])
