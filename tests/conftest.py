"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    TopicSpace,
    Vocabulary,
    reset_item_ids,
)
from repro.query import Query, QueryKind, RelevanceOracle
from repro.sim import RngStreams
from repro.sources import InformationSource, SourceQuality
from repro.uncertainty import build_matching_engine


# Hypothesis runs under pinned, derandomized profiles so the property
# suites are reproducible everywhere: "ci" (the default) replays the same
# deterministic example sequence on every machine, "dev" is a smaller
# subset for quick local loops.  Select with HYPOTHESIS_PROFILE=dev.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    derandomize=True,
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(autouse=True)
def _reset_ids():
    """Keep item ids deterministic within each test."""
    reset_item_ids()
    yield


@pytest.fixture(autouse=True, scope="session")
def _no_leaked_shm_segments():
    """The suite must not leave agora shared-memory segments behind.

    Every ``ShardPool`` unlinks its segments on ``stop()`` (and via the
    arena's atexit hook on crash paths); a name surviving the whole
    session is a leak.  Pre-existing segments from a concurrent run are
    tolerated by diffing against the set seen at session start.
    """
    from repro.parallel.shm import leaked_segments

    before = set(leaked_segments())
    yield
    leaked = sorted(set(leaked_segments()) - before)
    assert leaked == [], f"leaked /dev/shm segments: {leaked}"


@pytest.fixture
def streams():
    return RngStreams(seed=1234).spawn("test")


@pytest.fixture
def topic_space():
    return TopicSpace(n_topics=10)


@pytest.fixture
def vocabulary(topic_space, streams):
    return Vocabulary(topic_space, streams.spawn("vocab"), vocabulary_size=500, terms_per_topic=60)


@pytest.fixture
def corpus_generator(topic_space, vocabulary, streams):
    return CorpusGenerator(
        topic_space, vocabulary, streams.spawn("corpus"), feature_dimensions=16
    )


@pytest.fixture
def matching_engine(corpus_generator, vocabulary, streams):
    extractor = FeatureExtractor(16, streams.spawn("extract"))
    sample_spec = DomainSpec(
        name="lifter-sample",
        topic_prior={"folk-jewelry": 0.5, "dance-forms": 0.5},
        type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        concentration=1.0,
    )
    sample = corpus_generator.generate(sample_spec, 60)
    return build_matching_engine(vocabulary, extractor, lifter_sample=sample)


@pytest.fixture
def oracle(topic_space):
    return RelevanceOracle(topic_space, relevance_threshold=0.75)


def make_source(
    source_id,
    corpus_generator,
    matching_engine,
    streams,
    domain_spec=None,
    n_items=40,
    quality=None,
    node_id=None,
    health=None,
    load=None,
    items=None,
):
    """Helper: a populated source over one domain.

    Pass ``items`` to ingest a pre-generated collection (e.g. to build
    mirror sources sharing one corpus); otherwise a fresh one is drawn.
    """
    spec = domain_spec or DomainSpec(
        name="museum",
        topic_prior={"folk-jewelry": 0.6, "museum-exhibitions": 0.4},
    )
    source = InformationSource(
        source_id=source_id,
        node_id=node_id or f"node-{source_id}",
        domains=[spec.name],
        quality=quality or SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=0.0),
        engine=matching_engine,
        streams=streams.spawn(f"src.{source_id}"),
        health=health,
        load=load,
    )
    source.ingest(
        items if items is not None else corpus_generator.generate(spec, n_items),
        now=0.0,
    )
    return source


def make_topic_query(topic_space, vocabulary, topic, k=10, seed=0, **kwargs):
    """Helper: a topic query with known latent intent."""
    rng = np.random.default_rng(seed)
    intent = topic_space.basis(topic, weight=0.9)
    terms = vocabulary.sample_terms(intent, rng, length=60)
    return Query(
        kind=QueryKind.TOPIC,
        terms=terms,
        intent_latent=intent,
        k=k,
        **kwargs,
    )
