"""Tests for the browse graph and profile-guided browser."""

import numpy as np
import pytest

from repro.data import DomainSpec
from repro.multimodal import BrowseGraph, Browser
from repro.personalization import UserProfile


def _items(corpus_generator, topic, count, name):
    spec = DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )
    return corpus_generator.generate(spec, count)


@pytest.fixture
def graph(corpus_generator, matching_engine):
    items = (
        _items(corpus_generator, "folk-jewelry", 8, "jewelry")
        + _items(corpus_generator, "tourism", 8, "travel")
    )
    graph = BrowseGraph(matching_engine, k_links=3)
    graph.build(items)
    return graph


def _browser(graph, interests, streams, temperature=0.2):
    profile = UserProfile(user_id="iris", interests=np.asarray(interests, float))
    return Browser(
        graph, profile, concept_fn=lambda item: item.latent,
        streams=streams, temperature=temperature,
    )


class TestBrowseGraph:
    def test_build_links_everyone(self, graph):
        assert graph.size == 16
        for item in graph.items():
            assert len(graph.neighbours(item.item_id)) == 3

    def test_links_prefer_same_topic(self, graph):
        jewelry_items = [i for i in graph.items() if i.domain == "jewelry"]
        same_topic_links = 0
        total_links = 0
        for item in jewelry_items:
            for neighbour in graph.neighbours(item.item_id):
                total_links += 1
                if neighbour.domain == "jewelry":
                    same_topic_links += 1
        assert same_topic_links / total_links > 0.6

    def test_empty_build_rejected(self, matching_engine):
        graph = BrowseGraph(matching_engine)
        with pytest.raises(ValueError):
            graph.build([])

    def test_unknown_item(self, graph):
        with pytest.raises(KeyError):
            graph.neighbours("nothing")

    def test_invalid_k_links(self, matching_engine):
        with pytest.raises(ValueError):
            BrowseGraph(matching_engine, k_links=0)


class TestBrowser:
    def test_start_picks_most_interesting(self, graph, topic_space, streams):
        interests = topic_space.basis("folk-jewelry", 0.95)
        browser = _browser(graph, interests, streams.spawn("b1"))
        step = browser.start()
        assert step.item.domain == "jewelry"

    def test_walk_length(self, graph, topic_space, streams):
        interests = topic_space.basis("folk-jewelry", 0.95)
        browser = _browser(graph, interests, streams.spawn("b2"))
        trail = browser.walk(steps=5)
        assert len(trail) == 6  # start + 5 hops

    def test_goal_driven_stays_on_topic(self, graph, topic_space, streams):
        interests = topic_space.basis("folk-jewelry", 0.95)
        focused = _browser(graph, interests, streams.spawn("b3"), temperature=0.05)
        trail = focused.walk(steps=20)
        on_topic = sum(1 for step in trail if step.item.domain == "jewelry")
        assert on_topic / len(trail) > 0.7

    def test_high_temperature_explores_more(self, graph, topic_space, streams):
        interests = topic_space.basis("folk-jewelry", 0.95)
        focused = _browser(graph, interests, streams.spawn("b4"), temperature=0.02)
        wanderer = _browser(graph, interests, streams.spawn("b5"), temperature=5.0)
        focused_domains = {s.item.domain for s in focused.walk(30)}
        wanderer_domains = {s.item.domain for s in wanderer.walk(30)}
        assert len(wanderer_domains) >= len(focused_domains)

    def test_invalid_temperature(self, graph, topic_space, streams):
        with pytest.raises(ValueError):
            _browser(graph, topic_space.basis("tourism"), streams.spawn("b6"),
                     temperature=0.0)

    def test_negative_steps_rejected(self, graph, topic_space, streams):
        browser = _browser(graph, topic_space.basis("tourism"), streams.spawn("b7"))
        with pytest.raises(ValueError):
            browser.walk(-1)

    def test_visited_items(self, graph, topic_space, streams):
        browser = _browser(graph, topic_space.basis("tourism"), streams.spawn("b8"))
        browser.walk(4)
        assert len(browser.visited_items()) == 5
