"""Tests for multi-source profile integration."""

import numpy as np
import pytest

from repro.personalization import (
    LocalProfile,
    UserProfile,
    integrate_profiles,
    integrated_profile,
)


def _local(source, interests, confidence=1.0, observed_at=0.0, user="iris"):
    return LocalProfile(
        source_id=source, user_id=user,
        interests=np.asarray(interests, float),
        confidence=confidence, observed_at=observed_at,
    )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            integrate_profiles([])

    def test_mixed_users_rejected(self):
        with pytest.raises(ValueError):
            integrate_profiles([
                _local("a", [1, 0], user="iris"),
                _local("b", [1, 0], user="jason"),
            ])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            integrate_profiles([
                _local("a", [1, 0]),
                _local("b", [1, 0, 0]),
            ])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            _local("a", [1, 0], confidence=0.0)

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            integrate_profiles([_local("a", [1, 0])], recency_half_life=0.0)


class TestMerging:
    def test_consistent_profiles_average(self):
        report = integrate_profiles([
            _local("a", [0.6, 0.4]),
            _local("b", [0.6, 0.4]),
        ])
        np.testing.assert_allclose(report.merged_interests, [0.6, 0.4])
        assert report.consistent

    def test_confidence_weights_votes(self):
        report = integrate_profiles([
            _local("a", [1.0, 0.0], confidence=9.0),
            _local("b", [0.5, 0.5], confidence=1.0),
        ], inconsistency_tolerance=10.0)  # suppress inconsistency handling
        assert report.merged_interests[0] > 0.9

    def test_recency_decays_stale_sources(self):
        report = integrate_profiles([
            _local("stale", [1.0, 0.0], observed_at=0.0),
            _local("fresh", [0.0, 1.0], observed_at=1000.0),
        ], now=1000.0, recency_half_life=50.0, inconsistency_tolerance=10.0)
        assert report.merged_interests[1] > 0.9

    def test_inconsistency_detected_and_resolved_by_recency(self):
        report = integrate_profiles([
            _local("old-view", [0.9, 0.1], observed_at=0.0),
            _local("new-view", [0.1, 0.9], observed_at=100.0),
        ], now=100.0)
        assert not report.consistent
        # The fresher source wins the contested topics.
        assert np.argmax(report.merged_interests) == 1

    def test_merged_is_normalised(self):
        report = integrate_profiles([
            _local("a", [0.7, 0.3]),
            _local("b", [0.2, 0.8]),
        ])
        assert report.merged_interests.sum() == pytest.approx(1.0)

    def test_sources_reported(self):
        report = integrate_profiles([
            _local("b", [1, 0]),
            _local("a", [1, 0]),
        ])
        assert report.sources_used == ["a", "b"]

    def test_total_confidence_sums(self):
        report = integrate_profiles([
            _local("a", [1, 0], confidence=2.0),
            _local("b", [1, 0], confidence=3.0),
        ])
        assert report.total_confidence == 5.0


class TestIntegratedProfile:
    def test_base_fields_preserved(self):
        base = UserProfile(
            user_id="iris", interests=np.array([0.5, 0.5]),
            negotiation_style="boulware",
        )
        merged = integrated_profile(base, [_local("a", [1.0, 0.0], confidence=4.0)])
        assert merged.negotiation_style == "boulware"
        assert merged.confidence == 4.0
        assert np.argmax(merged.interests) == 0
