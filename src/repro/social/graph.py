"""Social graph of agora users.

Friendship (or collegial) ties carry weights in (0, 1]; social distance is
the weighted shortest path.  The graph feeds affinity computation and
privacy checks ("friends-only" profile parts).
"""

from __future__ import annotations

from typing import List

import networkx as nx


class SocialGraph:
    """An undirected weighted friendship graph."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    def add_user(self, user_id: str) -> None:
        """Ensure ``user_id`` exists as an isolated node."""
        self._graph.add_node(user_id)

    def befriend(self, a: str, b: str, strength: float = 1.0) -> None:
        """Create (or update) a tie; ``strength`` in (0, 1]."""
        if a == b:
            raise ValueError("cannot befriend oneself")
        if not 0.0 < strength <= 1.0:
            raise ValueError("strength must be in (0, 1]")
        # Stronger ties mean *shorter* social distance.
        self._graph.add_edge(a, b, strength=strength, distance=1.0 / strength)

    def unfriend(self, a: str, b: str) -> None:
        """Remove the tie between ``a`` and ``b`` if present."""
        if self._graph.has_edge(a, b):
            self._graph.remove_edge(a, b)

    # ------------------------------------------------------------------
    def users(self) -> List[str]:
        """Sorted user ids in the graph."""
        return sorted(self._graph.nodes)

    def friends(self, user_id: str) -> List[str]:
        """Sorted direct friends of ``user_id``."""
        if user_id not in self._graph:
            return []
        return sorted(self._graph.neighbors(user_id))

    def are_friends(self, a: str, b: str) -> bool:
        """Whether a direct tie joins ``a`` and ``b``."""
        return self._graph.has_edge(a, b)

    def tie_strength(self, a: str, b: str) -> float:
        """Direct tie strength, 0 when not friends."""
        if not self._graph.has_edge(a, b):
            return 0.0
        return self._graph.edges[a, b]["strength"]

    def distance(self, a: str, b: str) -> float:
        """Weighted social distance; inf when disconnected."""
        if a == b:
            return 0.0
        if a not in self._graph or b not in self._graph:
            return float("inf")
        try:
            return nx.shortest_path_length(self._graph, a, b, weight="distance")
        except nx.NetworkXNoPath:
            return float("inf")

    def proximity(self, a: str, b: str) -> float:
        """Social proximity in [0, 1]: 1/(1 + distance)."""
        d = self.distance(a, b)
        if d == float("inf"):
            return 0.0
        return 1.0 / (1.0 + d)

    def within_hops(self, user_id: str, hops: int) -> List[str]:
        """Users reachable within ``hops`` unweighted steps (excl. self)."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        if user_id not in self._graph:
            return []
        lengths = nx.single_source_shortest_path_length(self._graph, user_id, cutoff=hops)
        return sorted(u for u in lengths if u != user_id)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._graph
