"""Text and JSON reporters over an :class:`AnalysisReport`."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.engine import AnalysisReport


def render_text(report: AnalysisReport, show_suppressions: bool = False) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines: List[str] = []
    for path, error in report.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    for violation in report.violations:
        lines.append(violation.render())
    if show_suppressions:
        for suppression in report.suppressions:
            status = "used" if suppression.used else "UNUSED"
            rules = ",".join(suppression.rule_ids)
            reason = suppression.reason or "(no reason given)"
            lines.append(
                f"{suppression.path}:{suppression.line}: suppression "
                f"[{rules}] ({status}) — {reason}"
            )
    n_files = len(report.files)
    n_violations = len(report.violations)
    n_suppressed = len(report.suppressed)
    summary = (
        f"{n_violations} violation{'s' if n_violations != 1 else ''}"
        f" ({n_suppressed} suppressed) across {n_files} "
        f"file{'s' if n_files != 1 else ''}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload: Dict[str, Any] = {
        "ok": report.ok,
        "files": len(report.files),
        "summary": {
            "files": len(report.files),
            "violations": len(report.violations),
            "suppressed": len(report.suppressed),
            "parse_errors": len(report.parse_errors),
        },
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "suppressions": [s.as_dict() for s in report.suppressions],
        "parse_errors": [
            {"path": path, "error": error} for path, error in report.parse_errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
