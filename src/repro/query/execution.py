"""Plan execution against live sources.

The executor walks a plan tree, sends each ``Retrieve`` leaf to its
assigned source, calibrates raw scores into match probabilities, merges
uncertain result sets, and audits the delivery into a QoS vector via the
oracle.  Retrieval leaves under one ``Merge`` run *in parallel*: the plan's
response time is the slowest branch, not the sum.

When the context carries a :class:`repro.resilience.ResilienceRuntime`,
each leaf additionally gets the consumer-side defences against the §2
pathologies: deadline-aware retries with jittered backoff on declines,
failover and latency-hedging to alternate sources covering the same
domain, and per-source circuit breakers that skip known-bad sources
outright.  A leaf that exhausts every defence degrades to an empty result
instead of raising — partial answers beat no answers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.qos.vector import QoSVector
from repro.query.algebra import Merge, PlanNode, Retrieve, Threshold, TopK
from repro.query.model import PruneHint, Query, Subquery
from repro.query.oracle import RelevanceOracle
from repro.resilience.hedging import HedgeOutcome
from repro.resilience.runtime import ResilienceRuntime
from repro.sources.registry import SourceRegistry
from repro.sources.source import SourceAnswer
from repro.uncertainty.calibration import BinnedCalibrator
from repro.uncertainty.results import UncertainMatch, UncertainResultSet

if TYPE_CHECKING:
    from repro.parallel.service import ParallelRankService

LatencyFn = Callable[[str], float]
TrustFn = Callable[[str], float]


@dataclass
class ExecutionContext:
    """Everything the executor needs besides the plan itself.

    Attributes
    ----------
    registry:
        Where live source objects are found.
    oracle:
        Audits deliveries (stands in for user judgement).
    calibrator:
        Maps raw match scores to probabilities; ``None`` uses the raw
        score as the probability (the uncalibrated baseline).
    now:
        Virtual time of execution.
    consumer_id:
        Who is asking (sources may blacklist or decline).
    latency:
        Network round-trip time to a source's node; default 0.
    trust:
        Consumer's current trust in a source; default 1.
    resilience:
        Optional :class:`ResilienceRuntime`; when present and enabled the
        executor retries, hedges and breaker-gates each leaf.
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`; when attached the
        executor records a causal span per execution, merge, retrieval
        leaf, retry, failover and hedge.
    parallel:
        Optional :class:`~repro.parallel.service.ParallelRankService`;
        when present each retrieve leaf's ranking fans out over the shard
        pool (results stay bitwise identical — see
        :mod:`repro.parallel.merge`).
    """

    registry: SourceRegistry
    oracle: RelevanceOracle
    calibrator: Optional[BinnedCalibrator] = None
    now: float = 0.0
    consumer_id: str = ""
    latency: Optional[LatencyFn] = None
    trust: Optional[TrustFn] = None
    resilience: Optional[ResilienceRuntime] = None
    tracer: Optional[SpanTracer] = None
    parallel: Optional["ParallelRankService"] = None

    def latency_to(self, source_id: str) -> float:
        """Network latency to a source (0 without a latency model)."""
        return self.latency(source_id) if self.latency is not None else 0.0

    def trust_in(self, source_id: str) -> float:
        """Trust in a source (1 without a trust model)."""
        return self.trust(source_id) if self.trust is not None else 1.0


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    query: Query
    results: UncertainResultSet
    delivered: QoSVector
    answers: List[SourceAnswer] = field(default_factory=list)
    declined_sources: List[str] = field(default_factory=list)
    response_time: float = 0.0
    #: per-execution resilience counters (retries, hedges, ... ); empty
    #: when no resilience runtime was active
    resilience_events: Dict[str, float] = field(default_factory=dict)
    #: hedges/failovers issued during this execution
    hedge_outcomes: List[HedgeOutcome] = field(default_factory=list)

    @property
    def sources_used(self) -> List[str]:
        """Sorted sources that actually answered."""
        return sorted({a.source_id for a in self.answers if not a.declined})


class QueryExecutor:
    """Executes plan trees."""

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._tracer = context.tracer if context.tracer is not None else NULL_TRACER
        self._events: Dict[str, float] = defaultdict(float)
        self._hedges: List[HedgeOutcome] = []

    # ------------------------------------------------------------------
    def execute(self, plan: PlanNode, query: Query) -> ExecutionResult:
        """Run ``plan`` and audit the delivery."""
        answers: List[SourceAnswer] = []
        self._events = defaultdict(float)
        self._hedges = []
        with self._tracer.span(
            "execute", query_id=query.query_id, consumer=self.context.consumer_id
        ) as span:
            results, elapsed = self._run(plan, answers)
            span.annotate(
                response_time=elapsed,
                answers=len(answers),
                matches=len(results.items()),
            )
        served = {a.source_id for a in answers if not a.declined}
        declined_set = {a.source_id for a in answers if a.declined}
        if self.context.resilience is not None and self.context.resilience.enabled:
            # A source that declined but was successfully retried within
            # this execution did, in the end, deliver — don't cancel it.
            declined_set -= served
        declined = sorted(declined_set)
        used_sources = sorted(served)
        trust = (
            float(np.mean([self.context.trust_in(s) for s in used_sources]))
            if used_sources
            else 0.0
        )
        reachable = self._reachable_items(plan)
        delivered = self.context.oracle.delivered_qos(
            query=query,
            returned=results.items(),
            reachable=reachable,
            response_time=elapsed,
            now=self.context.now,
            source_trust=trust,
        )
        return ExecutionResult(
            query=query,
            results=results,
            delivered=delivered,
            answers=answers,
            declined_sources=declined,
            response_time=elapsed,
            resilience_events=dict(self._events),
            hedge_outcomes=list(self._hedges),
        )

    def execute_leaf(self, leaf: Retrieve):
        """Run a single retrieval leaf.

        Returns ``(results, elapsed, answer)`` — used by the collaborative
        multi-query optimizer to execute shared jobs exactly once.  With a
        resilience runtime the returned answer is the first non-declined
        one (the answer the leaf's results came from).
        """
        answers: List[SourceAnswer] = []
        results, elapsed = self._run_retrieve(leaf, answers)
        answer = next((a for a in answers if not a.declined), answers[0])
        return results, elapsed, answer

    # ------------------------------------------------------------------
    def _identity_calibration(self) -> bool:
        """Whether calibrated probability is exactly the clipped raw score.

        Only then is pushing ``Threshold``/``TopK`` cutoffs down to the
        sources provably lossless: the plan filters on *probability*, the
        source prunes on *score*, and the two agree iff the mapping is
        the identity.  A fitted calibrator may be non-monotone, so no
        cutoff is pushed past it.
        """
        calibrator = self.context.calibrator
        return calibrator is None or not calibrator.is_fitted

    def _run(
        self,
        node: PlanNode,
        answers: List[SourceAnswer],
        hint: Optional[PruneHint] = None,
    ):
        if isinstance(node, Retrieve):
            return self._run_retrieve(node, answers, hint)
        if isinstance(node, Merge):
            with self._tracer.span("merge", children=len(node.children)) as span:
                child_outputs = [
                    self._run(child, answers, hint) for child in node.children
                ]
                merged = UncertainResultSet()
                for result_set, __ in child_outputs:
                    merged = merged.merge(result_set)
                # A Merge can end up with zero children (e.g. a plan rewritten
                # after every leaf was abandoned): the union over nothing is
                # the empty set, delivered instantly.
                elapsed = max(
                    (elapsed for __, elapsed in child_outputs), default=0.0
                )
                span.annotate(elapsed=elapsed, matches=len(merged.items()))
            return merged, elapsed
        if isinstance(node, Threshold):
            child_hint = hint
            if self._identity_calibration():
                previous = hint if hint is not None else PruneHint()
                child_hint = PruneHint(
                    score_floor=max(previous.score_floor, node.tau),
                    k_cap=previous.k_cap,
                )
            results, elapsed = self._run(node.child, answers, child_hint)
            return results.filter_confidence(node.tau), elapsed
        if isinstance(node, TopK):
            child_hint = hint
            if self._identity_calibration():
                previous = hint if hint is not None else PruneHint()
                k_cap = (
                    node.k
                    if previous.k_cap is None
                    else min(previous.k_cap, node.k)
                )
                child_hint = PruneHint(
                    score_floor=previous.score_floor, k_cap=k_cap
                )
            results, elapsed = self._run(node.child, answers, child_hint)
            return results.top_k(node.k), elapsed
        raise TypeError(f"unknown plan node {type(node).__name__}")

    def _run_retrieve(
        self,
        node: Retrieve,
        answers: List[SourceAnswer],
        hint: Optional[PruneHint] = None,
    ):
        runtime = self.context.resilience
        with self._tracer.span(
            "retrieve", source=node.source_id, job=node.job_id
        ) as span:
            if runtime is not None and runtime.enabled:
                results, elapsed = self._run_retrieve_resilient(
                    node, answers, runtime, hint
                )
                span.annotate(elapsed=elapsed, resilient=True)
                return results, elapsed
            answer, cost = self._ask(node.source_id, node.subquery, answers, hint)
            if answer.declined:
                span.annotate(declined=True)
                return UncertainResultSet(), 0.0
            span.annotate(
                elapsed=cost,
                candidates=answer.candidates_scanned,
                scored=answer.candidates_scored,
            )
            return self._result_set(answer, node.source_id), cost

    # -- plain building blocks ------------------------------------------
    def _ask(
        self,
        source_id: str,
        subquery: Subquery,
        answers: List[SourceAnswer],
        hint: Optional[PruneHint] = None,
    ) -> Tuple[SourceAnswer, float]:
        """One request to one source; returns the answer and its time cost.

        A decline still costs the network round trip (the consumer has to
        hear "no"); a served answer costs service time plus the round trip.
        """
        context = self.context
        source = context.registry.source(source_id)
        answer = source.answer(
            subquery,
            now=context.now,
            consumer_id=context.consumer_id,
            prune=hint,
            parallel=context.parallel,
        )
        answers.append(answer)
        round_trip = 2.0 * context.latency_to(source_id)
        if answer.declined:
            return answer, round_trip
        return answer, answer.service_time + round_trip

    def _result_set(self, answer: SourceAnswer, source_id: str) -> UncertainResultSet:
        context = self.context
        matches = []
        for item, score in answer.matches:
            score = float(np.clip(score, 0.0, 1.0))
            if context.calibrator is not None and context.calibrator.is_fitted:
                probability = context.calibrator.predict(score)
            else:
                probability = score
            matches.append(
                UncertainMatch(
                    item=item,
                    score=score,
                    probability=probability,
                    source_id=source_id,
                )
            )
        return UncertainResultSet(matches)

    # -- resilient leaf --------------------------------------------------
    def _count(self, runtime: ResilienceRuntime, name: str) -> None:
        runtime.count(name)
        self._events[name] += 1.0

    def _run_retrieve_resilient(
        self,
        node: Retrieve,
        answers: List[SourceAnswer],
        runtime: ResilienceRuntime,
        hint: Optional[PruneHint] = None,
    ):
        """One leaf under retry + failover + hedging + breaker policies.

        Timing model: attempts against the primary are sequential (each
        retry waits its backoff), failover attempts are sequential after
        the primary gives up, and a latency hedge runs *in parallel* with
        a slow primary — the leaf completes at the first non-declined
        answer, while late successful duplicates still enrich the merged
        result set (dedup by item id, so nothing is double-counted).
        """
        subquery = node.subquery
        tracer = self._tracer
        tried: set = set()
        clock = 0.0

        def attempt(source_id: str) -> Tuple[SourceAnswer, float]:
            tried.add(source_id)
            answer, cost = self._ask(source_id, subquery, answers, hint)
            runtime.record_outcome(source_id, not answer.declined)
            return answer, cost

        # --- primary, with deadline-aware retries ---------------------
        primary_answer: Optional[SourceAnswer] = None
        if runtime.allow(node.source_id):
            primary_answer, cost = attempt(node.source_id)
            clock += cost
            retries = 0
            while (
                primary_answer.declined
                and retries < runtime.config.retry.max_attempts - 1
            ):
                delay = runtime.backoff_delay(retries)
                if not runtime.within_deadline(subquery, clock + delay):
                    self._count(runtime, "deadline_stops")
                    tracer.event("deadline_stop", source=node.source_id)
                    break
                clock += delay
                retries += 1
                self._count(runtime, "retries")
                with tracer.span(
                    "retry", source=node.source_id, attempt=retries, backoff=delay
                ) as retry_span:
                    primary_answer, cost = attempt(node.source_id)
                    retry_span.annotate(declined=primary_answer.declined)
                clock += cost
        else:
            tried.add(node.source_id)
            self._count(runtime, "breaker_short_circuits")
            tracer.event("breaker_short_circuit", source=node.source_id)

        primary_ok = primary_answer is not None and not primary_answer.declined
        results = (
            self._result_set(primary_answer, node.source_id)
            if primary_ok
            else UncertainResultSet()
        )

        # --- failover: primary gave up, alternates take over ----------
        if not primary_ok:
            for alternate in runtime.alternates(subquery, exclude=tried):
                if not runtime.within_deadline(subquery, clock):
                    self._count(runtime, "deadline_stops")
                    tracer.event("deadline_stop", source=node.source_id)
                    break
                self._count(runtime, "failovers")
                with tracer.span(
                    "failover", primary=node.source_id, alternate=alternate
                ) as failover_span:
                    answer, cost = attempt(alternate)
                    failover_span.annotate(declined=answer.declined)
                clock += cost
                if not answer.declined:
                    self._count(runtime, "leaf_recoveries")
                    self._hedges.append(HedgeOutcome(
                        job_id=node.job_id,
                        primary=node.source_id,
                        alternate=alternate,
                        primary_elapsed=clock - cost,
                        alternate_elapsed=cost,
                        winner=alternate,
                    ))
                    return self._result_set(answer, alternate), clock
            self._count(runtime, "leaf_failures")
            return results, clock

        # --- latency hedge: primary served, but slowly ----------------
        hedge = runtime.config.hedge
        completion = clock
        if hedge.fires(clock) and runtime.within_deadline(subquery, hedge.threshold):
            issued = 0
            for alternate in runtime.alternates(subquery, exclude=tried):
                if issued >= hedge.max_hedges:
                    break
                issued += 1
                self._count(runtime, "hedges")
                with tracer.span(
                    "hedge", primary=node.source_id, alternate=alternate
                ) as hedge_span:
                    answer, cost = attempt(alternate)
                    hedge_span.annotate(declined=answer.declined)
                if answer.declined:
                    continue
                hedge_completion = hedge.threshold + cost
                if hedge_completion < completion:
                    self._count(runtime, "hedge_wins")
                    completion = hedge_completion
                self._hedges.append(HedgeOutcome(
                    job_id=node.job_id,
                    primary=node.source_id,
                    alternate=alternate,
                    primary_elapsed=clock,
                    alternate_elapsed=hedge_completion,
                    winner=(
                        alternate if hedge_completion < clock else node.source_id
                    ),
                ))
                results = results.merge(self._result_set(answer, alternate))
        return results, completion

    def _reachable_items(self, plan: PlanNode) -> List:
        """All items visible at any source the plan touches (dedup by id)."""
        context = self.context
        seen: Dict[str, object] = {}
        for leaf in plan.leaves():
            source = context.registry.source(leaf.source_id)
            for item in source.visible_items(context.now, domain=leaf.subquery.domain):
                seen.setdefault(item.item_id, item)
        return list(seen.values())
