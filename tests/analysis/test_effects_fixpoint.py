"""Adversarial inputs for the interprocedural effect fixpoint.

Each case builds a small in-memory project via ``ProjectIndex.add_source``
and checks the converged verdicts — the goal is to pin the lattice
behaviour on the shapes that historically break effect analyses: cycles,
dynamic dispatch, decorator poisoning, and side effects hiding behind
attribute reads.
"""

from repro.analysis.effects import (
    MUTATES_SHARED,
    PURE,
    READS_SHARED,
    UNKNOWN,
    ProjectIndex,
    analyse,
)


def build_index(*sources: str) -> ProjectIndex:
    index = ProjectIndex()
    for position, source in enumerate(sources):
        index.add_source(
            source, path=f"mem/m{position}.py", module=f"repro.mem.m{position}"
        )
    index.finalise()
    return index


def verdicts_of(*sources: str):
    return analyse(build_index(*sources)).verdicts


class TestRecursionAndCycles:
    def test_pure_mutual_recursion_converges_to_pure(self):
        verdicts = verdicts_of(
            "def even(n: int) -> bool:\n"
            "    return True if n == 0 else odd(n - 1)\n"
            "\n"
            "def odd(n: int) -> bool:\n"
            "    return False if n == 0 else even(n - 1)\n"
        )
        assert verdicts["repro.mem.m0.even"] == PURE
        assert verdicts["repro.mem.m0.odd"] == PURE

    def test_cycle_converges_to_the_worst_member(self):
        # a three-node call cycle where one node writes a module global:
        # the mutation must reach every member through the cycle
        verdicts = verdicts_of(
            "CACHE = {}\n"
            "\n"
            "def a(n: int) -> int:\n"
            "    return b(n)\n"
            "\n"
            "def b(n: int) -> int:\n"
            "    return c(n)\n"
            "\n"
            "def c(n: int) -> int:\n"
            "    CACHE[n] = n\n"
            "    return a(n - 1) if n else 0\n"
        )
        for name in ("a", "b", "c"):
            assert verdicts[f"repro.mem.m0.{name}"] == MUTATES_SHARED

    def test_self_recursion_with_read_stays_reads_shared(self):
        verdicts = verdicts_of(
            "LIMITS = {}\n"
            "\n"
            "def probe(n: int) -> int:\n"
            "    if n in LIMITS:\n"
            "        return probe(n - 1)\n"
            "    return n\n"
        )
        assert verdicts["repro.mem.m0.probe"] == READS_SHARED


class TestDynamicDispatch:
    OVERRIDES = (
        "class Base:\n"
        "    def work(self) -> int:\n"
        "        return 1\n"
        "\n"
        "class Noisy(Base):\n"
        "    def work(self) -> int:\n"
        "        self.count = 1\n"
        "        return 2\n"
        "\n"
        "def drive(item: Base) -> int:\n"
        "    return item.work()\n"
    )

    def test_call_through_base_joins_every_override(self):
        # the receiver is typed Base, so the join covers Base.work (pure)
        # and Noisy.work (self-write mapped through a param receiver)
        verdicts = verdicts_of(self.OVERRIDES)
        assert verdicts["repro.mem.m0.Base.work"] == PURE
        assert verdicts["repro.mem.m0.Noisy.work"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.drive"] == MUTATES_SHARED

    def test_untyped_receiver_with_unknown_method_poisons(self):
        verdicts = verdicts_of(
            "def drive(item) -> int:\n"
            "    return item.frobnicate()\n"
        )
        assert verdicts["repro.mem.m0.drive"] == UNKNOWN


class TestDecorators:
    def test_unknown_decorator_poisons_the_function(self):
        # a decorator the index cannot resolve may replace the function
        # wholesale; the analysis must refuse to certify through it
        verdicts = verdicts_of(
            "from somewhere import magic\n"
            "\n"
            "@magic\n"
            "def shiny() -> int:\n"
            "    return 1\n"
        )
        assert verdicts["repro.mem.m0.shiny"] == UNKNOWN

    def test_lru_cache_is_a_shared_memo_mutation(self):
        verdicts = verdicts_of(
            "import functools\n"
            "\n"
            "@functools.lru_cache(maxsize=64)\n"
            "def slow(n: int) -> int:\n"
            "    return n * n\n"
        )
        assert verdicts["repro.mem.m0.slow"] == MUTATES_SHARED

    def test_benign_decorators_do_not_poison(self):
        verdicts = verdicts_of(
            "class Box:\n"
            "    @staticmethod\n"
            "    def lift(n: int) -> int:\n"
            "        return n + 1\n"
        )
        assert verdicts["repro.mem.m0.Box.lift"] == PURE


class TestPropertyAbsorption:
    SOURCE = (
        "class Lazy:\n"
        "    @property\n"
        "    def rows(self) -> int:\n"
        "        self._rows = 3\n"
        "        return self._rows\n"
        "\n"
        "def peek(lazy: Lazy) -> int:\n"
        "    return lazy.rows\n"
        "\n"
        "def local_peek() -> int:\n"
        "    lazy = Lazy()\n"
        "    return lazy.rows\n"
    )

    def test_property_getter_side_effect_reaches_the_reader(self):
        # reading ``lazy.rows`` runs the getter, which writes instance
        # state; through a parameter receiver that is a WRITE_ARG
        verdicts = verdicts_of(self.SOURCE)
        assert verdicts["repro.mem.m0.Lazy.rows"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.peek"] == MUTATES_SHARED

    def test_fresh_receiver_confines_the_getter_write(self):
        # the same getter through a locally constructed object mutates
        # nothing observable — the write maps through FRESH and drops
        verdicts = verdicts_of(self.SOURCE)
        assert verdicts["repro.mem.m0.local_peek"] == PURE


class TestCallResolutionPolicy:
    def test_builtin_verbs_beat_name_join(self):
        # ``.append`` is a builtin mutator even though a project class
        # also defines a method of that name; the table must win over the
        # speculative name join
        verdicts = verdicts_of(
            "class Log:\n"
            "    def append(self, row: str) -> None:\n"
            "        self.rows = row\n"
            "\n"
            "def collect(n: int) -> list:\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        out.append(i)\n"
            "    return out\n"
        )
        assert verdicts["repro.mem.m0.collect"] == PURE

    def test_typed_receiver_resolves_precisely(self):
        # with the receiver annotated, only Quiet.emit is joined — the
        # noisy same-name method on an unrelated class is ignored
        verdicts = verdicts_of(
            "GLOBAL = {}\n"
            "\n"
            "class Quiet:\n"
            "    def emit(self) -> int:\n"
            "        return 0\n"
            "\n"
            "class Loud:\n"
            "    def emit(self) -> int:\n"
            "        GLOBAL['x'] = 1\n"
            "        return 1\n"
            "\n"
            "def run(q: Quiet) -> int:\n"
            "    return q.emit()\n"
        )
        assert verdicts["repro.mem.m0.run"] == PURE

    def test_cross_module_calls_resolve(self):
        verdicts = verdicts_of(
            "# module: repro.mem.alpha\n"
            "STATE = {}\n"
            "\n"
            "def poke() -> None:\n"
            "    STATE['k'] = 1\n",
            "# module: repro.mem.beta\n"
            "from repro.mem.alpha import poke\n"
            "\n"
            "def run() -> None:\n"
            "    poke()\n",
        )
        assert verdicts["repro.mem.beta.run"] == MUTATES_SHARED
