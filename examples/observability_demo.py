"""Record one seeded agora run's observability artifacts.

Builds a small agora with causal tracing and consumer-side resilience
enabled, degrades half the overlay so retries/failovers actually fire,
runs a batch of queries, and exports the full artifact set:

    runs/<name>/manifest.json   canonical run provenance
    runs/<name>/metrics.jsonl   counters + distribution summaries
    runs/<name>/spans.jsonl     the causal span forest

Two invocations with the same ``--seed`` produce byte-identical
manifests — attest it with::

    python examples/observability_demo.py --seed 11 --out runs/a
    python examples/observability_demo.py --seed 11 --out runs/b
    python -m repro.obs diff runs/a/manifest.json runs/b/manifest.json

With ``--flight`` the queries are scheduled on the virtual timeline
(churn on, so background events interleave) and the kernel's flight
recorder streams a byte-stable per-event log to ``runs/<name>/flight/``.
``--fault-at T`` injects a node outage at virtual time ``T``; a run
without the flag installs the same script beyond the horizon so the two
runs' event seqs stay aligned and the first divergence *is* the fault::

    python examples/observability_demo.py --seed 11 --out runs/a --flight
    python examples/observability_demo.py --seed 11 --out runs/m --flight --fault-at 17
    python -m repro.obs divergence runs/a runs/m
"""

import argparse
from typing import Optional

import numpy as np

from repro import Consumer, UserProfile, build_agora
from repro.obs import export_run
from repro.resilience import FaultScript, ResilienceConfig
from repro.workloads import QueryWorkloadGenerator

#: Virtual-time spacing between scheduled queries in ``--flight`` mode.
QUERY_SPACING = 5.0


def record(
    seed: int,
    out: str,
    n_queries: int = 8,
    availability: float = 0.5,
    flight: bool = False,
    fault_at: Optional[float] = None,
) -> dict:
    agora = build_agora(
        seed=seed, n_sources=8, items_per_source=12, calibration_pairs=0,
        enable_tracing=True, enable_churn=flight, enable_flight_recorder=flight,
    )
    rng = np.random.default_rng(seed + 1)
    for node in agora.topology.nodes[:-1]:  # keep the consumer node up
        agora.health.set_state(node, bool(rng.random() < availability))
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("obs-demo"),
    )
    profile = UserProfile(
        user_id="obs-demo-user",
        interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(
        agora, profile, planner="trading",
        resilience=ResilienceConfig.default_enabled(),
    )
    queries = [
        workload.topic_query(agora.topic_space.names[index % 5], k=10)
        for index in range(n_queries)
    ]
    if flight:
        horizon = QUERY_SPACING * (n_queries + 1)
        assert agora.tracer is not None
        with agora.tracer.span("drive"):
            for index, query in enumerate(queries):
                agora.sim.schedule(
                    QUERY_SPACING * index + QUERY_SPACING / 2,
                    (lambda q=query: consumer.ask(q)),
                    tag=f"query-{index}",
                )
        # Install the fault script unconditionally: a clean run fires it
        # beyond the horizon, so clean and mutant runs push the same
        # events in the same order and their seq numbering stays aligned
        # — the first divergent record is the fault itself.
        start = fault_at if fault_at is not None else horizon * 100
        node = agora.sources[sorted(agora.sources)[0]].node_id
        agora.inject_faults(FaultScript().outage(node, start=start, duration=10.0))
        agora.run(until=horizon)
    else:
        for query in queries:
            consumer.ask(query)
    manifest = agora.run_manifest(scenario="observability-demo")
    return export_run(
        out, manifest, registry=agora.sim.metrics, tracer=agora.tracer,
        flight=agora.flight,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="runs/demo")
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--availability", type=float, default=0.5)
    parser.add_argument(
        "--flight", action="store_true",
        help="run queries on the virtual timeline with the flight recorder on",
    )
    parser.add_argument(
        "--fault-at", type=float, default=None,
        help="inject a node outage at this virtual time (implies --flight)",
    )
    args = parser.parse_args()
    written = record(
        args.seed, args.out, args.queries, args.availability,
        flight=args.flight or args.fault_at is not None, fault_at=args.fault_at,
    )
    for kind in sorted(written):
        print(f"{kind}: {written[kind]}")


if __name__ == "__main__":
    main()
