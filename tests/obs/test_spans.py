"""Tests for the causal span tracer."""

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanTracer,
    ancestors,
    child_map,
    descendants_of,
    span_index,
)


class TestSpanBasics:
    def test_nesting_builds_parent_chain(self):
        tracer = SpanTracer()
        with tracer.span("query") as root:
            with tracer.span("retrieve") as leaf:
                pass
        assert root.parent_id is None
        assert leaf.parent_id == root.span_id

    def test_span_ids_are_sequential(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.span_id for s in tracer.spans()] == [0, 1]

    def test_clock_stamps_start_and_end(self):
        now = [1.5]
        tracer = SpanTracer(clock=lambda: now[0])
        with tracer.span("work") as span:
            now[0] = 4.0
        assert span.start == 1.5
        assert span.end == 4.0
        assert span.duration == 2.5

    def test_error_sets_status_and_closes_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert span.end is not None
        assert tracer.current_id is None

    def test_annotate_and_event(self):
        tracer = SpanTracer()
        with tracer.span("parent") as span:
            span.annotate(outcome="served", k=10)
            mark = tracer.event("net.drop", node="n1")
        assert span.attributes == {"outcome": "served", "k": 10}
        assert mark.parent_id == span.span_id
        assert mark.end == mark.start

    def test_round_trip_through_dict(self):
        span = Span(span_id=3, parent_id=1, name="x", start=0.5, end=1.5,
                    status="error", attributes={"a": 1})
        assert Span.from_dict(span.to_dict()) == span


class TestDisabledTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("a") as span:
            tracer.event("b")
        assert span is NULL_SPAN
        assert tracer.spans() == []
        assert tracer.span_count == 0

    def test_null_span_annotate_is_inert(self):
        NULL_SPAN.annotate(poison=True)
        assert NULL_SPAN.attributes == {}

    def test_shared_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything") as span:
            assert span is NULL_SPAN


class TestResumeRelease:
    def test_resume_reparents_onto_scheduling_span(self):
        tracer = SpanTracer()
        with tracer.span("root") as root:
            scheduled_from = tracer.current_id
        # Later, "the kernel" runs the callback under the saved context.
        tracer.resume(scheduled_from)
        with tracer.span("callback") as callback:
            pass
        tracer.release()
        assert callback.parent_id == root.span_id
        assert tracer.current_id is None

    def test_release_restores_interrupted_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("detour") as detour:
                pass
            tracer.resume(detour.span_id)
            assert tracer.current_id == detour.span_id
            tracer.release()
            assert tracer.current_id == outer.span_id

    def test_max_spans_cap_drops_and_counts(self):
        tracer = SpanTracer(max_spans=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("c") as dropped:
            with tracer.span("d"):
                pass
        assert dropped is NULL_SPAN
        assert tracer.span_count == 2
        assert tracer.dropped_spans == 2


class TestTreeHelpers:
    def _forest(self):
        tracer = SpanTracer()
        with tracer.span("q0") as q0:
            with tracer.span("merge"):
                with tracer.span("retrieve"):
                    pass
        with tracer.span("q1"):
            pass
        return tracer.spans(), q0

    def test_child_map_groups_roots_under_none(self):
        spans, __ = self._forest()
        children = child_map(spans)
        assert [s.name for s in children[None]] == ["q0", "q1"]
        assert [s.name for s in children[0]] == ["merge"]

    def test_ancestors_walks_to_root(self):
        spans, __ = self._forest()
        index = span_index(spans)
        retrieve = next(s for s in spans if s.name == "retrieve")
        assert [a.name for a in ancestors(retrieve, index)] == ["merge", "q0"]

    def test_descendants_of_root(self):
        spans, q0 = self._forest()
        assert {s.name for s in descendants_of(q0.span_id, spans)} == {
            "merge", "retrieve",
        }

    def test_orphan_parent_treated_as_root(self):
        orphan = Span(span_id=9, parent_id=777, name="orphan", start=0.0)
        children = child_map([orphan])
        assert children[None] == [orphan]
