"""Tests for the trace recorder."""

from repro.obs import MetricsRegistry
from repro.sim import TraceRecorder


class TestCounters:
    def test_count_and_read(self):
        trace = TraceRecorder()
        trace.count("messages")
        trace.count("messages", 2.0)
        assert trace.counter("messages") == 3.0

    def test_unknown_counter_is_zero(self):
        assert TraceRecorder().counter("nothing") == 0.0

    def test_counters_snapshot_is_copy(self):
        trace = TraceRecorder()
        trace.count("x")
        snapshot = trace.counters()
        snapshot["x"] = 99
        assert trace.counter("x") == 1.0


class TestTimers:
    def test_observe_aggregates(self):
        trace = TraceRecorder()
        for value in (1.0, 3.0, 2.0):
            trace.observe("latency", value)
        stats = trace.timer("latency")
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_timer_mean_is_zero(self):
        assert TraceRecorder().timer("empty").mean == 0.0

    def test_timer_read_creates_no_entry(self):
        # Regression: the defaultdict-backed recorder used to insert an
        # empty TimerStats on every read, polluting summaries.
        trace = TraceRecorder()
        trace.timer("phantom")
        assert trace.timers() == {}
        assert "phantom" not in trace.summary()["timers"]
        assert trace.metrics.histogram_or_none("phantom") is None

    def test_timer_returns_detached_snapshot(self):
        trace = TraceRecorder()
        trace.observe("latency", 1.0)
        snapshot = trace.timer("latency")
        snapshot.observe(100.0)  # folding into the snapshot...
        assert trace.timer("latency").count == 1  # ...never writes back
        assert trace.timer("latency").maximum == 1.0


class TestRecords:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "net", "send")
        trace.record(2.0, "qos", "breach")
        assert len(trace.records()) == 2
        assert [r.label for r in trace.records("net")] == ["send"]

    def test_record_cap(self):
        trace = TraceRecorder(max_records=2)
        for i in range(5):
            trace.record(float(i), "c", "l")
        assert len(trace.records()) == 2
        assert trace.dropped_records == 3

    def test_keep_records_false(self):
        trace = TraceRecorder(keep_records=False)
        trace.record(1.0, "c", "l")
        assert trace.records() == []

    def test_summary_shape(self):
        trace = TraceRecorder()
        trace.count("x")
        trace.observe("t", 1.0)
        trace.record(0.0, "c", "l")
        summary = trace.summary()
        assert summary["counters"] == {"x": 1.0}
        assert summary["timers"]["t"]["count"] == 1
        assert summary["records"] == 1

    def test_summary_reports_dropped_records(self):
        trace = TraceRecorder(max_records=1)
        trace.record(0.0, "c", "kept")
        trace.record(1.0, "c", "dropped")
        summary = trace.summary()
        assert summary["records"] == 1
        assert summary["dropped"] == 1
        assert [r.label for r in trace.records()] == ["kept"]

    def test_summary_is_pure(self):
        # Building a summary must not fabricate counters or timers, and
        # summarising twice must give identical results.
        trace = TraceRecorder()
        trace.count("real")
        trace.counter("ghost-counter")  # reads...
        trace.timer("ghost-timer")
        first = trace.summary()
        second = trace.summary()
        assert first == second
        assert set(first["counters"]) == {"real"}
        assert first["timers"] == {}


class TestRegistryBacking:
    def test_counts_land_in_shared_registry(self):
        registry = MetricsRegistry()
        trace = TraceRecorder(metrics=registry)
        trace.count("sim.events", 3.0)
        trace.observe("lat", 0.5)
        assert registry.counter_value("sim.events") == 3.0
        assert registry.histogram_or_none("lat").count == 1

    def test_private_registry_is_exposed(self):
        trace = TraceRecorder()
        trace.count("x")
        assert trace.metrics.counter_value("x") == 1.0
