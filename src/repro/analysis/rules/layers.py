"""AGR008 — layering violations against the declared package DAG.

See :mod:`repro.analysis.layering` for the DAG itself.  The canonical
catch: ``repro.sim`` importing anything from the library would let domain
state leak into the kernel and is flagged here long before it becomes an
import cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.layering import LAYER_DEPS, check_import, package_of
from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation


def _imported_modules(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Import):
        return [name.name for name in node.names]
    if isinstance(node, ast.ImportFrom) and node.module and not node.level:
        return [node.module]
    return []


class LayeringRule(Rule):
    """Enforce the declared layer DAG on runtime imports."""

    rule_id = "AGR008"
    title = "layering violation"
    rationale = (
        "Runtime imports must follow the declared package DAG; the sim "
        "kernel stays a leaf and composition happens in repro.core."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node.lineno in ctx.type_checking_linenos:
                continue
            for imported in _imported_modules(node):
                allowed, importer_pkg = check_import(ctx.module, imported)
                if allowed:
                    continue
                declared: Tuple[str, ...] = tuple(
                    sorted(LAYER_DEPS.get(importer_pkg or "", frozenset()))
                )
                imported_pkg = package_of(imported)
                yield self.violation(
                    ctx,
                    node,
                    f"`repro.{importer_pkg}` may not import "
                    f"`repro.{imported_pkg}` at runtime (declared deps: "
                    f"{', '.join(declared) if declared else 'none'}); move "
                    "the dependency down the DAG or gate it behind "
                    "TYPE_CHECKING",
                )
