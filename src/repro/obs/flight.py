"""Streaming, byte-stable flight recorder for simulator dispatch.

The :class:`FlightRecorder` answers "what exactly happened, in order?".
The simulation kernel calls :meth:`FlightRecorder.record` once per
dispatched event — after the event's callback has run — with the event's
primitive coordinates.  Each call appends one canonical-JSON line

``{"callback": ..., "draws": ..., "kind": ..., "seq": ..., "span": ...,
"time": ...}``

where ``draws`` is the RNG draw count since recording began, sampled
*after* the callback, so the first line that differs between two
recordings names the exact event during which behavior forked.  Every :data:`checkpoint interval
<DEFAULT_CHECKPOINT_INTERVAL>` events a checkpoint line snapshots the
rolling SHA-256 digest of all prior lines plus the full per-stream draw
counters, giving the divergence debugger (:mod:`repro.obs.divergence`)
binary-search anchors and per-stream attribution.

Recordings are written as chunked JSONL (``chunk-000000.jsonl``, ...)
plus a ``footer.json`` carrying the final digest, the checkpoint index,
and the final stream counters.  Two same-seed runs produce byte-identical
chunk and footer files, so CI can ``cmp`` them directly.

Like :class:`repro.obs.profile.SimProfiler`, the recorder holds no
reference to the kernel or RNG registry types — the kernel binds draw
accessors as plain callables (:meth:`bind_rng`), keeping ``repro.obs``
at the bottom of the layer DAG.
"""

from __future__ import annotations

import functools
import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.obs.manifest import canonical_json

PathLike = Union[str, Path]

#: Format version written into every recording footer.
FLIGHT_VERSION = "repro.flight/1"
#: Footer file name inside a recording directory.
FOOTER_FILE = "footer.json"
#: Chunk file name pattern (zero-padded so lexical order = chunk order).
CHUNK_PATTERN = "chunk-{:06d}.jsonl"
#: Events between checkpoint lines.
DEFAULT_CHECKPOINT_INTERVAL = 64
#: JSONL lines per chunk file.
DEFAULT_CHUNK_LINES = 4096


# agora: shard-safe
def callback_identity(action: Callable[..., Any]) -> str:
    """Deterministic ``module:qualname`` identity of an event callback.

    Unwraps ``functools.partial`` layers, ``__wrapped__`` chains and
    bound methods; callable objects fall back to their class.  The
    result contains no memory addresses, so two same-seed runs agree on
    every identity byte-for-byte.
    """
    target: Any = action
    for _ in range(8):
        if isinstance(target, functools.partial):
            target = target.func
            continue
        wrapped = getattr(target, "__wrapped__", None)
        if wrapped is not None:
            target = wrapped
            continue
        break
    func = getattr(target, "__func__", target)
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        cls = type(target)
        return f"{getattr(cls, '__module__', '?')}:{cls.__qualname__}"
    return f"{getattr(func, '__module__', None) or '?'}:{qualname}"


class FlightRecorder:
    """Streams per-event records with rolling digests to chunked JSONL.

    The hot-path surface is a single method (:meth:`record`) doing one
    dict build, one digest update and one list append, so recorder-on
    runs stay within the benchmark gate's 1.5x-of-tracing budget
    (``benchmarks/bench_obs_overhead.py``).

    Parameters
    ----------
    checkpoint_interval:
        Events between checkpoint lines (digest + stream counters).
    chunk_lines:
        JSONL lines per chunk file when streaming to a directory.
    shard_id:
        Namespace index of the recording process (coordinator = 0),
        matching ``repro.obs.context`` span-id namespaces.
    """

    def __init__(
        self,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        chunk_lines: int = DEFAULT_CHUNK_LINES,
        shard_id: int = 0,
    ) -> None:
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if chunk_lines <= 0:
            raise ValueError("chunk_lines must be positive")
        if shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        self._interval = checkpoint_interval
        self._chunk_lines = chunk_lines
        self._shard_id = shard_id
        self._digest = hashlib.sha256()
        self._pending: List[str] = []
        self._chunks_written = 0
        self._directory: Optional[Path] = None
        self._events = 0
        self._checkpoints: List[Dict[str, Any]] = []
        self._draw_total: Callable[[], int] = lambda: 0
        self._draw_counts: Callable[[], Dict[str, int]] = dict
        self._started = False
        self._base_total = 0
        self._base_counts: Dict[str, int] = {}
        self._finalized = False
        # Hot-path cache: JSON-escaped forms of callback identities and
        # event kinds, which repeat heavily across a run's events.
        self._escaped: Dict[str, str] = {}

    # -- wiring ------------------------------------------------------------
    def bind_rng(
        self,
        draw_total: Callable[[], int],
        draw_counts: Callable[[], Dict[str, int]],
    ) -> None:
        """Bind RNG draw accessors (plain callables, no RNG types here)."""
        self._draw_total = draw_total
        self._draw_counts = draw_counts

    def bind_directory(self, directory: PathLike) -> None:
        """Stream chunks into ``directory`` as they fill up.

        Without a bound directory the recorder buffers lines in memory
        until :meth:`finalize` is given a directory.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        self._directory = target

    def start(self) -> None:
        """Capture the RNG draw baseline; idempotent.

        The kernel calls this right before dispatching events.  All
        ``draws`` totals and stream tables in the recording are *deltas
        against this baseline*, so construction-time randomness (whose
        stream names may embed process-global identifiers) never leaks
        into the recording — recordings compare across runs that built
        any number of other simulators first.
        """
        if self._started:
            return
        self._started = True
        self._base_total = self._draw_total()
        self._base_counts = dict(self._draw_counts())

    # -- introspection -----------------------------------------------------
    @property
    def shard_id(self) -> int:
        """Namespace index of the recording process."""
        return self._shard_id

    @property
    def record_count(self) -> int:
        """Event records written so far (checkpoint lines excluded)."""
        return self._events

    @property
    def digest(self) -> str:
        """Rolling SHA-256 over every line written so far."""
        return self._digest.hexdigest()

    def checkpoints(self) -> List[Dict[str, Any]]:
        """Checkpoint index entries written so far (copies)."""
        return [dict(entry) for entry in self._checkpoints]

    # -- recording (kernel hot path) ---------------------------------------
    # agora: worker-local per-run event log; recordings are compared
    # across runs/shards only after export
    def record(
        self,
        seq: int,
        time: float,
        kind: str,
        callback: str,
        span_id: Optional[int],
    ) -> None:
        """Append one event record (the kernel calls this per dispatch).

        ``draws`` snapshots the total RNG draw count *after* the event's
        callback ran, so a divergent record is the event during which
        randomness consumption (or anything else) forked.
        """
        if self._finalized:
            raise RuntimeError("flight recorder already finalized")
        if not self._started:
            self.start()
        # Hand-built canonical JSON: byte-identical to json.dumps with
        # sorted keys and minimal separators (CPython's encoder renders
        # floats with repr), but without paying the encoder per event.
        # test_flight pins the equivalence.
        escaped = self._escaped
        callback_json = escaped.get(callback)
        if callback_json is None:
            callback_json = escaped[callback] = json.dumps(callback)
        kind_json = escaped.get(kind)
        if kind_json is None:
            kind_json = escaped[kind] = json.dumps(kind)
        draws = self._draw_total() - self._base_total
        span_json = "null" if span_id is None else str(span_id)
        self._append(
            f'{{"callback":{callback_json},"draws":{draws},'
            f'"kind":{kind_json},"seq":{seq},"span":{span_json},'
            f'"time":{float(time)!r}}}'
        )
        self._events += 1
        if self._events % self._interval == 0:
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        """Emit a checkpoint line: digest-so-far + per-stream counters.

        The recorded digest covers every line *before* the checkpoint
        line itself, so comparing checkpoint digests brackets divergence
        to the preceding window.
        """
        ordinal = len(self._checkpoints)
        index_entry = {
            "checkpoint": ordinal,
            "events": self._events,
            "digest": self._digest.hexdigest(),
        }
        self._checkpoints.append(index_entry)
        line_entry = dict(index_entry)
        line_entry["streams"] = self._stream_counts()
        self._append(json.dumps(line_entry, sort_keys=True, separators=(",", ":")))

    def _stream_counts(self) -> Dict[str, int]:
        """Per-stream draws since :meth:`start` (zero-delta streams omitted)."""
        base = self._base_counts
        return {
            name: count - base.get(name, 0)
            for name, count in self._draw_counts().items()
            if count - base.get(name, 0) > 0
        }

    def _append(self, line: str) -> None:
        self._digest.update(line.encode("utf-8"))
        self._digest.update(b"\n")
        self._pending.append(line)
        if self._directory is not None and len(self._pending) >= self._chunk_lines:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        assert self._directory is not None
        path = self._directory / CHUNK_PATTERN.format(self._chunks_written)
        path.write_text("\n".join(self._pending) + "\n")
        self._chunks_written += 1
        self._pending = []

    # -- finalization ------------------------------------------------------
    def footer_dict(self) -> Dict[str, Any]:
        """The footer payload as of now (written by :meth:`finalize`)."""
        return {
            "version": FLIGHT_VERSION,
            "shard_id": self._shard_id,
            "events": self._events,
            "digest": self._digest.hexdigest(),
            "checkpoint_interval": self._interval,
            "chunk_lines": self._chunk_lines,
            "chunks": self._chunks_written + (1 if self._pending else 0),
            "checkpoints": [dict(entry) for entry in self._checkpoints],
            "streams": self._stream_counts(),
        }

    def finalize(self, directory: Optional[PathLike] = None) -> Dict[str, str]:
        """Flush pending lines and write ``footer.json``.

        Returns artifact kind → path (``{"flight": <directory>}``).  The
        recorder refuses further :meth:`record` calls afterwards.
        """
        if directory is not None:
            self.bind_directory(directory)
        if self._directory is None:
            raise ValueError("no directory bound; pass one to finalize()")
        footer = self.footer_dict()
        if self._pending:
            self._flush_chunk()
        (self._directory / FOOTER_FILE).write_text(canonical_json(footer) + "\n")
        self._finalized = True
        return {"flight": str(self._directory)}

    def manifest_section(self) -> Dict[str, Any]:
        """Compact summary recorded into the run manifest."""
        return {
            "digest": self._digest.hexdigest(),
            "events": self._events,
            "shard_id": self._shard_id,
        }

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(events={self._events}, "
            f"checkpoints={len(self._checkpoints)}, shard={self._shard_id})"
        )
