"""Whole-project AST index for the interprocedural effect pass.

Collects every module under the analysed roots into one registry:
functions and methods keyed by qualified name
(``repro.pkg.mod.Class.method``), class metadata (bases, methods,
properties, subclasses), per-module import-alias tables and
module-level binding mutability, plus the ``# agora: shard-safe`` /
``# agora: worker-local`` annotations that drive certification.

Everything is collected in sorted-path order so downstream output is
deterministic regardless of filesystem enumeration order.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.effects.model import Prov
from repro.analysis.engine import module_name_for
from repro.analysis.rules.base import RuleContext

_MODULE_OVERRIDE_PREFIX = "# module:"

#: declaration comment grammar (never matches ``# agora: ignore[...]``)
ANNOTATION_RE = re.compile(
    r"#\s*agora:\s*(?P<kind>shard-safe|worker-local)\b[ \t]*(?P<reason>[^#]*)"
)

SHARD_SAFE = "shard-safe"
WORKER_LOCAL = "worker-local"

#: function decorators that do not change the effect story of the body
BENIGN_DECORATORS = frozenset(
    {
        "property",
        "staticmethod",
        "classmethod",
        "abstractmethod",
        "abc.abstractmethod",
        "functools.wraps",
        "contextlib.contextmanager",
        "typing.overload",
        "dataclasses.dataclass",
    }
)

#: decorators that introduce memoisation on the function object
MEMO_DECORATORS = frozenset(
    {
        "functools.lru_cache",
        "functools.cache",
        "functools.cached_property",
    }
)

_IMMUTABLE_CONSTS = (
    ast.Constant,
    ast.Tuple,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.IfExp,
    ast.Lambda,
    ast.Attribute,
    ast.Name,
    ast.Subscript,
    ast.JoinedStr,
)


_UNION_HEADS = frozenset(
    {"Optional", "Union", "typing.Optional", "typing.Union"}
)


def annotation_refs(node: Optional[ast.expr], ctx: RuleContext) -> Tuple[str, ...]:
    """Candidate class references named by a type annotation.

    Handles string annotations, ``Optional[X]`` / ``Union[X, Y]`` and PEP
    604 ``X | None`` unions; container annotations (``List[X]``) name the
    container, not the element, and contribute nothing.
    """
    if node is None:
        return ()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ()
        return annotation_refs(parsed, ctx)
    if isinstance(node, ast.Subscript):
        head = ctx.resolve(node.value)
        if head in _UNION_HEADS:
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                refs: List[str] = []
                for element in inner.elts:
                    refs.extend(annotation_refs(element, ctx))
                return tuple(sorted(set(refs)))
            return annotation_refs(inner, ctx)
        return ()
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        refs = list(annotation_refs(node.left, ctx))
        refs.extend(annotation_refs(node.right, ctx))
        return tuple(sorted(set(refs)))
    if isinstance(node, (ast.Name, ast.Attribute)):
        resolved = ctx.resolve(node)
        if resolved is None or resolved in ("None", "NoneType"):
            return ()
        return (resolved,)
    return ()


@dataclass(frozen=True)
class Annotation:
    """One ``# agora: shard-safe`` / ``# agora: worker-local`` comment."""

    kind: str
    lineno: int
    reason: str
    path: str


@dataclass
class FunctionInfo:
    """One analysable function or method."""

    qualname: str
    module: str
    path: str
    lineno: int
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    class_name: str = ""
    #: ordered parameter names, receiver (self/cls) excluded
    params: Tuple[str, ...] = ()
    #: receiver name when this is an instance/class method ("" otherwise)
    receiver: str = ""
    has_varargs: bool = False
    is_property: bool = False
    #: name this setter property assigns to, when decorated @x.setter
    setter_for: str = ""
    is_static: bool = False
    has_memo_decorator: bool = False
    unknown_decorators: Tuple[str, ...] = ()
    annotation: Optional[Annotation] = None
    #: parameter name -> candidate class refs from its type annotation
    param_type_refs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: candidate class refs from the return annotation
    return_type_refs: Tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One project class: methods, properties, bases, subclasses."""

    qualname: str
    module: str
    name: str
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: property name -> getter qualname
    properties: Dict[str, str] = field(default_factory=dict)
    #: attr name -> setter qualname
    setters: Dict[str, str] = field(default_factory=dict)
    #: resolved project base-class qualnames
    bases: Tuple[str, ...] = ()
    #: filled in after all modules are collected
    subclasses: List[str] = field(default_factory=list)
    #: instance attr -> candidate class refs (annotations + constructor
    #: assigns + annotated-parameter assigns in method bodies)
    field_type_refs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module facts the resolver needs."""

    name: str
    path: str
    ctx: RuleContext
    #: module-level names bound to mutable containers/objects
    mutable_globals: Set[str] = field(default_factory=set)
    #: module-level function name -> qualname
    functions: Dict[str, str] = field(default_factory=dict)
    #: module-level class name -> class qualname
    classes: Dict[str, str] = field(default_factory=dict)


def _module_override(source: str) -> Optional[str]:
    for line in source.splitlines()[:5]:
        stripped = line.strip()
        if stripped.startswith(_MODULE_OVERRIDE_PREFIX):
            return stripped[len(_MODULE_OVERRIDE_PREFIX):].strip() or None
    return None


def _decorator_name(node: ast.expr, ctx: RuleContext) -> str:
    """Canonical dotted name of a decorator expression."""
    target = node
    if isinstance(target, ast.Call):
        target = target.func
    resolved = ctx.resolve(target)
    if resolved is not None:
        return resolved
    if isinstance(target, ast.Attribute):
        # ``@x.setter`` / ``@x.getter`` style
        return target.attr
    return ast.dump(target)[:40]


def _is_mutable_initializer(node: ast.expr) -> bool:
    """Whether a module-level assignment binds an (aliasable) mutable."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        # Constructor calls at module level produce shared singletons;
        # treat them as mutable unless they are obviously value-like.
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name not in {
            "frozenset",
            "tuple",
            "compile",  # compiled regexes are immutable in practice
            "FrozenSet",
            "namedtuple",
            "TypeVar",
        }
    if isinstance(node, _IMMUTABLE_CONSTS):
        return False
    return True


def _collect_annotations(source: str, path: str) -> Dict[int, Annotation]:
    """Declarations found in real comment tokens.

    Tokenising (rather than grepping lines) keeps docstrings and string
    literals that merely *mention* the grammar from counting as
    declarations.
    """
    found: Dict[int, Annotation] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = ANNOTATION_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        found[lineno] = Annotation(
            kind=match.group("kind"),
            lineno=lineno,
            reason=match.group("reason").strip(),
            path=path,
        )
    return found


def _is_comment_or_blank(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


class ProjectIndex:
    """The whole-project registry built from a set of source roots."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.modules: Dict[str, ModuleInfo] = {}
        #: method name -> sorted qualnames of every project method with it
        self.methods_by_name: Dict[str, List[str]] = {}
        #: property name -> sorted getter qualnames
        self.properties_by_name: Dict[str, List[str]] = {}
        #: annotations that did not attach to any function
        self.dangling: List[Annotation] = []
        #: (path, message) parse failures
        self.parse_errors: List[Tuple[str, str]] = []
        #: memoised return-value provenance per function qualname
        #: (filled lazily by :func:`..effects.local.callee_return_prov`)
        self.return_prov_cache: Dict[str, Prov] = {}
        #: cycle guard for the return-provenance computation
        self.return_prov_stack: Set[str] = set()

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, paths: Iterable[Union[str, Path]]) -> "ProjectIndex":
        """Index every ``*.py`` file under ``paths`` (sorted order)."""
        index = cls()
        files: List[Path] = []
        for path in paths:
            target = Path(path)
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            else:
                files.append(target)
        for file_path in sorted(set(files)):
            index.add_file(file_path)
        index.finalise()
        return index

    def add_file(self, path: Path) -> None:
        """Parse and index one file."""
        source = path.read_text(encoding="utf-8")
        module = _module_override(source) or module_name_for(path)
        if module is None:
            module = ".".join(("x", path.stem))
        self.add_source(source, path=str(path), module=module)

    def add_source(self, source: str, path: str, module: str) -> None:
        """Index one in-memory module (fixtures use this directly)."""
        override = _module_override(source)
        if override is not None:
            module = override
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            self.parse_errors.append((path, f"line {error.lineno}: {error.msg}"))
            return
        ctx = RuleContext(path=path, source=source, tree=tree, module=module)
        info = ModuleInfo(name=module, path=path, ctx=ctx)
        annotations = _collect_annotations(source, path)
        claimed: Set[int] = set()

        for node in tree.body:
            self._index_toplevel(node, info, ctx, annotations, claimed)
        self.modules[module] = info
        for lineno in sorted(annotations):
            if lineno not in claimed:
                self.dangling.append(annotations[lineno])

    # -- module internals ----------------------------------------------
    def _index_toplevel(
        self,
        node: ast.stmt,
        info: ModuleInfo,
        ctx: RuleContext,
        annotations: Dict[int, Annotation],
        claimed: Set[int],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = self._register_function(
                node, info, ctx, class_name="", annotations=annotations, claimed=claimed
            )
            info.functions[node.name] = func.qualname
        elif isinstance(node, ast.ClassDef):
            self._register_class(node, info, ctx, annotations, claimed)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None or not _is_mutable_initializer(value):
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    info.mutable_globals.add(target.id)

    def _register_class(
        self,
        node: ast.ClassDef,
        info: ModuleInfo,
        ctx: RuleContext,
        annotations: Dict[int, Annotation],
        claimed: Set[int],
    ) -> None:
        class_qual = f"{info.name}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            resolved = ctx.resolve(base)
            if resolved is not None:
                bases.append(resolved)
        cls_info = ClassInfo(
            qualname=class_qual,
            module=info.name,
            name=node.name,
            bases=tuple(bases),
        )
        field_refs: Dict[str, Set[str]] = {}
        for child in node.body:
            if isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                refs = annotation_refs(child.annotation, ctx)
                if refs:
                    field_refs.setdefault(child.target.id, set()).update(refs)
                continue
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            func = self._register_function(
                child,
                info,
                ctx,
                class_name=node.name,
                annotations=annotations,
                claimed=claimed,
            )
            if func.is_property:
                cls_info.properties[child.name] = func.qualname
            elif func.setter_for:
                cls_info.setters[func.setter_for] = func.qualname
            else:
                cls_info.methods[child.name] = func.qualname
            self._collect_field_refs(child, func, info, ctx, field_refs)
        cls_info.field_type_refs = {
            attr: tuple(sorted(refs)) for attr, refs in field_refs.items()
        }
        self.classes[class_qual] = cls_info
        info.classes[node.name] = class_qual

    def _collect_field_refs(
        self,
        method: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        func: FunctionInfo,
        info: ModuleInfo,
        ctx: RuleContext,
        field_refs: Dict[str, Set[str]],
    ) -> None:
        """Harvest ``self.attr`` type evidence from one method body."""
        receiver = func.receiver
        if not receiver:
            return
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != receiver
            ):
                continue
            attr = target.attr
            refs: Tuple[str, ...] = ()
            if annotation is not None:
                refs = annotation_refs(annotation, ctx)
            elif isinstance(value, ast.Call):
                # ``self.attr = SomeClass(...)`` — non-class callables
                # simply fail to resolve to a project class later
                constructed = ctx.resolve(value.func)
                if constructed is not None:
                    refs = (constructed,)
            elif isinstance(value, ast.Name) and value.id in func.param_type_refs:
                refs = func.param_type_refs[value.id]
            if refs:
                field_refs.setdefault(attr, set()).update(refs)

    def _register_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        info: ModuleInfo,
        ctx: RuleContext,
        class_name: str,
        annotations: Dict[int, Annotation],
        claimed: Set[int],
    ) -> FunctionInfo:
        if class_name:
            qualname = f"{info.name}.{class_name}.{node.name}"
        else:
            qualname = f"{info.name}.{node.name}"

        is_property = False
        is_static = False
        has_memo = False
        setter_for = ""
        unknown: List[str] = []
        for decorator in node.decorator_list:
            name = _decorator_name(decorator, ctx)
            if name == "property":
                is_property = True
            elif name == "staticmethod":
                is_static = True
            elif name in MEMO_DECORATORS or name.split(".")[-1] == "lru_cache":
                has_memo = True
            elif name == "setter" or name.endswith(".setter"):
                target = decorator
                if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                    setter_for = target.value.id
            elif name == "getter" or name.endswith(".getter"):
                is_property = True
            elif name in BENIGN_DECORATORS or name.split(".")[-1] == "wraps":
                pass
            else:
                unknown.append(name)

        all_args = (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
        arg_names = [a.arg for a in node.args.posonlyargs] + [a.arg for a in node.args.args]
        receiver = ""
        if class_name and not is_static and arg_names:
            receiver = arg_names[0]
            arg_names = arg_names[1:]
        arg_names += [a.arg for a in node.args.kwonlyargs]
        has_varargs = node.args.vararg is not None or node.args.kwarg is not None
        param_type_refs: Dict[str, Tuple[str, ...]] = {}
        for arg in all_args:
            if arg.arg == receiver or arg.annotation is None:
                continue
            refs = annotation_refs(arg.annotation, ctx)
            if refs:
                param_type_refs[arg.arg] = refs
        return_type_refs = annotation_refs(node.returns, ctx)

        annotation = self._claim_annotation(node, ctx, annotations, claimed)
        func = FunctionInfo(
            qualname=qualname,
            module=info.name,
            path=info.path,
            lineno=node.lineno,
            node=node,
            class_name=class_name,
            params=tuple(arg_names),
            # classmethods keep ``cls`` as their receiver on purpose:
            # cls-reachable state is class-level shared state, so
            # SELF-mapped reads/writes through it still apply
            receiver=receiver,
            has_varargs=has_varargs,
            is_property=is_property,
            setter_for=setter_for,
            is_static=is_static,
            has_memo_decorator=has_memo,
            unknown_decorators=tuple(sorted(unknown)),
            annotation=annotation,
            param_type_refs=param_type_refs,
            return_type_refs=return_type_refs,
        )
        self.functions[qualname] = func
        return func

    def _claim_annotation(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        ctx: RuleContext,
        annotations: Dict[int, Annotation],
        claimed: Set[int],
    ) -> Optional[Annotation]:
        """Attach the nearest declaration comment to this ``def``.

        A declaration may sit on the ``def`` line itself, on a decorator
        line, or on a contiguous comment block immediately above the
        first decorator / the ``def``.
        """
        candidates = [node.lineno] + [d.lineno for d in node.decorator_list]
        first = min(candidates)
        lineno = first - 1
        while lineno >= 1 and _is_comment_or_blank(ctx.lines[lineno - 1]):
            candidates.append(lineno)
            stripped = ctx.lines[lineno - 1].strip()
            if not stripped:
                break
            lineno -= 1
        for candidate in candidates:
            annotation = annotations.get(candidate)
            if annotation is not None and candidate not in claimed:
                claimed.add(candidate)
                return annotation
        return None

    # -- finalisation ---------------------------------------------------
    def finalise(self) -> None:
        """Build cross-module indexes (subclasses, name joins)."""
        by_name: Dict[str, Set[str]] = {}
        prop_by_name: Dict[str, Set[str]] = {}
        for cls in self.classes.values():
            for method_name, qualname in cls.methods.items():
                by_name.setdefault(method_name, set()).add(qualname)
            for prop_name, qualname in cls.properties.items():
                prop_by_name.setdefault(prop_name, set()).add(qualname)
            for base in cls.bases:
                base_cls = self._resolve_class_ref(base, cls.module)
                if base_cls is not None:
                    base_cls.subclasses.append(cls.qualname)
        for cls in self.classes.values():
            cls.subclasses.sort()
        self.methods_by_name = {
            name: sorted(quals) for name, quals in by_name.items()
        }
        self.properties_by_name = {
            name: sorted(quals) for name, quals in prop_by_name.items()
        }

    def _resolve_class_ref(self, dotted: str, module: str) -> Optional[ClassInfo]:
        """Find the :class:`ClassInfo` a base-class reference points at."""
        if dotted in self.classes:
            return self.classes[dotted]
        local = f"{module}.{dotted}"
        if local in self.classes:
            return self.classes[local]
        # ``pkg.mod.Class`` resolved through an import alias already gives
        # the canonical path; a bare name may also shadow via ctx aliases,
        # which ``ctx.resolve`` handled before we got here.
        return None

    # -- lookup helpers -------------------------------------------------
    def resolve_class(self, ref: str, module: str) -> Optional[ClassInfo]:
        """Resolve a type reference (local or canonical) to a class."""
        return self._resolve_class_ref(ref, module)

    def field_classes(self, cls: ClassInfo, attr: str) -> List[ClassInfo]:
        """Classes the typed field ``attr`` may hold, across the MRO."""
        found: Dict[str, ClassInfo] = {}
        for candidate in self.mro_classes(cls):
            for ref in candidate.field_type_refs.get(attr, ()):
                resolved = self._resolve_class_ref(ref, candidate.module)
                if resolved is not None:
                    found[resolved.qualname] = resolved
        return [found[name] for name in sorted(found)]

    def class_of(self, func: FunctionInfo) -> Optional[ClassInfo]:
        """The class a method belongs to, if any."""
        if not func.class_name:
            return None
        return self.classes.get(f"{func.module}.{func.class_name}")

    def mro_classes(self, cls: ClassInfo) -> List[ClassInfo]:
        """This class plus every resolvable project ancestor."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            order.append(current)
            for base in current.bases:
                base_cls = self._resolve_class_ref(base, current.module)
                if base_cls is not None:
                    stack.append(base_cls)
        return order

    def override_targets(self, cls: ClassInfo, method: str) -> List[str]:
        """Resolutions of ``self.method()``: own/ancestor defs plus every
        subclass override (a base-class caller may dispatch to any)."""
        targets: Set[str] = set()
        for candidate in self.mro_classes(cls):
            if method in candidate.methods:
                targets.add(candidate.methods[method])
                break
        stack = list(cls.subclasses)
        seen: Set[str] = set()
        while stack:
            sub_name = stack.pop(0)
            if sub_name in seen:
                continue
            seen.add(sub_name)
            sub = self.classes.get(sub_name)
            if sub is None:
                continue
            if method in sub.methods:
                targets.add(sub.methods[method])
            stack.extend(sub.subclasses)
        return sorted(targets)

    def property_targets(self, cls: ClassInfo, attr: str) -> List[str]:
        """Getter qualnames for ``self.attr`` when ``attr`` is a property."""
        targets: Set[str] = set()
        for candidate in self.mro_classes(cls):
            if attr in candidate.properties:
                targets.add(candidate.properties[attr])
                break
        return sorted(targets)

    def declared(self, kind: str) -> List[FunctionInfo]:
        """All functions carrying a declaration of ``kind``, sorted."""
        found = [
            func
            for func in self.functions.values()
            if func.annotation is not None and func.annotation.kind == kind
        ]
        return sorted(found, key=lambda f: f.qualname)
