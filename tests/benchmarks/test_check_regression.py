"""Unit tests for the benchmark regression comparator.

``benchmarks/check_regression.py`` gates CI, so its comparator math gets
the same treatment as library code: exact ratio semantics, the
NEW/MISSING non-failure contract, the env-var factor override, and the
usage exit code.
"""

import importlib.util
import json
import pathlib

import pytest

_MODULE_PATH = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
)


def _load_module():
    spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check_regression():
    return _load_module()


def _export(path, means):
    """Write a minimal pytest-benchmark JSON export mapping name -> mean."""
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean, "stddev": 0.0}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadMeans:
    def test_maps_names_to_means(self, check_regression, tmp_path):
        path = _export(tmp_path / "a.json", {"bench_a": 0.5, "bench_b": 0.25})
        assert check_regression.load_means(path) == {
            "bench_a": 0.5,
            "bench_b": 0.25,
        }

    def test_empty_export(self, check_regression, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({}))
        assert check_regression.load_means(str(path)) == {}


class TestComparator:
    def test_within_factor_passes(self, check_regression, tmp_path):
        current = _export(tmp_path / "cur.json", {"bench": 0.0019})
        baseline = _export(tmp_path / "base.json", {"bench": 0.001})
        assert check_regression.main(["prog", current, baseline]) == 0

    def test_beyond_factor_fails(self, check_regression, tmp_path, capsys):
        current = _export(tmp_path / "cur.json", {"bench": 0.0021})
        baseline = _export(tmp_path / "base.json", {"bench": 0.001})
        assert check_regression.main(["prog", current, baseline]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_exactly_at_factor_passes(self, check_regression, tmp_path):
        # The contract is strict: ratio must *exceed* the factor to fail.
        current = _export(tmp_path / "cur.json", {"bench": 0.002})
        baseline = _export(tmp_path / "base.json", {"bench": 0.001})
        assert check_regression.main(["prog", current, baseline]) == 0

    def test_new_benchmark_never_fails(self, check_regression, tmp_path, capsys):
        current = _export(tmp_path / "cur.json", {"fresh": 99.0})
        baseline = _export(tmp_path / "base.json", {})
        assert check_regression.main(["prog", current, baseline]) == 0
        assert "NEW" in capsys.readouterr().out

    def test_missing_benchmark_never_fails(self, check_regression, tmp_path, capsys):
        current = _export(tmp_path / "cur.json", {})
        baseline = _export(tmp_path / "base.json", {"retired": 0.001})
        assert check_regression.main(["prog", current, baseline]) == 0
        assert "MISSING" in capsys.readouterr().out

    def test_zero_baseline_mean_is_infinite_ratio(
        self, check_regression, tmp_path
    ):
        current = _export(tmp_path / "cur.json", {"bench": 1e-9})
        baseline = _export(tmp_path / "base.json", {"bench": 0.0})
        assert check_regression.main(["prog", current, baseline]) == 1

    def test_factor_env_override(
        self, check_regression, tmp_path, monkeypatch, capsys
    ):
        current = _export(tmp_path / "cur.json", {"bench": 0.0021})
        baseline = _export(tmp_path / "base.json", {"bench": 0.001})
        monkeypatch.setenv("BENCH_REGRESSION_FACTOR", "3.0")
        assert check_regression.main(["prog", current, baseline]) == 0
        out = capsys.readouterr().out
        assert "3.0x" in out

    def test_only_regressed_names_reported(
        self, check_regression, tmp_path, capsys
    ):
        current = _export(
            tmp_path / "cur.json", {"slow": 0.01, "steady": 0.001}
        )
        baseline = _export(
            tmp_path / "base.json", {"slow": 0.001, "steady": 0.001}
        )
        assert check_regression.main(["prog", current, baseline]) == 1
        out = capsys.readouterr().out
        assert "1 benchmark(s) regressed" in out
        assert "slow" in out


class TestUsage:
    def test_wrong_argc_exits_2(self, check_regression, capsys):
        assert check_regression.main(["prog"]) == 2
        assert "Usage" in capsys.readouterr().out

    def test_extra_args_exit_2(self, check_regression):
        assert check_regression.main(["prog", "a", "b", "c"]) == 2
