"""Tests for breach-probability estimation."""

import pytest

from repro.qos import (
    QoSRequirement,
    QoSVector,
    breach_probability,
    dimension_breach_probability,
)


class TestDimension:
    def test_zero_margin_is_coin_flip(self):
        assert dimension_breach_probability(0.0) == pytest.approx(0.5)

    def test_large_positive_margin_safe(self):
        assert dimension_breach_probability(2.0) < 0.01

    def test_large_negative_margin_doomed(self):
        assert dimension_breach_probability(-2.0) > 0.99

    def test_monotone_in_margin(self):
        probs = [dimension_breach_probability(m) for m in (-1.0, 0.0, 1.0)]
        assert probs[0] > probs[1] > probs[2]

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            dimension_breach_probability(0.0, sharpness=0.0)


class TestVector:
    def test_trivial_requirement_never_breaches(self):
        assert breach_probability(QoSVector(), QoSRequirement()) == 0.0

    def test_comfortable_margins_low_risk(self):
        expected = QoSVector(response_time=1.0, completeness=0.95)
        requirement = QoSRequirement(max_response_time=20.0, min_completeness=0.5)
        assert breach_probability(expected, requirement) < 0.1

    def test_impossible_promise_high_risk(self):
        expected = QoSVector(response_time=50.0, completeness=0.3)
        requirement = QoSRequirement(max_response_time=1.0, min_completeness=0.9)
        assert breach_probability(expected, requirement) > 0.9

    def test_more_constraints_more_risk(self):
        expected = QoSVector(response_time=5.0, completeness=0.7, freshness=0.7)
        loose = QoSRequirement(min_completeness=0.65)
        tight = QoSRequirement(
            min_completeness=0.65, min_freshness=0.65, max_response_time=6.0
        )
        assert breach_probability(expected, tight) > breach_probability(expected, loose)

    def test_probability_bounded(self):
        expected = QoSVector(response_time=5.0, completeness=0.5)
        requirement = QoSRequirement(
            max_response_time=5.0, min_completeness=0.5, min_freshness=0.5,
            min_correctness=0.5, min_trust=0.5,
        )
        assert 0.0 <= breach_probability(expected, requirement) <= 1.0

    def test_invalid_time_scale(self):
        with pytest.raises(ValueError):
            breach_probability(QoSVector(), QoSRequirement(), time_scale=0.0)
