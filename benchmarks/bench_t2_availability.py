"""T2 (§2 Uncertainty): result quality vs source availability.

Regenerates the T2 table: sweep the fraction of sources that are up and
measure delivered completeness, declined jobs, and consumer utility.
Expected shape: completeness and utility fall as availability drops; the
decline count rises.
"""

import numpy as np
import pytest

from repro import Consumer, UserProfile, build_agora
from repro.experiments import ExperimentResult, summarize
from repro.workloads import QueryWorkloadGenerator

AVAILABILITY_LEVELS = [1.0, 0.75, 0.5, 0.25]


def run_t2(seed=23, n_sources=10, queries_per_level=10) -> ExperimentResult:
    result = ExperimentResult(
        "T2", "Delivered quality vs source availability",
        ["availability", "global_recall", "utility", "declined_jobs", "served_jobs"],
    )
    for availability in AVAILABILITY_LEVELS:
        agora = build_agora(seed=seed, n_sources=n_sources, items_per_source=12,
                            calibration_pairs=200)
        rng = np.random.default_rng(seed + int(availability * 100))
        for node in agora.topology.nodes[:-1]:  # keep the consumer node up
            agora.health.set_state(node, bool(rng.random() < availability))
        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t2"),
        )
        profile = UserProfile(
            user_id="t2-user",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(agora, profile, planner="trading")
        recalls, utilities, declined, served = [], [], 0, 0
        for index in range(queries_per_level):
            topic = agora.topic_space.names[index % 5]
            query = workload.topic_query(topic, k=15)
            outcome = consumer.ask(query)
            # Global recall: relevant returned / relevant anywhere in the
            # agora (capped at k), regardless of which sources were up.
            relevant_everywhere = set()
            for source in agora.sources.values():
                for item in source.visible_items(agora.now):
                    if agora.oracle.is_relevant(query, item):
                        relevant_everywhere.add(item.item_id)
            relevant_found = sum(
                1 for item in outcome.results.items()
                if agora.oracle.is_relevant(query, item)
            )
            denominator = min(len(relevant_everywhere), query.k)
            recalls.append(
                relevant_found / denominator if denominator else 1.0
            )
            utilities.append(outcome.utility)
            declined += len(outcome.declined_sources) + len(outcome.unserved_jobs)
            served += len(outcome.contracts)
        result.add_row(
            availability,
            summarize(recalls).mean,
            summarize(utilities).mean,
            declined,
            served,
        )
    result.add_note("expected shape: quality degrades as sources disappear")
    return result


@pytest.mark.benchmark(group="T2")
def test_t2_availability(benchmark):
    result = benchmark.pedantic(run_t2, rounds=1, iterations=1)
    result.print()
    by_availability = {row[0]: row for row in result.rows}
    assert by_availability[1.0][1] >= by_availability[0.25][1]  # completeness
    assert by_availability[1.0][4] >= by_availability[0.25][4]  # served jobs


if __name__ == "__main__":
    run_t2().print()
