"""The Agora facade: one object wiring every subsystem together.

An :class:`Agora` owns the simulation kernel, the overlay network, the
corpus machinery, the sources with their registry, the trust and contract
infrastructure, the calibrated matching engine, and the feed service.
Consumers are created against it and interact through
:class:`repro.core.consumer.Consumer`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.config import AgoraConfig
from repro.data.corpus import CorpusGenerator, DomainSpec, iris_domains
from repro.data.features import FeatureExtractor
from repro.data.items import MediaObject
from repro.data.topics import TopicSpace
from repro.data.vocabulary import Vocabulary
from repro.multimodal.feeds import FeedService
from repro.net.failures import ChurnSpec, LoadModel, LoadSpec, NodeHealth
from repro.net.messages import Message
from repro.net.router import Network
from repro.net.topology import (
    Topology,
    random_topology,
    scale_free_topology,
    small_world_topology,
    star_topology,
)
from repro.obs.context import derive_trace_id
from repro.obs.flight import FlightRecorder
from repro.obs.manifest import RunManifest, config_digest
from repro.obs.profile import SimProfiler
from repro.obs.aggregate import ShardSnapshot, snapshot_shard
from repro.obs.slo import SLOMonitor, SLOReport
from repro.obs.spans import SpanTracer
from repro.parallel.pool import ShardPool
from repro.parallel.service import ParallelRankService
from repro.qos.monitor import ContractMonitor, default_qos_slos
from repro.query.oracle import RelevanceOracle
from repro.resilience.breaker import BreakerBoard
from repro.resilience.faults import FaultInjector, FaultScript
from repro.resilience.policy import ResilienceConfig
from repro.resilience.runtime import ResilienceRuntime
from repro.sim.kernel import Simulator
from repro.sources.registry import SourceRegistry
from repro.sources.source import InformationSource, SourceQuality
from repro.sources.streams import UpdateStream
from repro.trust.reputation import ReputationSystem
from repro.uncertainty.calibration import BinnedCalibrator
from repro.uncertainty.matching import MatchingEngine, build_matching_engine


class Agora:
    """A fully wired Open Agora instance.

    Use :func:`repro.core.builder.build_agora` rather than constructing
    directly.
    """

    def __init__(self, config: AgoraConfig):
        self.config = config
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(trace_id=derive_trace_id(config.seed))
            if config.enable_tracing
            else None
        )
        self.profiler: Optional[SimProfiler] = (
            SimProfiler() if config.enable_profiling else None
        )
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder() if config.enable_flight_recorder else None
        )
        self.sim = Simulator(
            seed=config.seed,
            tracer=self.tracer,
            profiler=self.profiler,
            flight=self.flight,
        )
        streams = self.sim.rng.spawn("agora")
        self._streams = streams

        # --- latent semantics and content machinery -------------------
        self.topic_space = TopicSpace(config.n_topics)
        self.vocabulary = Vocabulary(
            self.topic_space, streams.spawn("vocab"),
            vocabulary_size=config.vocabulary_size,
        )
        self.corpus = CorpusGenerator(
            self.topic_space, self.vocabulary, streams.spawn("corpus"),
            feature_dimensions=config.feature_dimensions,
        )
        self.extractor = FeatureExtractor(
            config.feature_dimensions, streams.spawn("features")
        )
        self.domains: List[DomainSpec] = iris_domains()
        self.engine = self._build_engine()
        self.oracle = RelevanceOracle(
            self.topic_space, relevance_threshold=config.relevance_threshold
        )

        # --- overlay network ------------------------------------------
        self.topology = self._build_topology()
        self.health = NodeHealth(
            self.sim, self.topology.nodes, streams.spawn("health"),
            spec=ChurnSpec(config.mean_uptime, config.mean_downtime),
            enabled=config.enable_churn,
        )
        self.load = LoadModel(
            self.topology.nodes, streams.spawn("load"),
            LoadSpec(capacity=config.load_capacity),
        )
        self.network = Network(
            self.sim, self.topology, streams.spawn("net"), health=self.health
        )

        # --- market infrastructure ------------------------------------
        self.registry = SourceRegistry()
        self.slos: Optional[SLOMonitor] = (
            SLOMonitor(self.sim.metrics, default_qos_slos())
            if config.enable_slos
            else None
        )
        self.monitor = ContractMonitor(metrics=self.sim.metrics)
        if self.slos is not None:
            self.monitor.attach_slos(self.slos, now_fn=lambda: self.sim.now)
        self.reputation = ReputationSystem()
        self.monitor.on_compliance(self.reputation.observe)

        # --- resilience infrastructure --------------------------------
        # One breaker board for the whole agora: breakers guard *sources*,
        # and every consumer benefits from failures any of them observed.
        # Contract settlements feed the breakers alongside execution-time
        # declines.
        self.breakers = BreakerBoard(
            config.resilience.breaker,
            now_fn=lambda: self.sim.now,
            trace=self.sim.trace,
        )
        self.monitor.on_compliance(self.breakers.observe_compliance)
        self.faults = FaultInjector(self.sim, self.health, load=self.load)

        # --- content: sources + calibration ----------------------------
        self.sources: Dict[str, InformationSource] = {}
        self._populate_sources()
        self.calibrator = self._fit_calibrator()

        # --- feeds ------------------------------------------------------
        self.feeds = FeedService(
            self.engine, calibrator=self.calibrator, now_fn=lambda: self.sim.now
        )
        self.update_streams: List[UpdateStream] = []
        self._wire_update_streams()
        if config.start_update_streams:
            self.start_feeds()

        # --- parallel matching plane ------------------------------------
        self.parallel: Optional[ParallelRankService] = None
        self._shard_pool: Optional[ShardPool] = None
        if config.enable_parallel:
            self.start_parallel()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_engine(self) -> MatchingEngine:
        sample_spec = DomainSpec(
            name="lifter-sample",
            topic_prior={name: 1.0 / self.topic_space.n_topics
                         for name in self.topic_space.names},
            type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
            concentration=1.0,
        )
        sample = [
            item
            for item in self.corpus.generate(sample_spec, self.config.lifter_sample_size)
            if isinstance(item, MediaObject)
        ]
        return build_matching_engine(
            self.vocabulary, self.extractor,
            feature_set=self.config.feature_set, lifter_sample=sample,
            metrics=self.sim.metrics,
        )

    def _build_topology(self) -> Topology:
        config = self.config
        streams = self._streams.spawn("topology")
        n = max(2, config.n_sources + 1)  # +1 node for consumers to sit on
        if config.topology == "random":
            return random_topology(n, streams, config.topology_edge_probability)
        if config.topology == "small-world":
            return small_world_topology(n, streams, k_neighbors=min(4, n - 1))
        if config.topology == "scale-free":
            return scale_free_topology(n, streams, attachment=min(2, n - 1))
        return star_topology(n, streams)

    def _draw_quality(self, rng: np.random.Generator) -> SourceQuality:
        config = self.config
        trust_class = ["well-known", "ordinary", "dubious"][
            int(rng.choice(3, p=[0.3, 0.5, 0.2]))
        ]
        return SourceQuality(
            coverage=float(rng.uniform(*config.coverage_range)),
            freshness_lag=float(rng.uniform(*config.freshness_lag_range)),
            error_rate=float(rng.uniform(*config.error_rate_range)),
            trust_class=trust_class,
            overpromise=float(rng.uniform(*config.overpromise_range)),
        )

    def _populate_sources(self) -> None:
        config = self.config
        rng = self._streams.stream("source-quality")
        nodes = self.topology.nodes
        for index in range(config.n_sources):
            spec = self.domains[index % len(self.domains)]
            source_id = f"{spec.name}-src-{index}"
            node_id = nodes[index % max(1, len(nodes) - 1)]
            source = InformationSource(
                source_id=source_id,
                node_id=node_id,
                domains=[spec.name],
                quality=self._draw_quality(rng),
                engine=self.engine,
                streams=self._streams.spawn("sources"),
                load=self.load,
                health=self.health,
                metrics=self.sim.metrics,
            )
            source.ingest(
                self.corpus.generate(spec, config.items_per_source),
                now=0.0,
                immediate=True,
            )
            self.registry.register(source, now=0.0)
            self.sources[source_id] = source

    def _fit_calibrator(self) -> BinnedCalibrator:
        """Fit score→probability calibration on a held-out labelled sample."""
        rng = self._streams.stream("calibration")
        items = []
        for source in self.sources.values():
            items.extend(source.visible_items(now=1e9))
        calibrator = BinnedCalibrator(n_bins=10)
        if len(items) < 2 or self.config.calibration_pairs < 10:
            return calibrator  # unfitted: raw scores used as probabilities
        scores, labels = [], []
        for __ in range(self.config.calibration_pairs):
            a = items[int(rng.integers(len(items)))]
            b = items[int(rng.integers(len(items)))]
            if a.item_id == b.item_id:
                continue
            scores.append(self.engine.score(a, b))
            truth = self.topic_space.relevance(a.latent, b.latent)
            labels.append(int(truth >= self.config.relevance_threshold))
        if sum(labels) == 0 or sum(labels) == len(labels):
            return calibrator  # degenerate sample: stay unfitted
        return calibrator.fit(scores, labels)

    def _wire_update_streams(self) -> None:
        for source_id in sorted(self.sources):
            source = self.sources[source_id]
            spec = next(d for d in self.domains if d.name == source.domains[0])
            stream = UpdateStream(
                self.sim, source, self.corpus, spec, self._streams.spawn("updates")
            )
            self.feeds.attach(stream)
            self.update_streams.append(stream)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    def start_feeds(self) -> None:
        """Begin publishing source updates (Poisson arrivals)."""
        for stream in self.update_streams:
            stream.start()

    def run(self, until: float) -> None:
        """Advance virtual time (churn, update streams, gossip all move)."""
        self.sim.run(until=until)

    def resilience_runtime(
        self, config: Optional[ResilienceConfig] = None
    ) -> ResilienceRuntime:
        """A runtime view over this agora's shared resilience state.

        Policies come from ``config`` (default: the agora config's);
        breakers, jitter stream and trace are shared agora-wide so every
        consumer sees the same source health picture and every run with
        the same seed replays identically.
        """
        return ResilienceRuntime(
            config if config is not None else self.config.resilience,
            registry=self.registry,
            breakers=self.breakers,
            rng=self._streams.stream("resilience.jitter"),
            trace=self.sim.trace,
            now_fn=lambda: self.sim.now,
        )

    def inject_faults(self, script: FaultScript) -> int:
        """Install a fault script on the simulator (returns #windows)."""
        return self.faults.install(script)

    # ------------------------------------------------------------------
    # Parallel matching plane
    # ------------------------------------------------------------------
    def start_parallel(self, n_shards: Optional[int] = None) -> ParallelRankService:
        """Start the shard pool and route retrieve-path ranks through it.

        Idempotent; returns the active service.  Sharding never changes
        results (bitwise — see :mod:`repro.parallel.merge`) or simulated
        timings; it changes which host process does the scoring work.
        Call :meth:`stop_parallel` (or rely on process exit cleanup) to
        release the workers and their shared-memory segments.
        """
        if self.parallel is not None:
            return self.parallel
        pool = ShardPool(
            self.engine,
            n_shards if n_shards is not None else self.config.n_shards,
            seed=self.config.seed,
            trace_scope="agora-parallel",
        )
        pool.start()
        service = ParallelRankService(pool)
        service.assign_domains(self.registry.domains())
        self._shard_pool = pool
        self.parallel = service
        return service

    def stop_parallel(self) -> None:
        """Stop the shard pool and unlink its shared memory (idempotent)."""
        if self._shard_pool is not None:
            self._shard_pool.stop()
        self._shard_pool = None
        self.parallel = None

    def parallel_snapshots(self) -> List[ShardSnapshot]:
        """Coordinator + per-worker telemetry snapshots of the pool.

        Shard 0 is the agora's own registry/tracer; shards 1..n are the
        pool workers.  Feed the list to
        :func:`repro.obs.aggregate.merge_snapshots` /
        :func:`~repro.obs.aggregate.export_merged_run` for one merged
        cross-process view.  Empty when the pool is not running.
        """
        if self._shard_pool is None or not self._shard_pool.started:
            return []
        coordinator = snapshot_shard(
            0,
            self.sim.metrics,
            tracer=self.tracer,
            sim_time=self.sim.now,
            event_count=self.sim.processed,
        )
        return [coordinator] + self._shard_pool.snapshots()

    def run_manifest(self, **labels: str) -> RunManifest:
        """Canonical provenance record of this agora's run so far.

        Two agoras built from equal configs and driven identically
        produce equal manifests (labels aside) — ``python -m repro.obs
        diff`` attests it.
        """
        return RunManifest(
            seed=self.config.seed,
            config_digest=config_digest(self.config),
            event_count=self.sim.processed,
            span_count=self.tracer.span_count if self.tracer is not None else 0,
            metrics=self.sim.metrics.snapshot(),
            flight=(
                self.flight.manifest_section() if self.flight is not None else {}
            ),
            labels=dict(labels),
        )

    def slo_report(self) -> Optional[SLOReport]:
        """Burn-rate report over the stock QoS SLOs (``None`` when off)."""
        return self.monitor.slo_report(now=self.sim.now)

    def consumer_node(self) -> str:
        """The overlay node consumers attach to (last node by convention)."""
        return self.topology.nodes[-1]

    def latency_to_source(self, consumer_node: str, source_id: str) -> float:
        """One-way network latency from a consumer node to a source."""
        source = self.registry.source(source_id)
        if source.node_id == consumer_node:
            return 0.0
        message = Message(consumer_node, source.node_id, "probe", size=0.5)
        return self.network.delivery_delay(message)

    def available_domains(self) -> List[str]:
        """Domains advertised by at least one source."""
        return self.registry.domains()

    def source_census(self) -> Dict[str, int]:
        """Items per source (diagnostic)."""
        return {
            source_id: source.collection_size
            for source_id, source in sorted(self.sources.items())
        }

    def __repr__(self) -> str:
        return (
            f"Agora(sources={len(self.sources)}, domains={len(self.domains)}, "
            f"now={self.now:.2f})"
        )
