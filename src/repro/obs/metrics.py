"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` is the single store for everything a run
counts or measures.  The flat :class:`~repro.sim.trace.TraceRecorder`
remains the convenience facade components already use — it is now backed
by a registry — while new code can hold typed metric handles directly.

Histograms use *fixed* bucket bounds (no adaptive resizing), so two
same-seed runs produce identical snapshots and quantile estimates are a
pure function of the recorded counts.

Read-side purity contract: every ``*_value``/snapshot accessor is
non-mutating — looking up a metric that was never written does **not**
create it (the defaultdict bug class this registry replaces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

#: Default histogram bounds: a geometric ladder covering sub-millisecond
#: jitter to hundreds of virtual-time units (upper bound is +inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)


@dataclass
class Counter:
    """A monotonically-written cumulative value."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (defaults to 1)."""
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Quantiles are estimated by linear interpolation inside the bucket
    containing the target rank, clamped to the observed min/max — cheap,
    deterministic, and accurate to bucket width.
    """

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and ascending")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Edge-case contract (pinned by regression tests):

        - empty histogram → 0.0 (a defined sentinel, never ±inf);
        - ``q == 0`` → the observed minimum, ``q == 1`` → the maximum;
        - a single observation → that observation, for every ``q``;
        - all observations in the overflow bucket → interpolation inside
          ``[minimum, maximum]`` (never the finite bucket ceiling).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0 or self.count == 1:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.buckets[index - 1] if index > 0 else self.minimum
                upper = (
                    self.buckets[index] if index < len(self.buckets) else self.maximum
                )
                lower = max(lower, self.minimum)
                upper = min(upper, self.maximum)
                if upper <= lower:
                    return lower
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.maximum

    # -- shard-merge support ---------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Full serializable state (exact bucket counts, not a summary).

        Unlike :meth:`summary`, this captures everything needed to merge
        histograms bucket-wise across shards; ``min``/``max`` serialize
        as ``None`` when empty so the payload stays JSON-clean.
        """
        return {
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_state(cls, name: str, state: Dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`state_dict`."""
        histogram = cls(name, tuple(float(b) for b in state["buckets"]))
        counts = [int(c) for c in state["counts"]]
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"histogram {name!r}: state has {len(counts)} bucket counts, "
                f"expected {len(histogram._counts)}"
            )
        histogram._counts = counts
        histogram.count = int(state["count"])
        histogram.total = float(state["total"])
        if histogram.count:
            histogram.minimum = float(state["min"])
            histogram.maximum = float(state["max"])
        return histogram

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other``'s observations in, bucket-wise and exactly.

        Requires identical bucket bounds — merging histograms with
        different ladders would silently degrade quantile resolution, so
        it is an error instead.
        """
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                "bucket bounds differ"
            )
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)

    def summary(self) -> Dict[str, float]:
        """Compact summary: count, mean, min, max, p50/p90/p99."""
        if self.count == 0:
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one run.

    Writer accessors (:meth:`counter`, :meth:`gauge`, :meth:`histogram`)
    create on first use; a name may only ever hold one metric kind.
    Reader accessors never create.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {other_kind}"
                )

    # -- writer handles (create on first use) ----------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created if needed)."""
        existing = self._counters.get(name)
        if existing is None:
            self._claim(name, "counter")
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created if needed)."""
        existing = self._gauges.get(name)
        if existing is None:
            self._claim(name, "gauge")
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name`` (created if needed).

        ``buckets`` is honoured only at creation time; later callers get
        the existing instance unchanged.
        """
        existing = self._histograms.get(name)
        if existing is None:
            self._claim(name, "histogram")
            existing = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return existing

    # -- readers (never create) ------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never written)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value of gauge ``name`` (0 if never written)."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def histogram_or_none(self, name: str) -> Optional[Histogram]:
        """The live histogram called ``name``, or ``None``."""
        return self._histograms.get(name)

    def counters(self) -> Dict[str, float]:
        """Snapshot of all counter values, sorted by name."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def gauges(self) -> Dict[str, float]:
        """Snapshot of all gauge values, sorted by name."""
        return {name: self._gauges[name].value for name in sorted(self._gauges)}

    def histograms(self) -> Dict[str, Histogram]:
        """The live histograms, sorted by name (a copied dict)."""
        return {name: self._histograms[name] for name in sorted(self._histograms)}

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic full snapshot (sorted names, summarised histograms)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms().items()
            },
        }
