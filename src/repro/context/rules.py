"""Profile activation rules and overlays.

"The profile of a person itself may include alternative choices for its
various parts, with each choice activated when certain conditions hold"
(§8).  An :class:`ActivationRule` is a conjunctive condition over context
dimensions; a :class:`ProfileOverlay` is the partial profile it activates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Union

import numpy as np

from repro.context.model import CONTEXT_DIMENSIONS, Context
from repro.personalization.profile import UserProfile
from repro.qos.vector import QoSWeights

ConditionValue = Union[str, Set[str], frozenset]


@dataclass
class ActivationRule:
    """Conjunction of per-dimension conditions.

    Each condition maps a dimension to an allowed value or a set of
    allowed values.  ``companions`` conditions use the special values
    ``"alone"`` / ``"accompanied"``.
    """

    conditions: Dict[str, ConditionValue]
    name: str = ""

    def __post_init__(self) -> None:
        unknown = set(self.conditions) - set(CONTEXT_DIMENSIONS)
        if unknown:
            raise ValueError(f"unknown context dimensions: {sorted(unknown)}")
        if not self.conditions:
            raise ValueError("rule needs at least one condition")

    def matches(self, context: Context) -> bool:
        """Whether every condition holds under ``context``."""
        for dimension, allowed in self.conditions.items():
            if dimension == "companions":
                state = "alone" if context.alone else "accompanied"
                if isinstance(allowed, str):
                    if state != allowed:
                        return False
                elif state not in allowed:
                    return False
                continue
            value = context.value(dimension)
            if isinstance(allowed, str):
                if value != allowed:
                    return False
            elif value not in allowed:
                return False
        return True

    @property
    def specificity(self) -> int:
        """More conditions = more specific; used for overlay ordering."""
        return len(self.conditions)


@dataclass
class ProfileOverlay:
    """A partial profile applied on top of the base when its rule fires.

    ``interest_shift`` is *added* to the base interests (then renormalised),
    letting one overlay emphasise topics without erasing the base.
    Other fields replace the base value outright when set.
    """

    interest_shift: Optional[np.ndarray] = None
    qos_weights: Optional[QoSWeights] = None
    mode_preference: Optional[Dict[str, float]] = None
    negotiation_style: Optional[str] = None
    price_sensitivity: Optional[float] = None

    def apply(self, profile: UserProfile) -> UserProfile:
        """Return the profile with this overlay applied."""
        updated = profile.copy()
        if self.interest_shift is not None:
            shift = np.asarray(self.interest_shift, dtype=float)
            if shift.shape != profile.interests.shape:
                raise ValueError("interest_shift dimensionality mismatch")
            combined = np.clip(profile.interests + shift, 1e-9, None)
            updated = updated.with_interests(combined)
        if self.qos_weights is not None:
            updated.qos_weights = self.qos_weights
        if self.mode_preference is not None:
            total = sum(self.mode_preference.values())
            updated.mode_preference = {
                k: v / total for k, v in self.mode_preference.items()
            }
        if self.negotiation_style is not None:
            updated.negotiation_style = self.negotiation_style
        if self.price_sensitivity is not None:
            updated.price_sensitivity = self.price_sensitivity
        return updated
