"""Shared-memory float64 matrices for zero-copy worker scoring.

Ownership rules (documented in DESIGN.md §2h and enforced here):

- The **coordinator** creates every segment, via one :class:`ShmArena`
  per pool, and is the only process that ever *unlinks*.  Segments are
  unlinked at pool shutdown and — belt and braces — by an ``atexit``
  hook, so a worker crash or an aborted run cannot leak ``/dev/shm``
  entries past coordinator exit.
- **Workers** only attach.  Attachment goes through
  :func:`attach_segment`, which keeps the child's
  ``multiprocessing.resource_tracker`` out of the loop (on Python < 3.13
  by unregistering right after attach): the tracker would otherwise
  unlink segments it merely attached to when the worker exits, yanking
  them out from under every sibling.
- Views handed to scoring code are **read-only** (``writeable=False``):
  a worker cannot corrupt shared state even by accident, which is what
  lets READS_SHARED-certified functions run against these matrices.

Segment names are ``agora-shm-<pid>-<n>`` — the creating coordinator's
pid plus a process-wide counter — so concurrent runs never collide and a
test teardown can assert no ``agora-shm-*`` entries survive the suite.
"""

from __future__ import annotations

import atexit
import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Prefix of every segment this module creates.
SEGMENT_PREFIX = "agora-shm-"

#: Process-wide name counter: several arenas can coexist in one
#: coordinator (e.g. two pools in one test session) and must never mint
#: the same ``agora-shm-<pid>-<n>`` name while both are alive.
_NAME_COUNTER = itertools.count()

#: Where POSIX shared memory is visible as files (Linux).
DEV_SHM = Path("/dev/shm")


@dataclass(frozen=True)
class SharedArraySpec:
    """A picklable handle to one shared float64 array.

    Workers rebuild the ndarray view from the segment name and shape;
    dtype is fixed to little-endian float64 so the byte layout is
    unambiguous across processes.
    """

    name: str
    shape: Tuple[int, ...]

    @property
    def n_bytes(self) -> int:
        """Size of the array payload in bytes."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * 8


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifecycle.

    Python 3.13 grew ``track=False`` for exactly this; on older versions
    registration is suppressed for the duration of the attach instead.
    (Attach-then-``unregister`` would be wrong here: spawned workers
    share the coordinator's tracker process, and the unregister message
    would delete the *coordinator's* registration of the same name —
    cpython#82300 — leaving the segment untracked in the one process
    that owns cleanup.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]


class AttachedArray:
    """A worker-side read-only view over one shared array.

    Keeps the :class:`SharedMemory` handle alive for as long as the view
    is in use; :meth:`close` drops the mapping (never unlinks).
    """

    def __init__(self, spec: SharedArraySpec) -> None:
        self._segment = attach_segment(spec.name)
        view = np.ndarray(
            spec.shape, dtype="<f8", buffer=self._segment.buf
        )
        view.flags.writeable = False
        self.array = view

    def close(self) -> None:
        """Release the mapping (safe to call more than once)."""
        if self._segment is not None:
            # Drop the numpy view first: closing a SharedMemory with live
            # exported buffers raises on some platforms.
            self.array = np.zeros(0)
            self._segment.close()
            self._segment = None  # type: ignore[assignment]


class ShmArena:
    """Coordinator-owned registry of shared segments with one lifecycle.

    Create arrays with :meth:`share`; destroy everything with
    :meth:`close_and_unlink`.  The arena registers an ``atexit`` hook at
    construction, so segments cannot outlive the coordinator process
    even on an unclean shutdown path.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._closed = False
        atexit.register(self.close_and_unlink)

    def __len__(self) -> int:
        return len(self._segments)

    def share(self, array: np.ndarray) -> Optional[SharedArraySpec]:
        """Copy ``array`` into a fresh shared segment; return its spec.

        Returns ``None`` for empty arrays — nothing to share, and
        zero-byte segments are illegal anyway.  The copy is the only
        write the segment ever sees; every later view is read-only.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        source = np.ascontiguousarray(array, dtype="<f8")
        if source.size == 0:
            return None
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{next(_NAME_COUNTER)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=source.nbytes
        )
        staging = np.ndarray(source.shape, dtype="<f8", buffer=segment.buf)
        staging[...] = source
        self._segments.append(segment)
        return SharedArraySpec(name=name, shape=tuple(source.shape))

    def release(self, specs: Sequence[SharedArraySpec]) -> None:
        """Unlink the named segments now (e.g. after a key re-register).

        Safe while workers still hold old attachments: POSIX keeps a
        mapped segment alive until the last attachment closes; unlink
        only removes the name.  Callers must therefore release old specs
        only after workers have attached their replacements.
        """
        names = {spec.name for spec in specs}
        kept: List[shared_memory.SharedMemory] = []
        for segment in self._segments:
            if segment.name in names:
                try:
                    segment.close()
                    segment.unlink()
                except FileNotFoundError:
                    pass  # already gone; releasing twice is not an error
            else:
                kept.append(segment)
        self._segments = kept

    def close_and_unlink(self) -> None:
        """Unlink every segment this arena created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close_and_unlink)
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. by a previous partial cleanup)
        self._segments.clear()


def leaked_segments() -> List[str]:
    """Names of ``agora-shm-*`` segments currently visible in /dev/shm.

    Empty on platforms without a /dev/shm filesystem; the leak-check
    fixture treats that as "nothing to assert".
    """
    if not DEV_SHM.is_dir():
        return []
    return sorted(
        entry.name
        for entry in DEV_SHM.iterdir()
        if entry.name.startswith(SEGMENT_PREFIX)
    )
