"""Tests for deterministic RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngStreams, ScopedStreams, derive_seed


class TestDeriveSeed:
    def test_stable_for_same_inputs(self):
        assert derive_seed(42, "a.b") == derive_seed(42, "a.b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=40))
    def test_returns_uint64(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestRngStreams:
    def test_same_name_returns_same_generator(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent_of_creation_order(self):
        first = RngStreams(7)
        a1 = first.stream("a").random(5)
        __ = first.stream("b").random(5)

        second = RngStreams(7)
        __ = second.stream("b").random(5)
        a2 = second.stream("a").random(5)
        np.testing.assert_array_equal(a1, a2)

    def test_different_seeds_give_different_draws(self):
        a = RngStreams(1).stream("x").random(8)
        b = RngStreams(2).stream("x").random(8)
        assert not np.allclose(a, b)

    def test_fresh_resets_state(self):
        streams = RngStreams(7)
        first_draw = streams.stream("x").random(4)
        streams.stream("x").random(4)
        repeat = streams.fresh("x").random(4)
        np.testing.assert_array_equal(first_draw, repeat)

    def test_names_lists_created_streams(self):
        streams = RngStreams(7)
        streams.stream("b")
        streams.stream("a")
        assert list(streams.names()) == ["a", "b"]


class TestDrawAccounting:
    def test_draw_calls_are_counted_per_stream(self):
        streams = RngStreams(7)
        streams.stream("a").random(5)
        streams.stream("a").normal()
        streams.stream("b").integers(0, 10)
        assert streams.draw_counts() == {"a": 2, "b": 1}
        assert streams.draw_total == 3

    def test_created_but_undrawn_stream_reports_zero(self):
        streams = RngStreams(7)
        streams.stream("idle")
        assert streams.draw_counts() == {"idle": 0}
        assert streams.draw_total == 0

    def test_counting_does_not_change_bitstream(self):
        counted = RngStreams(7).stream("x")
        raw = np.random.default_rng(derive_seed(7, "x"))
        np.testing.assert_array_equal(counted.random(16), raw.random(16))
        np.testing.assert_array_equal(
            counted.integers(0, 1000, size=16), raw.integers(0, 1000, size=16)
        )
        np.testing.assert_array_equal(counted.normal(size=16), raw.normal(size=16))

    def test_raw_escape_hatch_bypasses_counting(self):
        streams = RngStreams(7)
        streams.stream("x").raw.random(4)
        assert streams.draw_counts() == {"x": 0}

    def test_counts_survive_scoped_indirection(self):
        root = RngStreams(7)
        scoped = root.spawn("net").spawn("link")
        scoped.stream("latency").random(3)
        assert root.draw_counts() == {"net.link.latency": 1}
        assert scoped.draw_counts() == {"net.link.latency": 1}

    def test_scoped_counts_exclude_other_prefixes(self):
        root = RngStreams(7)
        net = root.spawn("net")
        net.stream("jitter").random()
        root.stream("other").random()
        assert net.draw_counts() == {"net.jitter": 1}

    def test_counts_cumulative_across_fresh(self):
        streams = RngStreams(7)
        streams.stream("x").random(2)
        streams.fresh("x").random(2)
        assert streams.draw_counts() == {"x": 2}

    def test_reset_zeroes_counts_and_replays_bitstream(self):
        streams = RngStreams(7)
        first = streams.stream("x").random(4)
        streams.reset()
        assert streams.draw_counts() == {}
        assert streams.draw_total == 0
        np.testing.assert_array_equal(streams.stream("x").random(4), first)

    def test_counts_sorted_by_name(self):
        streams = RngStreams(7)
        streams.stream("b").random()
        streams.stream("a").random()
        assert list(streams.draw_counts()) == ["a", "b"]

    def test_cached_wrapper_still_counts(self):
        streams = RngStreams(7)
        gen = streams.stream("x")
        gen.random()  # first access caches the wrapper in __dict__
        gen.random()
        gen.random()
        assert streams.draw_counts()["x"] == 3


class TestScopedStreams:
    def test_scoped_prefixes_names(self):
        root = RngStreams(5)
        scoped = root.spawn("net")
        scoped.stream("latency")
        assert list(root.names()) == ["net.latency"]

    def test_nested_scopes(self):
        root = RngStreams(5)
        inner = root.spawn("a").spawn("b")
        inner.stream("x")
        assert list(root.names()) == ["a.b.x"]

    def test_scoped_matches_direct_access(self):
        root1 = RngStreams(5)
        direct = root1.stream("net.latency").random(3)
        root2 = RngStreams(5)
        scoped = root2.spawn("net").stream("latency").random(3)
        np.testing.assert_array_equal(direct, scoped)

    def test_seed_property(self):
        assert ScopedStreams(RngStreams(99), "p").seed == 99
