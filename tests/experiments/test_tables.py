"""Tests for table rendering and result collection."""

import pytest

from repro.experiments import ExperimentResult, ExperimentSuite, render_table


class TestRenderTable:
    def test_basic_shape(self):
        table = render_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]
        assert "2.500" in lines[2]

    def test_title(self):
        table = render_table(["a"], [[1]], title="T1")
        assert table.startswith("== T1 ==")

    def test_column_alignment(self):
        table = render_table(["col", "x"], [["verylongvalue", 1]])
        header, __, row = table.splitlines()
        assert header.index("|") == row.index("|")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestExperimentResult:
    def test_add_row_and_render(self):
        result = ExperimentResult("T1", "Demo", ["metric", "value"])
        result.add_row("ndcg", 0.75)
        rendered = result.render()
        assert "T1: Demo" in rendered
        assert "0.750" in rendered

    def test_row_width_checked(self):
        result = ExperimentResult("T1", "Demo", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_notes_rendered(self):
        result = ExperimentResult("T1", "Demo", ["a"])
        result.add_row(1)
        result.add_note("shape holds")
        assert "shape holds" in result.render()

    def test_markdown(self):
        result = ExperimentResult("T2", "MD", ["x", "y"])
        result.add_row(1, 2)
        markdown = result.to_markdown()
        assert markdown.startswith("### T2: MD")
        assert "| 1 | 2 |" in markdown

    def test_append_to_file(self, tmp_path):
        result = ExperimentResult("T3", "File", ["x"])
        result.add_row(42)
        path = tmp_path / "report.md"
        result.append_to(path)
        assert "T3: File" in path.read_text()

    def test_to_csv(self):
        result = ExperimentResult("T4", "CSV", ["a", "b"])
        result.add_row(1, "x,y")
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert '"x,y"' in csv_text  # commas quoted

    def test_write_csv(self, tmp_path):
        result = ExperimentResult("T5", "CSV", ["a"])
        result.add_row(3)
        path = tmp_path / "out.csv"
        result.write_csv(path)
        assert path.read_text().startswith("a")


class TestSuite:
    def test_collect_and_render(self):
        suite = ExperimentSuite()
        for exp_id in ("T2", "T1"):
            result = ExperimentResult(exp_id, "t", ["a"])
            result.add_row(1)
            suite.add(result)
        ids = [r.experiment_id for r in suite.results()]
        assert ids == ["T1", "T2"]
        assert "T1" in suite.render_all()
        assert suite.get("T2").experiment_id == "T2"
