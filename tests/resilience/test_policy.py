"""Tests for the resilience policy dataclasses."""

import numpy as np
import pytest

from repro.resilience import (
    BreakerPolicy,
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.backoff_delay(attempt, rng) for attempt in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = np.random.default_rng(3)
        for __ in range(100):
            delay = policy.backoff_delay(0, rng)
            assert 1.0 <= delay < 1.5

    def test_jitter_is_deterministic_given_stream(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_delay(i, np.random.default_rng(9)) for i in range(3)]
        b = [policy.backoff_delay(i, np.random.default_rng(9)) for i in range(3)]
        assert a == b

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(-1, np.random.default_rng(0))


class TestHedgePolicy:
    def test_fires_only_above_threshold(self):
        policy = HedgePolicy(threshold=1.0, max_hedges=1)
        assert not policy.fires(0.5)
        assert not policy.fires(1.0)
        assert policy.fires(1.01)

    def test_zero_max_hedges_never_fires(self):
        assert not HedgePolicy(threshold=0.0, max_hedges=0).fires(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(threshold=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=-1)


class TestBreakerPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(recovery_time=-1.0)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_trials=0)
        with pytest.raises(ValueError):
            BreakerPolicy(compliance_floor=1.5)


class TestResilienceConfig:
    def test_disabled_by_default(self):
        assert not ResilienceConfig().enabled

    def test_default_enabled_constructor(self):
        config = ResilienceConfig.default_enabled()
        assert config.enabled
        assert config.retry.max_attempts >= 2
        assert config.hedge.max_hedges >= 1
