"""AGR006 — reaching into kernel internals from outside ``repro.sim``.

The determinism contract is maintained *inside* the kernel: the event
heap's (time, priority, seq) order, the private clock, and the stream
registry.  Code outside ``repro.sim`` that reads or writes those
internals (``sim._queue``, ``queue._heap``, assigning ``sim.now``)
bypasses every invariant the kernel enforces.

Accessing a ``self``-owned attribute that happens to share a name (e.g. a
breaker's own ``self._now``) is fine — the rule only fires on foreign
objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

#: Kernel-private attributes nobody outside repro.sim may touch.
_PRIVATE_ATTRS = frozenset({"_heap", "_queue", "_now", "_streams", "_counter"})

#: Public kernel attributes that may be read anywhere but written only
#: by the kernel itself.
_WRITE_PROTECTED = frozenset({"now"})


def _is_self_or_cls(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id in ("self", "cls")


class KernelInternalsRule(Rule):
    """Flag foreign access to kernel-private state outside ``repro.sim``."""

    rule_id = "AGR006"
    title = "kernel internals access"
    rationale = (
        "The event heap, private clock and stream registry uphold the "
        "determinism contract; touch them only through the kernel API."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro") or ctx.in_package("repro.sim"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if _is_self_or_cls(node.value):
                continue
            if node.attr in _PRIVATE_ATTRS:
                yield self.violation(
                    ctx,
                    node,
                    f"access to kernel-private `.{node.attr}` outside "
                    "repro.sim; use the public kernel API",
                )
            elif node.attr in _WRITE_PROTECTED and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                yield self.violation(
                    ctx,
                    node,
                    "assigning `.now` rewinds/forwards the virtual clock "
                    "outside the kernel; schedule events instead",
                )
