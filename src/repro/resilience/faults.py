"""Deterministic, scriptable fault injection.

A :class:`FaultScript` is plain data — a list of timed fault windows — and
a :class:`FaultInjector` schedules each window as ordinary simulator
events on top of the existing failure machinery:

- ``outage``      → :meth:`NodeHealth.set_state` down at the window start,
  up again at its end;
- ``latency_spike`` → a synthetic load surcharge on the node, which raises
  :meth:`LoadModel.service_slowdown` for the window;
- ``flaky``       → a larger surcharge that pushes the node past capacity,
  so :meth:`LoadModel.declines` fires with the requested probability.

Because every effect flows through the simulator's event queue and the
seeded RNG streams, running the same script twice with the same seed
replays bit-for-bit — the Open Data Fabric notion of reproducible
recovery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.failures import LoadModel, NodeHealth
from repro.sim.kernel import Simulator

FAULT_KINDS = ("outage", "latency_spike", "flaky")


@dataclass(frozen=True)
class FaultEvent:
    """One fault window on one node.

    ``magnitude`` is kind-specific: unused for outages, the load surcharge
    for latency spikes and flaky bursts (computed by the script helpers).
    """

    kind: str
    node: str
    start: float
    duration: float
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")

    @property
    def end(self) -> float:
        """Virtual time at which the window closes."""
        return self.start + self.duration


@dataclass
class FaultScript:
    """An ordered collection of fault windows (pure data, reusable)."""

    events: List[FaultEvent] = field(default_factory=list)

    def outage(self, node: str, start: float, duration: float) -> "FaultScript":
        """Take ``node`` down for ``[start, start + duration)``."""
        self.events.append(FaultEvent("outage", node, start, duration))
        return self

    def latency_spike(
        self, node: str, start: float, duration: float, slowdown: float = 2.0
    ) -> "FaultScript":
        """Multiply ``node``'s service time by ``slowdown`` for the window.

        The surcharge is derived from the load model's slowdown law
        ``1 + max(0, u - 0.5)``: a target multiplier maps back to the
        utilisation that produces it.
        """
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        utilisation = (slowdown - 1.0) + 0.5
        self.events.append(
            FaultEvent("latency_spike", node, start, duration, magnitude=utilisation)
        )
        return self

    def flaky(
        self, node: str, start: float, duration: float,
        decline_probability: float = 0.9,
    ) -> "FaultScript":
        """Make ``node`` decline new requests w.p. ~``decline_probability``.

        Inverts the load model's logistic decline law to find the
        utilisation that yields the requested probability.
        """
        if not 0.0 < decline_probability < 1.0:
            raise ValueError("decline_probability must be in (0, 1)")
        self.events.append(
            FaultEvent("flaky", node, start, duration,
                       magnitude=decline_probability)
        )
        return self

    def horizon(self) -> float:
        """Virtual time by which every window has closed."""
        return max((event.end for event in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)


class FaultInjector:
    """Installs fault scripts onto a simulator's failure machinery."""

    def __init__(
        self,
        simulator: Simulator,
        health: NodeHealth,
        load: Optional[LoadModel] = None,
    ):
        self._sim = simulator
        self._health = health
        self._load = load
        self._outage_depth: Dict[str, int] = {}
        self.installed: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def install(self, script: FaultScript) -> int:
        """Schedule every window in ``script``; returns how many installed."""
        for event in script.events:
            self._install_event(event)
        return len(script.events)

    def _install_event(self, event: FaultEvent) -> None:
        # Fail fast on unknown nodes: a KeyError surfacing later from
        # inside sim.run() would be far from the scripting mistake.
        if event.kind == "outage":
            if event.node not in self._health.nodes():
                raise ValueError(f"outage on unknown node {event.node!r}")
            self._schedule(event.start, lambda: self._begin_outage(event.node))
            self._schedule(event.end, lambda: self._end_outage(event.node))
        else:
            if self._load is None:
                raise ValueError(
                    f"{event.kind} faults need a LoadModel to inject into"
                )
            if event.node not in self._load.nodes():
                raise ValueError(f"{event.kind} on unknown node {event.node!r}")
            surcharge = self._surcharge(event)
            self._schedule(
                event.start, lambda: self._begin_load(event.node, surcharge)
            )
            self._schedule(
                event.end, lambda: self._load.end(event.node, surcharge)
            )
        self.installed.append(event)
        self._sim.trace.count(f"faults.scheduled_{event.kind}")

    def _surcharge(self, event: FaultEvent) -> float:
        assert self._load is not None
        capacity = self._load.spec.capacity
        if event.kind == "latency_spike":
            return event.magnitude * capacity
        # flaky: invert the logistic decline law for the target probability
        sharpness = max(self._load.spec.decline_sharpness, 1e-9)
        probability = event.magnitude
        utilisation = 1.0 + math.log(probability / (1.0 - probability)) / sharpness
        return max(0.0, utilisation) * capacity

    # ------------------------------------------------------------------
    def _schedule(self, time: float, action: Callable[[], object]) -> None:
        self._sim.at(max(time, self._sim.now), action, tag="fault")

    def _begin_outage(self, node: str) -> None:
        # Overlapping windows compose: the node stays down until the last
        # covering window closes.
        depth = self._outage_depth.get(node, 0)
        self._outage_depth[node] = depth + 1
        if depth == 0:
            self._health.set_state(node, False)
            self._sim.trace.count("faults.outage_transitions")

    def _end_outage(self, node: str) -> None:
        depth = self._outage_depth.get(node, 0) - 1
        self._outage_depth[node] = max(0, depth)
        if depth == 0:
            self._health.set_state(node, True)
            self._sim.trace.count("faults.outage_transitions")

    def _begin_load(self, node: str, surcharge: float) -> None:
        assert self._load is not None
        self._load.begin(node, surcharge)
        self._sim.trace.count("faults.load_surcharges")
