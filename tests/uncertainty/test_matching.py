"""Tests for the matching engines (text, media, compound, cross-type)."""

import numpy as np
import pytest

from repro.data import (
    DomainSpec,
    FeatureExtractor,
)
from repro.uncertainty import ConceptLifter, build_matching_engine
from repro.uncertainty.matching import MediaMatcher, TextMatcher


@pytest.fixture
def extractor(streams):
    return FeatureExtractor(true_dimensions=16, streams=streams.spawn("fx"))


def _media_domain(name="museum", topic="folk-jewelry"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        concentration=0.3,
    )


def _text_domain(name="thesis", topic="academic-theses"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        concentration=0.3,
    )


def _compound_domain(name="auction", topic="auction-market"):
    return DomainSpec(
        name=name, topic_prior={topic: 1.0},
        type_mix={"text": 0.0, "media": 0.0, "compound": 1.0},
        concentration=0.3,
    )


@pytest.fixture
def engine(corpus_generator, vocabulary, extractor):
    sample = corpus_generator.generate(_media_domain("sample"), 80)
    return build_matching_engine(vocabulary, extractor, lifter_sample=sample)


class TestTextMatcher:
    def test_identical_docs_score_high(self, corpus_generator):
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        assert TextMatcher().score(doc, doc) == pytest.approx(1.0)

    def test_same_topic_beats_different_topic(self, corpus_generator):
        same = corpus_generator.generate(_text_domain("a", "dance-forms"), 20)
        other = corpus_generator.generate(_text_domain("b", "auction-market"), 20)
        matcher = TextMatcher()
        same_scores = [matcher.score(same[0], d) for d in same[1:]]
        cross_scores = [matcher.score(same[0], d) for d in other]
        assert np.mean(same_scores) > np.mean(cross_scores)


class TestMediaMatcher:
    def test_score_bounded(self, corpus_generator, extractor):
        items = corpus_generator.generate(_media_domain(), 10)
        matcher = MediaMatcher(extractor, "content_metadata")
        for item in items[1:]:
            assert 0.0 <= matcher.score(items[0], item) <= 1.0

    def test_high_fidelity_separates_topics_better(self, corpus_generator, extractor):
        jewelry = corpus_generator.generate(_media_domain("j", "folk-jewelry"), 15)
        tourism = corpus_generator.generate(_media_domain("t", "tourism"), 15)

        def separation(feature_set):
            matcher = MediaMatcher(extractor, feature_set)
            within = [
                matcher.score(jewelry[i], jewelry[j])
                for i in range(5) for j in range(5, 10)
            ]
            across = [
                matcher.score(jewelry[i], tourism[j])
                for i in range(5) for j in range(5)
            ]
            return np.mean(within) - np.mean(across)

        assert separation("content_metadata") > separation("color_histogram")


class TestConceptLifter:
    def test_unfitted_media_lift_raises(self, vocabulary, extractor, corpus_generator):
        lifter = ConceptLifter(vocabulary, extractor)
        item = corpus_generator.generate(_media_domain(), 1)[0]
        with pytest.raises(RuntimeError):
            lifter.lift(item)

    def test_fit_empty_sample_rejected(self, vocabulary, extractor):
        with pytest.raises(ValueError):
            ConceptLifter(vocabulary, extractor).fit([])

    def test_lift_text_normalised(self, vocabulary, extractor, corpus_generator):
        lifter = ConceptLifter(vocabulary, extractor)
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        lifted = lifter.lift(doc)
        assert lifted.sum() == pytest.approx(1.0)
        assert np.all(lifted >= 0)

    def test_lift_media_recovers_topic(self, vocabulary, extractor, corpus_generator, topic_space):
        sample = corpus_generator.generate(_media_domain("train"), 100)
        lifter = ConceptLifter(vocabulary, extractor).fit(sample)
        corpus_generator.generate(_media_domain("test", "dance-forms"), 1)
        # Training was jewelry; test a differently-themed item set to check the
        # lift tracks latents rather than memorising: use items from training topic.
        probe = corpus_generator.generate(_media_domain("probe", "folk-jewelry"), 10)
        jewelry_index = topic_space.names.index("folk-jewelry")
        lifted = np.stack([lifter.lift(item) for item in probe])
        assert np.argmax(lifted.mean(axis=0)) == jewelry_index

    def test_lift_compound(self, vocabulary, extractor, corpus_generator):
        sample = corpus_generator.generate(_media_domain("train"), 60)
        lifter = ConceptLifter(vocabulary, extractor).fit(sample)
        compound = corpus_generator.generate(_compound_domain(), 1)[0]
        lifted = lifter.lift(compound)
        assert lifted.sum() == pytest.approx(1.0)


class TestMatchingEngine:
    def test_dispatch_text_text(self, engine, corpus_generator):
        docs = corpus_generator.generate(_text_domain(), 2)
        assert 0.0 <= engine.score(docs[0], docs[1]) <= 1.0

    def test_dispatch_cross_type(self, engine, corpus_generator):
        doc = corpus_generator.generate(_text_domain("a", "folk-jewelry"), 1)[0]
        media = corpus_generator.generate(_media_domain("b", "folk-jewelry"), 1)[0]
        score = engine.score(doc, media)
        assert 0.0 <= score <= 1.0

    def test_cross_type_same_topic_beats_other_topic(self, engine, corpus_generator):
        jewelry_docs = corpus_generator.generate(_text_domain("a", "folk-jewelry"), 10)
        jewelry_media = corpus_generator.generate(_media_domain("b", "folk-jewelry"), 10)
        thesis_media = corpus_generator.generate(_media_domain("c", "academic-theses"), 10)
        same = np.mean([
            engine.score(doc, media)
            for doc, media in zip(jewelry_docs, jewelry_media)
        ])
        cross = np.mean([
            engine.score(doc, media)
            for doc, media in zip(jewelry_docs, thesis_media)
        ])
        assert same > cross

    def test_compound_dispatch(self, engine, corpus_generator):
        compound = corpus_generator.generate(_compound_domain(), 1)[0]
        doc = corpus_generator.generate(_text_domain(), 1)[0]
        assert 0.0 <= engine.score(compound, doc) <= 1.0

    def test_compound_compound(self, engine, corpus_generator):
        compounds = corpus_generator.generate(_compound_domain(), 2)
        assert 0.0 <= engine.score(compounds[0], compounds[1]) <= 1.0

    def test_rank_orders_descending(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain("q", "dance-forms"), 1)[0]
        candidates = corpus_generator.generate(_text_domain("c", "dance-forms"), 5)
        ranked = engine.rank(query, candidates)
        scores = [score for __, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_finds_relevant_first(self, engine, corpus_generator):
        query = corpus_generator.generate(_text_domain("q", "dance-forms"), 1)[0]
        relevant = corpus_generator.generate(_text_domain("r", "dance-forms"), 5)
        irrelevant = corpus_generator.generate(_text_domain("i", "auction-market"), 5)
        ranked = engine.rank(query, relevant + irrelevant)
        top_domains = {item.domain for item, __ in ranked[:3]}
        assert "r" in top_domains
