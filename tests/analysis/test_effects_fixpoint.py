"""Adversarial inputs for the interprocedural effect fixpoint.

Each case builds a small in-memory project via ``ProjectIndex.add_source``
and checks the converged verdicts — the goal is to pin the lattice
behaviour on the shapes that historically break effect analyses: cycles,
dynamic dispatch, decorator poisoning, and side effects hiding behind
attribute reads.
"""

from repro.analysis.effects import (
    MUTATES_SHARED,
    PURE,
    READS_SHARED,
    UNKNOWN,
    ProjectIndex,
    analyse,
)


def build_index(*sources: str) -> ProjectIndex:
    index = ProjectIndex()
    for position, source in enumerate(sources):
        index.add_source(
            source, path=f"mem/m{position}.py", module=f"repro.mem.m{position}"
        )
    index.finalise()
    return index


def verdicts_of(*sources: str):
    return analyse(build_index(*sources)).verdicts


class TestRecursionAndCycles:
    def test_pure_mutual_recursion_converges_to_pure(self):
        verdicts = verdicts_of(
            "def even(n: int) -> bool:\n"
            "    return True if n == 0 else odd(n - 1)\n"
            "\n"
            "def odd(n: int) -> bool:\n"
            "    return False if n == 0 else even(n - 1)\n"
        )
        assert verdicts["repro.mem.m0.even"] == PURE
        assert verdicts["repro.mem.m0.odd"] == PURE

    def test_cycle_converges_to_the_worst_member(self):
        # a three-node call cycle where one node writes a module global:
        # the mutation must reach every member through the cycle
        verdicts = verdicts_of(
            "CACHE = {}\n"
            "\n"
            "def a(n: int) -> int:\n"
            "    return b(n)\n"
            "\n"
            "def b(n: int) -> int:\n"
            "    return c(n)\n"
            "\n"
            "def c(n: int) -> int:\n"
            "    CACHE[n] = n\n"
            "    return a(n - 1) if n else 0\n"
        )
        for name in ("a", "b", "c"):
            assert verdicts[f"repro.mem.m0.{name}"] == MUTATES_SHARED

    def test_self_recursion_with_read_stays_reads_shared(self):
        verdicts = verdicts_of(
            "LIMITS = {}\n"
            "\n"
            "def probe(n: int) -> int:\n"
            "    if n in LIMITS:\n"
            "        return probe(n - 1)\n"
            "    return n\n"
        )
        assert verdicts["repro.mem.m0.probe"] == READS_SHARED


class TestDynamicDispatch:
    OVERRIDES = (
        "class Base:\n"
        "    def work(self) -> int:\n"
        "        return 1\n"
        "\n"
        "class Noisy(Base):\n"
        "    def work(self) -> int:\n"
        "        self.count = 1\n"
        "        return 2\n"
        "\n"
        "def drive(item: Base) -> int:\n"
        "    return item.work()\n"
    )

    def test_call_through_base_joins_every_override(self):
        # the receiver is typed Base, so the join covers Base.work (pure)
        # and Noisy.work (self-write mapped through a param receiver)
        verdicts = verdicts_of(self.OVERRIDES)
        assert verdicts["repro.mem.m0.Base.work"] == PURE
        assert verdicts["repro.mem.m0.Noisy.work"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.drive"] == MUTATES_SHARED

    def test_untyped_receiver_with_unknown_method_poisons(self):
        verdicts = verdicts_of(
            "def drive(item) -> int:\n"
            "    return item.frobnicate()\n"
        )
        assert verdicts["repro.mem.m0.drive"] == UNKNOWN


class TestDecorators:
    def test_unknown_decorator_poisons_the_function(self):
        # a decorator the index cannot resolve may replace the function
        # wholesale; the analysis must refuse to certify through it
        verdicts = verdicts_of(
            "from somewhere import magic\n"
            "\n"
            "@magic\n"
            "def shiny() -> int:\n"
            "    return 1\n"
        )
        assert verdicts["repro.mem.m0.shiny"] == UNKNOWN

    def test_lru_cache_is_a_shared_memo_mutation(self):
        verdicts = verdicts_of(
            "import functools\n"
            "\n"
            "@functools.lru_cache(maxsize=64)\n"
            "def slow(n: int) -> int:\n"
            "    return n * n\n"
        )
        assert verdicts["repro.mem.m0.slow"] == MUTATES_SHARED

    def test_benign_decorators_do_not_poison(self):
        verdicts = verdicts_of(
            "class Box:\n"
            "    @staticmethod\n"
            "    def lift(n: int) -> int:\n"
            "        return n + 1\n"
        )
        assert verdicts["repro.mem.m0.Box.lift"] == PURE


class TestPropertyAbsorption:
    SOURCE = (
        "class Lazy:\n"
        "    @property\n"
        "    def rows(self) -> int:\n"
        "        self._rows = 3\n"
        "        return self._rows\n"
        "\n"
        "def peek(lazy: Lazy) -> int:\n"
        "    return lazy.rows\n"
        "\n"
        "def local_peek() -> int:\n"
        "    lazy = Lazy()\n"
        "    return lazy.rows\n"
    )

    def test_property_getter_side_effect_reaches_the_reader(self):
        # reading ``lazy.rows`` runs the getter, which writes instance
        # state; through a parameter receiver that is a WRITE_ARG
        verdicts = verdicts_of(self.SOURCE)
        assert verdicts["repro.mem.m0.Lazy.rows"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.peek"] == MUTATES_SHARED

    def test_fresh_receiver_confines_the_getter_write(self):
        # the same getter through a locally constructed object mutates
        # nothing observable — the write maps through FRESH and drops
        verdicts = verdicts_of(self.SOURCE)
        assert verdicts["repro.mem.m0.local_peek"] == PURE


class TestCallResolutionPolicy:
    def test_builtin_verbs_beat_name_join(self):
        # ``.append`` is a builtin mutator even though a project class
        # also defines a method of that name; the table must win over the
        # speculative name join
        verdicts = verdicts_of(
            "class Log:\n"
            "    def append(self, row: str) -> None:\n"
            "        self.rows = row\n"
            "\n"
            "def collect(n: int) -> list:\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        out.append(i)\n"
            "    return out\n"
        )
        assert verdicts["repro.mem.m0.collect"] == PURE

    def test_typed_receiver_resolves_precisely(self):
        # with the receiver annotated, only Quiet.emit is joined — the
        # noisy same-name method on an unrelated class is ignored
        verdicts = verdicts_of(
            "GLOBAL = {}\n"
            "\n"
            "class Quiet:\n"
            "    def emit(self) -> int:\n"
            "        return 0\n"
            "\n"
            "class Loud:\n"
            "    def emit(self) -> int:\n"
            "        GLOBAL['x'] = 1\n"
            "        return 1\n"
            "\n"
            "def run(q: Quiet) -> int:\n"
            "    return q.emit()\n"
        )
        assert verdicts["repro.mem.m0.run"] == PURE

    def test_cross_module_calls_resolve(self):
        verdicts = verdicts_of(
            "# module: repro.mem.alpha\n"
            "STATE = {}\n"
            "\n"
            "def poke() -> None:\n"
            "    STATE['k'] = 1\n",
            "# module: repro.mem.beta\n"
            "from repro.mem.alpha import poke\n"
            "\n"
            "def run() -> None:\n"
            "    poke()\n",
        )
        assert verdicts["repro.mem.beta.run"] == MUTATES_SHARED


class TestNumpyTables:
    """The blanket numpy pure prefix must lose to its impure carve-outs."""

    def test_legacy_global_rng_draws_are_never_pure(self):
        # np.random names outside the seeded-constructor allow-list all
        # touch the shared legacy generator — including draws the old
        # enumerated table missed (standard_normal, gamma, poisson)
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def draw() -> object:\n"
            "    return np.random.standard_normal(3)\n"
            "\n"
            "def draw_gamma() -> object:\n"
            "    return np.random.gamma(2.0, size=4)\n"
        )
        assert verdicts["repro.mem.m0.draw"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.draw_gamma"] == MUTATES_SHARED

    def test_seeded_generator_constructors_stay_fresh(self):
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def make() -> float:\n"
            "    rng = np.random.default_rng(7)\n"
            "    return float(rng.normal())\n"
        )
        assert verdicts["repro.mem.m0.make"] == PURE

    def test_numpy_file_io_is_io(self):
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def dump(arr) -> None:\n"
            "    np.save('/tmp/a.npy', arr)\n"
            "\n"
            "def slurp() -> object:\n"
            "    return np.load('/tmp/a.npy')\n"
        )
        assert verdicts["repro.mem.m0.dump"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.slurp"] == MUTATES_SHARED

    def test_numpy_arg_mutators_map_through_provenance(self):
        # fill_diagonal on a parameter is an argument write; on a fresh
        # local array the write is confined and drops
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def zero_diag(mat) -> object:\n"
            "    np.fill_diagonal(mat, 0.0)\n"
            "    return mat\n"
            "\n"
            "def fresh_diag() -> object:\n"
            "    mat = np.ones((3, 3))\n"
            "    np.fill_diagonal(mat, 0.0)\n"
            "    return mat\n"
        )
        assert verdicts["repro.mem.m0.zero_diag"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.fresh_diag"] == PURE

    def test_numpy_global_knobs_are_shared_mutations(self):
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def quiet() -> None:\n"
            "    np.seterr(all='ignore')\n"
        )
        assert verdicts["repro.mem.m0.quiet"] == MUTATES_SHARED

    def test_numpy_kernels_stay_pure(self):
        verdicts = verdicts_of(
            "import numpy as np\n"
            "\n"
            "def dot(a, b) -> float:\n"
            "    return float(np.einsum('i,i->', np.asarray(a), b))\n"
        )
        assert verdicts["repro.mem.m0.dot"] == PURE


class TestReturnAliasProvenance:
    """Mutating the result of a call that hands back shared state must
    poison the caller — return values are not unconditionally fresh."""

    SHARED = (
        "_SHARED = {}\n"
        "\n"
        "def get_shared() -> dict:\n"
        "    return _SHARED\n"
    )

    def test_mutation_through_returned_global_alias(self):
        verdicts = verdicts_of(
            self.SHARED + "\n"
            "def taint() -> None:\n"
            "    d = get_shared()\n"
            "    d['k'] = 1\n"
            "\n"
            "def taint_method() -> None:\n"
            "    get_shared().update({'x': 2})\n"
        )
        assert verdicts["repro.mem.m0.get_shared"] == READS_SHARED
        assert verdicts["repro.mem.m0.taint"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.taint_method"] == MUTATES_SHARED

    def test_alias_survives_a_call_chain(self):
        verdicts = verdicts_of(
            self.SHARED + "\n"
            "def relay() -> dict:\n"
            "    return get_shared()\n"
            "\n"
            "def taint() -> None:\n"
            "    relay().clear()\n"
        )
        assert verdicts["repro.mem.m0.relay"] == READS_SHARED
        assert verdicts["repro.mem.m0.taint"] == MUTATES_SHARED

    def test_local_lambda_alias_is_tracked(self):
        verdicts = verdicts_of(
            self.SHARED + "\n"
            "def taint() -> None:\n"
            "    grab = lambda: _SHARED\n"
            "    grab()['z'] = 3\n"
        )
        assert verdicts["repro.mem.m0.taint"] == MUTATES_SHARED

    def test_param_returning_helper_keeps_fresh_results_fresh(self):
        # identity-style helpers map their return through the actual
        # argument: a fresh list stays fresh, so the append drops
        verdicts = verdicts_of(
            "def ident(xs: list) -> list:\n"
            "    return xs\n"
            "\n"
            "def build() -> list:\n"
            "    out = ident([])\n"
            "    out.append(1)\n"
            "    return out\n"
        )
        assert verdicts["repro.mem.m0.ident"] == PURE
        assert verdicts["repro.mem.m0.build"] == PURE

    def test_fresh_returning_helper_keeps_callers_pure(self):
        verdicts = verdicts_of(
            self.SHARED + "\n"
            "def snapshot() -> dict:\n"
            "    return dict(_SHARED)\n"
            "\n"
            "def edit() -> dict:\n"
            "    d = snapshot()\n"
            "    d['k'] = 1\n"
            "    return d\n"
        )
        assert verdicts["repro.mem.m0.snapshot"] == READS_SHARED
        assert verdicts["repro.mem.m0.edit"] == READS_SHARED

    def test_return_alias_cycle_refuses_to_bound(self):
        # two helpers returning each other's results: the cycle cuts to
        # UNKNOWN provenance, so the mutation still poisons
        verdicts = verdicts_of(
            self.SHARED + "\n"
            "def ping(n: int) -> dict:\n"
            "    return pong(n) if n else get_shared()\n"
            "\n"
            "def pong(n: int) -> dict:\n"
            "    return ping(n - 1)\n"
            "\n"
            "def taint() -> None:\n"
            "    ping(3)['k'] = 1\n"
        )
        assert verdicts["repro.mem.m0.taint"] == MUTATES_SHARED


class TestPathAlgebraAndClassmethods:
    def test_os_path_helpers_are_pure_not_io(self):
        # ``os.path.`` is path algebra; it must win over the broader
        # ``os.`` I/O prefix instead of being dead allow-list weight
        verdicts = verdicts_of(
            "import os.path\n"
            "\n"
            "def anchor(base: str, name: str) -> str:\n"
            "    return os.path.join(os.path.dirname(base), name)\n"
            "\n"
            "def cwd() -> str:\n"
            "    return os.getcwd()\n"
        )
        assert verdicts["repro.mem.m0.anchor"] == PURE
        assert verdicts["repro.mem.m0.cwd"] == MUTATES_SHARED

    def test_classmethod_keeps_cls_receiver_state_shared(self):
        # cls-reachable state is class-level shared state: writes through
        # ``cls`` are SELF-mapped mutations, reads are shared reads
        verdicts = verdicts_of(
            "class Registry:\n"
            "    _items = {}\n"
            "\n"
            "    @classmethod\n"
            "    def add(cls, key: str) -> None:\n"
            "        cls._items[key] = 1\n"
            "\n"
            "    @classmethod\n"
            "    def peek(cls, key: str) -> int:\n"
            "        return cls._items.get(key, 0)\n"
        )
        assert verdicts["repro.mem.m0.Registry.add"] == MUTATES_SHARED
        assert verdicts["repro.mem.m0.Registry.peek"] == READS_SHARED
