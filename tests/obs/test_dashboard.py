"""Tests for the markdown dashboard renderer."""

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    SpanTracer,
    append_dashboard,
    render_dashboard,
    span_cost_rows,
)


def make_state():
    registry = MetricsRegistry()
    registry.counter("sim.events").inc(7)
    registry.gauge("load").set(0.5)
    registry.histogram("query.latency").observe(0.25)
    clock = [0.0]
    tracer = SpanTracer(clock=lambda: clock[0])
    with tracer.span("query"):
        clock[0] = 1.0
        with tracer.span("retrieve"):
            clock[0] = 3.0
    manifest = RunManifest(
        seed=11, config_digest="cafebabe" * 8, event_count=7,
        span_count=tracer.span_count, metrics=registry.snapshot(),
    )
    return registry, tracer, manifest


class TestRenderDashboard:
    def test_sections_present(self):
        registry, tracer, manifest = make_state()
        text = render_dashboard(
            registry, spans=tracer.spans(), manifest=manifest, title="T2 run"
        )
        assert text.startswith("## T2 run")
        for section in ("### Counters", "### Gauges", "### Distributions",
                        "### Span costs"):
            assert section in text
        assert "- seed: `11`" in text
        assert "| sim.events | 7 |" in text
        assert "| load | 0.5000 |" in text
        assert "| query.latency | 1 |" in text.replace("| 1 | 0.2500", "| 1 |")

    def test_empty_registry_renders_header_only(self):
        text = render_dashboard(MetricsRegistry(), title="Empty")
        assert text == "## Empty\n"

    def test_span_cost_rows_aggregate_by_name(self):
        __, tracer, __manifest = make_state()
        rows = span_cost_rows(tracer.spans())
        assert [row[0] for row in rows] == ["query", "retrieve"]
        query_row = rows[0]
        assert query_row[1] == 1  # count
        assert query_row[2] == 3.0  # total virtual time

    def test_append_dashboard_appends(self, tmp_path):
        registry, tracer, manifest = make_state()
        report = tmp_path / "report.md"
        report.write_text("# Report\n")
        append_dashboard(report, registry, spans=tracer.spans(),
                         manifest=manifest)
        content = report.read_text()
        assert content.startswith("# Report\n")
        assert "## Run dashboard" in content


class TestPruningSection:
    def make_prune_registry(self):
        registry = MetricsRegistry()
        registry.counter("matching.prune.calls").inc(10)
        registry.counter("matching.prune.fallback_calls").inc(2)
        registry.counter("matching.prune.domain_skips").inc(3)
        registry.counter("matching.prune.candidates_scored").inc(40)
        registry.counter("matching.prune.candidates_total").inc(100)
        registry.counter("matching.prune.chunks_skipped").inc(6)
        registry.counter("matching.prune.chunks_total").inc(10)
        registry.histogram("matching.prune.scored_fraction").observe(0.4)
        return registry

    def test_section_rendered_when_counters_present(self):
        text = render_dashboard(self.make_prune_registry(), title="T")
        assert "### Pruning" in text
        assert "| pruned rank calls | 10 |" in text
        assert "40 / 100 (40.0%)" in text
        assert "6 / 10 (60.0%)" in text
        assert "scored fraction per pruned call" in text

    def test_section_absent_without_prune_counters(self):
        registry, __, __m = make_state()
        assert "### Pruning" not in render_dashboard(registry, title="T")

    def test_zero_totals_render_without_percentages(self):
        registry = MetricsRegistry()
        registry.counter("matching.prune.calls").inc(1)
        text = render_dashboard(registry, title="T")
        assert "### Pruning" in text
        assert "| candidates scored / total | 0 / 0 |" in text
        assert "%" not in text


class TestDivergenceSection:
    def test_divergence_report_rendered_in_code_fence(self):
        from repro.obs import DivergenceReport

        registry, tracer, manifest = make_state()
        report = DivergenceReport(
            shard_id=0, kind="event", left_events=9, right_events=9, index=4,
        )
        text = render_dashboard(
            registry, spans=tracer.spans(), manifest=manifest,
            divergence=report,
        )
        assert "### Divergence" in text
        assert "DIVERGED at log entry 4" in text
        assert text.index("### Divergence") < text.index("### Counters")

    def test_section_absent_without_report(self):
        registry, __, __m = make_state()
        assert "### Divergence" not in render_dashboard(registry, title="T")
