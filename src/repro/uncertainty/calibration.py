"""Score → probability calibration.

Raw similarity scores are not probabilities: "typical metrics used for this
case are not necessarily capturing the perception that a user has about a
match" (§2).  The agora therefore calibrates scores against observed match
labels.  :class:`BinnedCalibrator` estimates the empirical match rate per
score bin and enforces monotonicity with the pool-adjacent-violators (PAV)
algorithm — a histogram-binned isotonic regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def pool_adjacent_violators(values: Sequence[float], weights: Sequence[float]) -> np.ndarray:
    """Weighted isotonic (non-decreasing) regression via PAV."""
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    # Each block: [mean, weight, count]; merge while out of order.
    blocks: List[List[float]] = []
    for value, weight in zip(values, weights):
        blocks.append([value, weight, 1])
        while len(blocks) > 1 and blocks[-2][0] > blocks[-1][0]:
            mean2, weight2, count2 = blocks.pop()
            mean1, weight1, count1 = blocks.pop()
            merged_weight = weight1 + weight2
            if merged_weight > 0:
                merged_mean = (mean1 * weight1 + mean2 * weight2) / merged_weight
            else:
                merged_mean = (mean1 + mean2) / 2.0
            blocks.append([merged_mean, merged_weight, count1 + count2])
    result = np.empty(len(values))
    index = 0
    for mean, __, count in blocks:
        result[index : index + count] = mean
        index += count
    return result


class BinnedCalibrator:
    """Histogram-binned isotonic calibration of similarity scores.

    Fit on (score, label) pairs where labels are 1 for true matches.
    Prediction linearly interpolates between bin centres, so calibrated
    probabilities vary smoothly with the score.
    """

    def __init__(self, n_bins: int = 10):
        if n_bins < 2:
            raise ValueError("need at least 2 bins")
        self.n_bins = n_bins
        self._centres: np.ndarray = np.array([])
        self._probabilities: np.ndarray = np.array([])
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._fitted

    def fit(self, scores: Sequence[float], labels: Sequence[int]) -> "BinnedCalibrator":
        """Fit bin rates on (score, label) pairs; returns self."""
        scores = np.asarray(scores, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if scores.shape != labels.shape:
            raise ValueError("scores and labels must have the same length")
        if scores.size == 0:
            raise ValueError("cannot fit on an empty sample")
        if np.any((labels != 0) & (labels != 1)):
            raise ValueError("labels must be 0 or 1")
        edges = np.linspace(0.0, 1.0, self.n_bins + 1)
        centres, rates, weights = [], [], []
        for low, high in zip(edges[:-1], edges[1:]):
            if high == 1.0:
                mask = (scores >= low) & (scores <= high)
            else:
                mask = (scores >= low) & (scores < high)
            if not np.any(mask):
                continue
            centres.append((low + high) / 2.0)
            rates.append(float(labels[mask].mean()))
            weights.append(float(mask.sum()))
        if not centres:
            raise ValueError("no scores fell into [0, 1]")
        self._centres = np.asarray(centres)
        self._probabilities = pool_adjacent_violators(rates, weights)
        self._fitted = True
        return self

    def predict(self, score: float) -> float:
        """Calibrated match probability for one score."""
        if not self._fitted:
            raise RuntimeError("calibrator is not fitted")
        return float(
            np.interp(score, self._centres, self._probabilities)
        )

    def predict_many(self, scores: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`predict`."""
        if not self._fitted:
            raise RuntimeError("calibrator is not fitted")
        return np.interp(np.asarray(scores, dtype=float), self._centres, self._probabilities)


def expected_calibration_error(
    probabilities: Sequence[float],
    labels: Sequence[int],
    n_bins: int = 10,
) -> float:
    """ECE: weighted mean |empirical accuracy − mean confidence| per bin."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=float)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must have the same length")
    if probabilities.size == 0:
        return 0.0
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    error = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        if high == 1.0:
            mask = (probabilities >= low) & (probabilities <= high)
        else:
            mask = (probabilities >= low) & (probabilities < high)
        if not np.any(mask):
            continue
        weight = mask.sum() / probabilities.size
        error += weight * abs(labels[mask].mean() - probabilities[mask].mean())
    return float(error)


@dataclass(frozen=True)
class CalibrationReport:
    """Summary of calibration quality for one feature set / matcher."""

    feature_set: str
    ece_raw: float
    ece_calibrated: float
    auc: float
    sample_size: int


def ranking_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Probability that a random positive outscores a random negative."""
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=int)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if positives.size == 0 or negatives.size == 0:
        return 0.5
    # Rank-based (Mann-Whitney) computation.
    order = np.argsort(np.concatenate([positives, negatives]), kind="mergesort")
    ranks = np.empty(order.size, dtype=float)
    ranks[order] = np.arange(1, order.size + 1)
    # Average ties.
    combined = np.concatenate([positives, negatives])
    for value in np.unique(combined):
        mask = combined == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    rank_sum = ranks[: positives.size].sum()
    u_statistic = rank_sum - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))
