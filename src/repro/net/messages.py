"""Message model for the peer overlay."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_MESSAGE_COUNTER = itertools.count()


@dataclass
class Message:
    """A unit of communication between two overlay nodes.

    Attributes
    ----------
    sender / recipient:
        Overlay node identifiers.
    kind:
        Application-level message type (e.g. ``"query"``, ``"offer"``).
    payload:
        Arbitrary application data.
    size:
        Payload size in abstract units; divides by link bandwidth to give
        transmission delay.
    reply_to:
        Id of the message this one answers, if any.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    size: float = 1.0
    reply_to: Optional[int] = None
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("message size must be positive")

    def reply(self, kind: str, payload: Any = None, size: float = 1.0) -> "Message":
        """Build a reply addressed back to the sender."""
        return Message(
            sender=self.recipient,
            recipient=self.sender,
            kind=kind,
            payload=payload,
            size=size,
            reply_to=self.message_id,
        )


def reset_message_ids() -> None:
    """Reset the global message-id counter (tests only)."""
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER = itertools.count()
