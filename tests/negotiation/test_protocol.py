"""Tests for the alternating-offers protocol."""

import pytest

from repro.negotiation import (
    AlternatingOffersProtocol,
    FirmStrategy,
    NegotiationPreferences,
    Negotiator,
    TitForTatStrategy,
    boulware,
    buyer_utility,
    conceder,
    linear,
    seller_utility,
    standard_qos_issue_space,
)

SPACE = standard_qos_issue_space(max_price=10.0, max_response_time=10.0)


def _buyer(strategy, reservation=0.25):
    return Negotiator(
        "buyer",
        NegotiationPreferences(buyer_utility(SPACE), reservation),
        strategy,
    )


def _seller(strategy, reservation=0.25):
    return Negotiator(
        "seller",
        NegotiationPreferences(seller_utility(SPACE), reservation),
        strategy,
    )


class TestProtocol:
    def test_conceders_agree_quickly(self):
        outcome = AlternatingOffersProtocol(max_rounds=30).run(
            _buyer(conceder()), _seller(conceder())
        )
        assert outcome.agreed
        assert outcome.rounds < 15

    def test_two_firm_agents_fail(self):
        outcome = AlternatingOffersProtocol(max_rounds=20).run(
            _buyer(FirmStrategy()), _seller(FirmStrategy())
        )
        assert not outcome.agreed
        assert outcome.deal is None
        assert outcome.joint_utility == 0.0

    def test_boulware_vs_conceder_favors_boulware(self):
        protocol = AlternatingOffersProtocol(max_rounds=40)
        outcome = protocol.run(_buyer(boulware()), _seller(conceder()))
        assert outcome.agreed
        assert outcome.buyer_utility > outcome.seller_utility

    def test_deal_meets_reservations(self):
        protocol = AlternatingOffersProtocol(max_rounds=40)
        outcome = protocol.run(_buyer(linear(), 0.4), _seller(linear(), 0.4))
        assert outcome.agreed
        assert outcome.buyer_utility >= 0.4 - 1e-9
        assert outcome.seller_utility >= 0.4 - 1e-9

    def test_transcript_recorded(self):
        outcome = AlternatingOffersProtocol(max_rounds=30).run(
            _buyer(linear()), _seller(linear())
        )
        assert len(outcome.transcript) == outcome.rounds

    def test_nash_product(self):
        outcome = AlternatingOffersProtocol(max_rounds=40).run(
            _buyer(linear()), _seller(linear())
        )
        assert outcome.nash_product == pytest.approx(
            outcome.buyer_utility * outcome.seller_utility
        )

    def test_deal_is_valid_offer(self):
        outcome = AlternatingOffersProtocol(max_rounds=40).run(
            _buyer(conceder()), _seller(conceder())
        )
        SPACE.validate(outcome.deal)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            AlternatingOffersProtocol(max_rounds=0)

    def test_tit_for_tat_agrees_with_conceder(self):
        outcome = AlternatingOffersProtocol(max_rounds=60).run(
            _buyer(TitForTatStrategy()), _seller(conceder())
        )
        assert outcome.agreed

    def test_symmetric_linear_roughly_fair(self):
        outcome = AlternatingOffersProtocol(max_rounds=100).run(
            _buyer(linear()), _seller(linear())
        )
        assert outcome.agreed
        assert abs(outcome.buyer_utility - outcome.seller_utility) < 0.25
