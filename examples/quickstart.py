"""Quickstart: build an agora, shop for information, inspect the deal.

Run with:  python examples/quickstart.py
"""

from repro import Consumer, QoSRequirement, UserProfile, build_agora
from repro.workloads import QueryWorkloadGenerator


def main() -> None:
    # An agora with 8 independent sources over the five Iris domains.
    agora = build_agora(seed=42, n_sources=8, items_per_source=40)
    print(f"Built {agora}")
    print(f"Domains on offer: {', '.join(agora.available_domains())}")

    # A consumer who cares about folk jewelry and result completeness.
    profile = UserProfile(
        user_id="quickstart-user",
        interests=agora.topic_space.basis("folk-jewelry", weight=0.9),
    )
    consumer = Consumer(agora, profile, planner="trading")

    # A topic query with a QoS requirement — the consumer will negotiate
    # SLA contracts with sources to serve it.
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("quickstart"),
    )
    query = workload.topic_query(
        "folk-jewelry", k=8,
        requirement=QoSRequirement(min_completeness=0.2, min_correctness=0.5),
    )

    result = consumer.ask(query)

    print(f"\nQuery served by {len(result.contracts)} SLA contract(s); "
          f"total price {result.total_price:.2f}")
    for contract in result.contracts:
        print(f"  - {contract.provider_id}: base {contract.base_price:.2f} "
              f"+ premium {contract.premium:.2f} "
              f"(compensation {contract.compensation:.2f} on breach)")

    print(f"\nDelivered QoS: completeness={result.delivered.completeness:.2f} "
          f"correctness={result.delivered.correctness:.2f} "
          f"freshness={result.delivered.freshness:.2f} "
          f"response_time={result.delivered.response_time:.2f}")
    print(f"Breached contracts: {result.breached_contracts} "
          f"(net cost after compensation: {result.net_cost:.2f})")
    print(f"Consumer utility: {result.utility:.3f}")

    print("\nTop results (personalized ranking):")
    for item in result.ranked_items[:5]:
        relevance = agora.oracle.relevance(query, item)
        print(f"  [{item.domain:>12}] {item.item_id}  "
              f"(true relevance {relevance:.2f})")


if __name__ == "__main__":
    main()
