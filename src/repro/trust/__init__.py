"""Trust and reputation (cross-cutting; feeds QoS "trust" dimension).

Public API:

- :class:`BetaReputation`, :class:`ReputationSystem` — beta reputation
  with exponential forgetting.
- :class:`Blacklist`, :class:`BlacklistRegistry` — banned counterparties.
"""

from repro.trust.blacklist import Blacklist, BlacklistRegistry
from repro.trust.reputation import BetaReputation, ReputationSystem

__all__ = [
    "BetaReputation",
    "Blacklist",
    "BlacklistRegistry",
    "ReputationSystem",
]
