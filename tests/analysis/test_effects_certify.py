"""Certification end: AGR10x rules, trust semantics, manifest, CLI.

The acceptance contract of the shard-safety gate: every declared
``# agora: shard-safe`` root in ``src/repro`` verifies PURE or
READS_SHARED with zero AGR10x findings, and the attestation manifest is
byte-stable and matches the committed baseline.
"""

import json
from pathlib import Path

from repro.analysis.effects import (
    MUTATES_SHARED,
    PURE,
    READS_SHARED,
    ProjectIndex,
    analyse,
    build_manifest,
    build_report,
    effects_cli,
    render_manifest,
)
from repro.analysis.effects.project import SHARD_SAFE, WORKER_LOCAL

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"
BASELINE = ROOT / "shard_safety.json"


def build_index(*sources: str) -> ProjectIndex:
    index = ProjectIndex()
    for position, source in enumerate(sources):
        index.add_source(
            source, path=f"mem/m{position}.py", module=f"repro.mem.m{position}"
        )
    index.finalise()
    return index


def rule_ids(report):
    return sorted(v.rule_id for v in report.violations)


class TestRuleEmission:
    def test_agr101_mutation_on_certified_path(self):
        report = build_report(
            analyse(
                build_index(
                    "STATE = {}\n"
                    "\n"
                    "# agora: shard-safe\n"
                    "def tainted() -> None:\n"
                    "    STATE['k'] = 1\n"
                )
            )
        )
        assert rule_ids(report) == ["AGR101"]
        (violation,) = report.violations
        assert "tainted" in violation.message
        assert "witness" in violation.message

    def test_agr102_unthreaded_rng_draw(self):
        report = build_report(
            analyse(
                build_index(
                    "import numpy as np\n"
                    "GEN = np.random.default_rng(7)\n"
                    "\n"
                    "# agora: shard-safe\n"
                    "def draw() -> float:\n"
                    "    return GEN.normal()\n"
                )
            )
        )
        assert "AGR102" in rule_ids(report)

    def test_agr103_unresolved_dynamic_call(self):
        report = build_report(
            analyse(
                build_index(
                    "# agora: shard-safe\n"
                    "def jump(hook) -> None:\n"
                    "    hook.fire()\n"
                )
            )
        )
        assert rule_ids(report) == ["AGR103"]

    def test_agr104_stale_worker_local_declaration(self):
        report = build_report(
            analyse(
                build_index(
                    "# agora: worker-local nothing to attest\n"
                    "def calm(n: int) -> int:\n"
                    "    return n + 1\n"
                )
            )
        )
        assert rule_ids(report) == ["AGR104"]

    def test_agr104_dangling_annotation(self):
        report = build_report(
            analyse(
                build_index(
                    "# agora: shard-safe\n"
                    "\n"
                    "X = 1\n"
                )
            )
        )
        assert rule_ids(report) == ["AGR104"]
        assert "dangling" in report.violations[0].message

    def test_docstring_mention_is_not_a_declaration(self):
        index = build_index(
            'def doc() -> None:\n'
            '    """Mentions # agora: shard-safe in prose only."""\n'
        )
        assert index.declared(SHARD_SAFE) == []
        assert index.dangling == []

    def test_clean_root_produces_no_findings(self):
        report = build_report(
            analyse(
                build_index(
                    "# agora: shard-safe\n"
                    "def lift(n: int) -> int:\n"
                    "    return n + 1\n"
                )
            )
        )
        assert report.violations == []

    def test_agr10x_suppression_applies(self):
        report = build_report(
            analyse(
                build_index(
                    "STATE = {}\n"
                    "\n"
                    "# agora: shard-safe\n"
                    "def tainted() -> None:  # agora: ignore[AGR101] migration stopgap\n"
                    "    STATE['k'] = 1\n"
                )
            )
        )
        assert report.violations == []
        assert [v.rule_id for v in report.suppressed] == ["AGR101"]


class TestTrustSemantics:
    def test_worker_local_caps_self_writes_at_reads_shared(self):
        source = (
            "class Cache:\n"
            "    # agora: worker-local per-worker dict, deterministic fill\n"
            "    def put(self, key: str) -> None:\n"
            "        self.store = key\n"
            "\n"
            "# agora: shard-safe\n"
            "def warm(cache: Cache) -> None:\n"
            "    cache.put('k')\n"
        )
        result = analyse(build_index(source))
        assert result.verdicts["repro.mem.m0.Cache.put"] == READS_SHARED
        # the synthetic instance read maps through the parameter receiver
        # at the call site and drops: reading a caller-supplied object is
        # pure from the caller's perspective
        assert result.verdicts["repro.mem.m0.warm"] == PURE
        assert result.trusted["repro.mem.m0.Cache.put"] is True
        assert build_report(result).violations == []

    def test_global_writes_are_never_trustable(self):
        source = (
            "STATE = {}\n"
            "\n"
            "# agora: worker-local wishful thinking\n"
            "def leak() -> None:\n"
            "    STATE['k'] = 1\n"
        )
        result = analyse(build_index(source))
        assert result.verdicts["repro.mem.m0.leak"] == MUTATES_SHARED
        # the declaration dropped nothing -> stale
        assert result.stale_declarations == ["repro.mem.m0.leak"]

    def test_raw_summary_still_visible_next_to_exported(self):
        source = (
            "class Cache:\n"
            "    # agora: worker-local replicated per worker\n"
            "    def put(self, key: str) -> None:\n"
            "        self.store = key\n"
        )
        result = analyse(build_index(source))
        raw = result.summaries["repro.mem.m0.Cache.put"]
        exported = result.exported["repro.mem.m0.Cache.put"]
        assert any(e.kind == "write_self" for e in raw)
        assert all(e.kind != "write_self" for e in exported)


class TestLibraryCertification:
    """The repo-level acceptance gate, run against the real tree."""

    def setup_method(self):
        self.result = analyse(ProjectIndex.build([SRC]))

    def test_declared_roots_certify_clean(self):
        roots = self.result.index.declared(SHARD_SAFE)
        assert len(roots) >= 20, "the hot read path must be annotated"
        bad = {
            func.qualname: self.result.verdicts[func.qualname]
            for func in roots
            if self.result.verdicts[func.qualname] not in (PURE, READS_SHARED)
        }
        assert bad == {}

    def test_zero_agr10x_findings(self):
        report = build_report(self.result)
        assert report.violations == [], [
            v.render() for v in report.violations
        ]

    def test_worker_local_declarations_all_attest_something(self):
        assert self.result.stale_declarations == []
        declared = self.result.index.declared(WORKER_LOCAL)
        assert len(declared) >= 5
        for func in declared:
            assert self.result.trusted[func.qualname] is True

    def test_manifest_is_byte_stable_and_matches_baseline(self):
        first = render_manifest(build_manifest(self.result))
        second = render_manifest(
            build_manifest(analyse(ProjectIndex.build([SRC])))
        )
        assert first == second
        assert first == BASELINE.read_text(encoding="utf-8")

    def test_manifest_schema(self):
        payload = json.loads(render_manifest(build_manifest(self.result)))
        assert payload["schema"] == "repro.shard-safety/1"
        assert set(payload["counts"]) <= {
            "PURE",
            "READS_SHARED",
            "MUTATES_SHARED",
            "UNKNOWN",
        }
        assert payload["roots"], "declared roots must be listed"
        for record in payload["roots"].values():
            assert record["certified"] is True
            assert record["verdict"] in (PURE, READS_SHARED)


class TestEffectsCli:
    def test_src_repro_exits_zero(self, capsys):
        assert effects_cli([str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "declared shard-safe roots:" in out
        assert "0 violations" in out

    def test_check_against_committed_baseline(self, capsys):
        code = effects_cli([str(SRC), "--check", str(BASELINE)])
        capsys.readouterr()
        assert code == 0

    def test_check_detects_drift(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text("{}\n", encoding="utf-8")
        assert effects_cli([str(SRC), "--check", str(stale)]) == 1
        assert "drifted" in capsys.readouterr().out

    def test_manifest_written(self, tmp_path, capsys):
        target = tmp_path / "manifest.json"
        assert effects_cli([str(SRC), "--manifest", str(target)]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.shard-safety/1"

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "# module: repro.mem.bad\n"
            "STATE = {}\n"
            "\n"
            "# agora: shard-safe\n"
            "def tainted() -> None:\n"
            "    STATE['k'] = 1\n",
            encoding="utf-8",
        )
        assert effects_cli([str(bad)]) == 1
        assert "AGR101" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert effects_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("AGR101", "AGR102", "AGR103", "AGR104"):
            assert rule_id in out
