"""Deterministic sim-time profiler over the kernel's event dispatch.

The :class:`SimProfiler` answers "where does virtual time go?".  The
simulation kernel calls :meth:`SimProfiler.record` once per dispatched
event with the event's causal span id and the (just-advanced) virtual
clock; the profiler attributes the sim-time delta since the previous
event — i.e. the virtual time that elapsed *leading up to* this event —
plus one event count to that span.  At report time the span forest turns
each attribution into a full ``root;child;leaf`` stack, yielding

- **folded-stack output** (:meth:`folded_text`) in the standard
  flamegraph collapsed format, one ``stack value`` line per stack,
  weighted by event count or by sim time in integer microticks; and
- a **top-N hotspot table** (:meth:`hotspots` / :func:`render_hotspots`)
  ranked by attributed sim time.

Everything is a pure function of the deterministic event sequence, so
two same-seed runs emit byte-identical folded output.  The profiler
holds no reference to the kernel or tracer — it receives span ids at
record time and the span list at report time — keeping ``repro.obs`` at
the bottom of the layer DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.spans import Span, span_index

PathLike = Union[str, Path]

#: Stack label for events dispatched outside any span context.
UNATTRIBUTED = "(unattributed)"
#: Stack label for span ids whose spans were dropped at the recording cap.
DROPPED = "(dropped)"
#: Microticks per unit of sim time in sim-time-weighted folded output
#: (flamegraph collapsed format wants integer sample counts).
SIM_TIME_TICKS = 1_000_000


@dataclass(frozen=True)
class HotSpot:
    """One aggregated stack in the profile, ranked by sim time."""

    stack: str
    sim_time: float
    events: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSON profile artifact."""
        return {"stack": self.stack, "sim_time": self.sim_time, "events": self.events}


class SimProfiler:
    """Attributes dispatched sim time and event counts to span stacks.

    The hot-path surface is a single method (:meth:`record`) doing one
    dict lookup and two adds, so profiler-on runs stay within the
    benchmark gate's 2x-of-tracing budget
    (``benchmarks/bench_obs_overhead.py``).
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._last_time = 0.0
        #: span id (None = no causal context) → [sim_time, events]
        self._samples: Dict[Optional[int], List[float]] = {}

    # -- recording (kernel hot path) -------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this profiler records anything."""
        return self._enabled

    # agora: worker-local per-worker sample table keyed by span id; each
    # worker's profile is merged (or exported per shard) after the run
    def record(self, span_id: Optional[int], now: float) -> None:
        """Attribute the time since the previous event to ``span_id``.

        The kernel calls this once per dispatched event, after advancing
        the clock to the event's time and before running its callback.
        """
        if not self._enabled:
            return
        delta = now - self._last_time
        self._last_time = now
        cell = self._samples.get(span_id)
        if cell is None:
            cell = self._samples[span_id] = [0.0, 0]
        cell[0] += delta
        cell[1] += 1

    @property
    def event_count(self) -> int:
        """Total events attributed so far."""
        return int(sum(cell[1] for cell in self._samples.values()))

    @property
    def total_sim_time(self) -> float:
        """Total sim time attributed so far."""
        return sum(cell[0] for cell in self._samples.values())

    # -- reporting --------------------------------------------------------
    def _stacks(self, spans: Sequence[Span]) -> Dict[str, Tuple[float, int]]:
        """Aggregate samples by full ``root;…;leaf`` stack string."""
        index = span_index(spans)
        stacks: Dict[str, List[float]] = {}
        for span_id, (sim_time, events) in self._samples.items():
            if span_id is None:
                stack = UNATTRIBUTED
            else:
                names: List[str] = []
                current: Optional[int] = span_id
                while current is not None:
                    span = index.get(current)
                    if span is None:
                        names.append(DROPPED)
                        break
                    names.append(span.name)
                    current = span.parent_id
                stack = ";".join(reversed(names))
            cell = stacks.get(stack)
            if cell is None:
                cell = stacks[stack] = [0.0, 0]
            cell[0] += sim_time
            cell[1] += int(events)
        return {stack: (cell[0], int(cell[1])) for stack, cell in stacks.items()}

    def folded(
        self, spans: Sequence[Span], weight: str = "sim_time"
    ) -> List[str]:
        """Folded-stack lines (``stack value``), sorted by stack.

        ``weight`` selects the sample value: ``"sim_time"`` (integer
        microticks, see :data:`SIM_TIME_TICKS`) or ``"events"``.
        """
        if weight not in ("sim_time", "events"):
            raise ValueError(f"unknown folded weight {weight!r}")
        stacks = self._stacks(spans)
        lines: List[str] = []
        for stack in sorted(stacks):
            sim_time, events = stacks[stack]
            value = round(sim_time * SIM_TIME_TICKS) if weight == "sim_time" else events
            lines.append(f"{stack} {value}")
        return lines

    def folded_text(self, spans: Sequence[Span], weight: str = "sim_time") -> str:
        """The folded lines joined for writing to a ``.folded`` file."""
        lines = self.folded(spans, weight=weight)
        return "\n".join(lines) + ("\n" if lines else "")

    def hotspots(self, spans: Sequence[Span], top: int = 10) -> List[HotSpot]:
        """Top-``top`` stacks by attributed sim time (ties by stack name)."""
        stacks = self._stacks(spans)
        ranked = sorted(
            (
                HotSpot(stack=stack, sim_time=sim_time, events=events)
                for stack, (sim_time, events) in stacks.items()
            ),
            key=lambda spot: (-spot.sim_time, spot.stack),
        )
        return ranked[:top]

    def profile_dict(self, spans: Sequence[Span], top: int = 10) -> Dict[str, Any]:
        """Serializable profile artifact (totals + the hotspot table)."""
        return {
            "total_sim_time": self.total_sim_time,
            "total_events": self.event_count,
            "hotspots": [spot.to_dict() for spot in self.hotspots(spans, top=top)],
        }


# agora: shard-safe
def render_hotspots(hotspots: Sequence[HotSpot], total_sim_time: float = 0.0) -> str:
    """Text table of a hotspot list (widths fixed, deterministic)."""
    if not hotspots:
        return "(no profile samples)"
    lines = [f"{'sim time':>12}  {'share':>6}  {'events':>8}  stack"]
    for spot in hotspots:
        share = spot.sim_time / total_sim_time if total_sim_time > 0 else 0.0
        lines.append(
            f"{spot.sim_time:>12.4f}  {share:>6.1%}  {spot.events:>8d}  {spot.stack}"
        )
    return "\n".join(lines)


# agora: shard-safe
def parse_folded(text: str) -> List[Tuple[str, int]]:
    """Parse folded-stack lines back into ``(stack, value)`` pairs."""
    entries: List[Tuple[str, int]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed folded line {line_number}: {line!r}")
        try:
            entries.append((stack, int(value)))
        except ValueError as exc:
            raise ValueError(
                f"malformed folded value on line {line_number}: {line!r}"
            ) from exc
    return entries


def write_profile(
    directory: PathLike,
    profiler: SimProfiler,
    spans: Sequence[Span],
    top: int = 10,
) -> Dict[str, str]:
    """Write the profile artifact pair into ``directory``.

    Produces ``profile.folded`` (sim-time-weighted collapsed stacks,
    flamegraph-ready) and ``profile.json`` (totals + hotspot table).
    Returns artifact kind → path.
    """
    from repro.obs.manifest import canonical_json

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    folded_path = target / "profile.folded"
    folded_path.write_text(profiler.folded_text(spans, weight="sim_time"))
    json_path = target / "profile.json"
    json_path.write_text(canonical_json(profiler.profile_dict(spans, top=top)) + "\n")
    return {"folded": str(folded_path), "profile": str(json_path)}
