"""Shard-safety gate: only certified code may run in worker processes.

PR 7's interprocedural effect analysis certifies, per function, whether
its transitive effect footprint is compatible with running on a shard
(``PURE`` / ``READS_SHARED``) or not (``WRITES_SHARED`` / ``UNSAFE`` /
``UNKNOWN``), and commits the verdicts to ``shard_safety.json``.  The
pool cashes that certificate in: :func:`verify_worker_roots` loads the
manifest at **pool construction** and refuses to build a pool whose
worker entry points are not certified — a regression that makes
``rank_block`` write shared state fails fast at the constructor, not as
a heisenbug three layers into a sharded run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.analysis.effects.manifest import ShardSafetyManifest

#: The functions the pool's workers execute on behalf of the
#: coordinator.  Everything a worker does per request reduces to these
#: roots (block preparation included — ``prepare`` builds the worker's
#: slice block).
WORKER_ROOTS: Tuple[str, ...] = (
    "repro.uncertainty.matching.MatchingEngine.prepare",
    "repro.uncertainty.matching.MatchingEngine.rank_block",
    "repro.uncertainty.matching.MatchingEngine.rank_block_topk",
    "repro.uncertainty.matching.MatchingEngine.score_many",
    "repro.uncertainty.matching.CandidateBlock.score",
    "repro.uncertainty.matching.CandidateBlock.score_range",
)

#: Verdicts that permit worker-side execution.
SHARD_SAFE_VERDICTS = frozenset({"PURE", "READS_SHARED"})


class ShardSafetyError(RuntimeError):
    """A worker entry point is not certified shard-safe."""


def default_manifest_path() -> Path:
    """The repo-root ``shard_safety.json`` (relative to this source tree)."""
    return Path(__file__).resolve().parents[3] / "shard_safety.json"


def verify_worker_roots(
    manifest_path: Optional[Union[str, Path]] = None,
    roots: Sequence[str] = WORKER_ROOTS,
) -> ShardSafetyManifest:
    """Load the manifest and certify every worker root, or raise.

    Returns the loaded manifest so callers can record its digest.
    Raises :class:`ShardSafetyError` when the manifest is missing or any
    root's verdict is absent or outside :data:`SHARD_SAFE_VERDICTS`.
    """
    path = Path(manifest_path) if manifest_path is not None else default_manifest_path()
    if not path.is_file():
        raise ShardSafetyError(
            f"shard-safety manifest not found at {path}; regenerate it with "
            "`python -m repro.analysis effects src/repro --manifest shard_safety.json`"
        )
    manifest = ShardSafetyManifest.load(path)
    offenders = []
    for qualname in roots:
        verdict = manifest.verdict(qualname)
        if verdict not in SHARD_SAFE_VERDICTS:
            offenders.append(f"{qualname} (verdict: {verdict or 'missing'})")
    if offenders:
        raise ShardSafetyError(
            "refusing to build a shard pool: uncertified worker roots:\n  "
            + "\n  ".join(offenders)
        )
    return manifest
