"""R1 (resilience): delivered quality under outages, policies on vs off.

One source per mirrored domain is knocked out by a scripted fault window
while a consumer keeps asking queries.  The greedy planner assigns jobs
from advertised descriptors, so dead sources still win assignments and
decline at execution time.  With resilience policies off those jobs are
simply lost; with retries + breakers + failover on, the executor reroutes
them to the live mirror covering the same domain (and, after the breaker
opens, skips the dead source entirely).  Expected shape: global recall
and utility with policies on dominate policies off.
"""

from collections import defaultdict

import pytest

from repro import Consumer, UserProfile, build_agora
from repro.data import reset_item_ids
from repro.experiments import ExperimentResult, summarize
from repro.net import reset_message_ids
from repro.query import reset_query_ids
from repro.resilience import FaultScript, ResilienceConfig
from repro.workloads import QueryWorkloadGenerator

OUTAGE_START = 1.0
OUTAGE_DURATION = 10_000.0  # covers the whole query burst


def mirrored_victims(agora):
    """One victim source per domain that has a live mirror to fail over to."""
    by_domain = defaultdict(list)
    for source_id, source in sorted(agora.sources.items()):
        for domain in source.domains:
            by_domain[domain].append(source_id)
    return sorted(
        {sources[0] for sources in by_domain.values() if len(sources) > 1}
    )


def run_resilience(seed=31, n_sources=8, n_queries=12) -> ExperimentResult:
    result = ExperimentResult(
        "R1", "Quality under outages: resilience policies on vs off",
        ["policies", "global_recall", "utility", "retries", "failovers",
         "recoveries", "breaker_skips"],
    )
    for enabled in (False, True):
        reset_item_ids()
        reset_query_ids()
        reset_message_ids()
        agora = build_agora(seed=seed, n_sources=n_sources,
                            items_per_source=12, calibration_pairs=200)
        script = FaultScript()
        for source_id in mirrored_victims(agora):
            script.outage(agora.sources[source_id].node_id,
                          start=OUTAGE_START, duration=OUTAGE_DURATION)
        agora.inject_faults(script)
        agora.run(until=OUTAGE_START + 1.0)

        workload = QueryWorkloadGenerator(
            agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("r1"),
        )
        profile = UserProfile(
            user_id="r1-user",
            interests=agora.topic_space.basis("folk-jewelry", 0.9),
        )
        consumer = Consumer(
            agora, profile, planner="greedy",
            resilience=(ResilienceConfig.default_enabled() if enabled
                        else ResilienceConfig()),
        )
        recalls, utilities = [], []
        for index in range(n_queries):
            topic = agora.topic_space.names[index % 5]
            query = workload.topic_query(topic, k=15)
            outcome = consumer.ask(query)
            relevant_everywhere = set()
            for source in agora.sources.values():
                for item in source.visible_items(agora.now):
                    if agora.oracle.is_relevant(query, item):
                        relevant_everywhere.add(item.item_id)
            relevant_found = sum(
                1 for item in outcome.results.items()
                if agora.oracle.is_relevant(query, item)
            )
            denominator = min(len(relevant_everywhere), query.k)
            recalls.append(relevant_found / denominator if denominator else 1.0)
            utilities.append(outcome.utility)
        counters = agora.sim.trace.counters()
        result.add_row(
            "on" if enabled else "off",
            summarize(recalls).mean,
            summarize(utilities).mean,
            counters.get("resilience.retries", 0.0),
            counters.get("resilience.failovers", 0.0),
            counters.get("resilience.leaf_recoveries", 0.0),
            counters.get("resilience.breaker_short_circuits", 0.0),
        )
    result.add_note(
        "expected shape: policies on recovers recall lost to the outage"
    )
    return result


@pytest.mark.benchmark(group="R1")
def test_resilience_policies_recover_quality(benchmark):
    result = benchmark.pedantic(run_resilience, rounds=1, iterations=1)
    result.print()
    by_policy = {row[0]: row for row in result.rows}
    assert by_policy["on"][1] > by_policy["off"][1]  # global recall
    assert by_policy["on"][2] >= by_policy["off"][2]  # utility
    # The recovery has to come from actual resilience work.
    assert by_policy["on"][5] > 0  # leaf recoveries
    assert by_policy["off"][4] == 0  # no failovers with policies off


if __name__ == "__main__":
    run_resilience().print()
