"""``python -m repro.analysis effects`` — the shard-safety certifier.

Runs the interprocedural effect pass, reports AGR10x violations through
the standard reporters, and (optionally) writes / checks the
byte-stable ``shard_safety.json`` manifest.  Exit code 0 means the
declared shard-safe set certifies clean and, when ``--check`` is given,
the manifest matches the committed baseline byte for byte.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.effects.fixpoint import EffectsResult, analyse
from repro.analysis.effects.manifest import (
    build_manifest,
    diff_manifests,
    render_manifest,
)
from repro.analysis.effects.project import SHARD_SAFE, ProjectIndex
from repro.analysis.effects.rules import RULE_DOCS, build_report
from repro.analysis.reporting import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis effects",
        description=(
            "Interprocedural effect analysis: certify # agora: shard-safe "
            "paths (rules AGR101-AGR104) and emit the shard_safety.json "
            "attestation manifest."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the shard-safety manifest to PATH",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help=(
            "compare the freshly built manifest byte-for-byte against "
            "BASELINE and fail on drift"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the AGR10x rule table and exit",
    )
    return parser


def _verdict_lines(result: EffectsResult) -> str:
    lines = ["declared shard-safe roots:"]
    roots = result.index.declared(SHARD_SAFE)
    if not roots:
        lines.append("  (none)")
    for func in roots:
        verdict = result.verdicts.get(func.qualname, "?")
        lines.append(f"  {func.qualname}: {verdict}")
    counts: dict = {}
    for verdict in result.verdicts.values():
        counts[verdict] = counts.get(verdict, 0) + 1
    summary = ", ".join(
        f"{verdict}={counts[verdict]}" for verdict in sorted(counts)
    )
    lines.append(
        f"{len(result.verdicts)} functions analysed in "
        f"{result.iterations} fixpoint steps ({summary})"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the certifier; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        lines = []
        for rule_id in sorted(RULE_DOCS):
            title, rationale = RULE_DOCS[rule_id]
            lines.append(f"{rule_id}  {title}")
            lines.append(f"        {rationale}")
        print("\n".join(lines))
        return 0

    index = ProjectIndex.build(args.paths)
    result = analyse(index)
    report = build_report(result)
    payload = build_manifest(result)

    ok = report.ok
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
        print(_verdict_lines(result))

    if args.manifest is not None:
        Path(args.manifest).write_text(
            render_manifest(payload), encoding="utf-8"
        )

    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            print(f"manifest baseline missing: {baseline_path}")
            ok = False
        else:
            baseline_text = baseline_path.read_text(encoding="utf-8")
            fresh_text = render_manifest(payload)
            if baseline_text != fresh_text:
                print(f"shard-safety manifest drifted from {baseline_path}:")
                try:
                    baseline_payload = json.loads(baseline_text)
                except ValueError:
                    baseline_payload = {}
                for line in diff_manifests(baseline_payload, payload)[:50]:
                    print(f"  {line}")
                print(
                    "  (refresh with: python -m repro.analysis effects "
                    f"src/repro --manifest {baseline_path})"
                )
                ok = False

    return 0 if ok else 1
