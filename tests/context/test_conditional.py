"""Tests for conditional profiles."""

import numpy as np
import pytest

from repro.context import ActivationRule, ConditionalProfile, Context, ProfileOverlay
from repro.personalization import UserProfile


def _conditional():
    base = UserProfile(user_id="iris", interests=np.array([0.6, 0.2, 0.2]))
    conditional = ConditionalProfile(base)
    conditional.add_overlay(
        ActivationRule({"task": "leisure"}, name="leisure"),
        ProfileOverlay(
            interest_shift=np.array([0.0, 1.0, 0.0]),
            mode_preference={"query": 0.1, "browse": 0.8, "feed": 0.1},
        ),
    )
    conditional.add_overlay(
        ActivationRule({"task": "leisure", "location": "Paris"}, name="paris-leisure"),
        ProfileOverlay(negotiation_style="conceder"),
    )
    return conditional


class TestConditionalProfile:
    def test_static_base_without_matches(self):
        conditional = _conditional()
        active = conditional.active_profile(Context(task="paper-writing"))
        np.testing.assert_allclose(active.interests, conditional.base.interests)
        assert active.negotiation_style == "linear"

    def test_single_overlay_applied(self):
        conditional = _conditional()
        active = conditional.active_profile(Context(task="leisure", location="Athens"))
        assert np.argmax(active.interests) == 1
        assert active.mode_preference["browse"] == pytest.approx(0.8)
        assert active.negotiation_style == "linear"

    def test_stacked_overlays_most_specific_last(self):
        conditional = _conditional()
        active = conditional.active_profile(Context(task="leisure", location="Paris"))
        assert active.negotiation_style == "conceder"
        assert np.argmax(active.interests) == 1  # general overlay also applied

    def test_matching_rules(self):
        conditional = _conditional()
        rules = conditional.matching_rules(Context(task="leisure", location="Paris"))
        assert {r.name for r in rules} == {"leisure", "paris-leisure"}

    def test_is_static(self):
        base = UserProfile(user_id="x", interests=np.array([1.0]))
        assert ConditionalProfile(base).is_static
        assert not _conditional().is_static

    def test_base_never_mutated(self):
        conditional = _conditional()
        before = conditional.base.interests.copy()
        conditional.active_profile(Context(task="leisure"))
        np.testing.assert_allclose(conditional.base.interests, before)
