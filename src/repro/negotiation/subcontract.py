"""Subcontracting: intermediaries between consumers and sources.

"Such trading may also occur recursively, in the sense that some nodes may
play the role of intermediaries between other nodes (subcontracting)"
(§4).  An :class:`Intermediary` answers CFPs by privately running its own
contract net over downstream bidders, marking the winning inner bid up by
a margin, and — if its outer bid wins — signing the inner contract
back-to-back with the outer one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.negotiation.contract_net import (
    Bidder,
    CallForProposals,
    ContractNetProtocol,
    Proposal,
)
from repro.qos.pricing import Quote
from repro.qos.sla import SLAContract

MAX_CHAIN_DEPTH = 4


@dataclass
class SubcontractRecord:
    """Back-to-back contract pair held by an intermediary."""

    outer: SLAContract
    inner: SLAContract

    @property
    def margin_earned(self) -> float:
        """Outer price minus inner price."""
        return self.outer.total_price - self.inner.total_price


class Intermediary:
    """A broker that resells downstream capacity with a markup.

    Parameters
    ----------
    name:
        The intermediary's provider id in outer negotiations.
    downstream:
        Bidders it may subcontract to (sources or further intermediaries).
    inner_protocol:
        The contract net used for the private downstream auction.
    margin:
        Relative markup on the inner quote (0.2 = 20%).
    max_depth:
        Refuse to extend chains beyond this depth (prevents broker loops).
    """

    def __init__(
        self,
        name: str,
        downstream: Sequence[Bidder],
        inner_protocol: ContractNetProtocol,
        margin: float = 0.2,
        max_depth: int = MAX_CHAIN_DEPTH,
    ):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.name = name
        self.downstream = list(downstream)
        self.inner_protocol = inner_protocol
        self.margin = margin
        self.max_depth = max_depth
        self._pending: Dict[str, Proposal] = {}
        self.records: List[SubcontractRecord] = []

    # ------------------------------------------------------------------
    def __call__(self, cfp: CallForProposals) -> Optional[Proposal]:
        """Bid on ``cfp`` by reselling the best downstream proposal."""
        inner_cfp = CallForProposals(
            job_id=f"{cfp.job_id}#{self.name}",
            domain=cfp.domain,
            requirement=cfp.requirement,
            consumer_id=self.name,
            issued_at=cfp.issued_at,
        )
        inner = self.inner_protocol.run(inner_cfp, self.downstream)
        if inner.awarded is None:
            return None
        if inner.awarded.chain_depth + 1 >= self.max_depth:
            return None
        marked_up = Quote(
            base_price=inner.awarded.quote.base_price * (1.0 + self.margin),
            premium=inner.awarded.quote.premium * (1.0 + self.margin),
            compensation=inner.awarded.quote.compensation,
        )
        proposal = Proposal(
            provider_id=self.name,
            cfp=cfp,
            quote=marked_up,
            promised=inner.awarded.promised,
            subcontracted=True,
            chain_depth=inner.awarded.chain_depth + 1,
            execution_source_id=inner.awarded.executor_id,
        )
        self._pending[cfp.job_id] = inner.awarded
        return proposal

    def on_award(self, proposal: Proposal, outer_contract: SLAContract) -> None:
        """Sign the back-to-back inner contract when the outer bid wins."""
        if proposal.provider_id != self.name:
            return
        inner_winner = self._pending.pop(proposal.cfp.job_id, None)
        if inner_winner is None:
            return
        inner_contract = SLAContract(
            provider_id=inner_winner.provider_id,
            consumer_id=self.name,
            requirement=proposal.cfp.requirement,
            base_price=inner_winner.quote.base_price,
            premium=inner_winner.quote.premium,
            compensation=inner_winner.quote.compensation,
            signed_at=outer_contract.signed_at,
            job_id=outer_contract.job_id,
        )
        self.records.append(SubcontractRecord(outer=outer_contract, inner=inner_contract))

    @property
    def total_margin_earned(self) -> float:
        """Margin summed over all records."""
        return sum(record.margin_earned for record in self.records)
