"""Tests for the beta reputation system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trust import BetaReputation, ReputationSystem

outcomes = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=50
)


class TestBetaReputation:
    def test_neutral_prior(self):
        assert BetaReputation().score == 0.5

    def test_positive_evidence_raises_score(self):
        rep = BetaReputation()
        for __ in range(10):
            rep.observe(1.0)
        assert rep.score > 0.8

    def test_negative_evidence_lowers_score(self):
        rep = BetaReputation()
        for __ in range(10):
            rep.observe(0.0)
        assert rep.score < 0.2

    def test_invalid_outcome(self):
        with pytest.raises(ValueError):
            BetaReputation().observe(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BetaReputation(alpha=0.0)
        with pytest.raises(ValueError):
            BetaReputation(decay=0.0)

    @given(outcomes)
    def test_score_always_bounded(self, values):
        rep = BetaReputation()
        for value in values:
            rep.observe(value)
        assert 0.0 < rep.score < 1.0

    def test_decay_lets_reformed_provider_recover(self):
        slow = BetaReputation(decay=1.0)
        fast = BetaReputation(decay=0.8)
        for rep in (slow, fast):
            for __ in range(20):
                rep.observe(0.0)
            for __ in range(20):
                rep.observe(1.0)
        assert fast.score > slow.score

    def test_pessimistic_score_below_score(self):
        rep = BetaReputation()
        rep.observe(1.0)
        assert rep.pessimistic_score() < rep.score

    def test_variance_shrinks_with_evidence(self):
        rep = BetaReputation()
        before = rep.variance
        for __ in range(10):
            rep.observe(1.0)
        assert rep.variance < before


class TestReputationSystem:
    def test_unknown_subject_neutral(self):
        assert ReputationSystem().score("nobody") == 0.5

    def test_observe_and_rank(self):
        system = ReputationSystem()
        for __ in range(5):
            system.observe("good", 1.0)
            system.observe("bad", 0.0)
        ranked = system.ranked()
        assert ranked[0][0] == "good"
        assert ranked[-1][0] == "bad"

    def test_ranked_subset(self):
        system = ReputationSystem()
        system.observe("a", 1.0)
        system.observe("b", 0.0)
        system.observe("c", 1.0)
        ranked = system.ranked(["a", "b"])
        assert [name for name, __ in ranked] == ["a", "b"]

    def test_ranked_ties_broken_by_name(self):
        system = ReputationSystem()
        ranked = system.ranked(["z", "a"])
        assert [name for name, __ in ranked] == ["a", "z"]

    def test_evidence_counts(self):
        system = ReputationSystem()
        assert system.evidence("x") == pytest.approx(0.0)
        system.observe("x", 1.0)
        assert system.evidence("x") > 0.0
