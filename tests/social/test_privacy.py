"""Tests for privacy policies."""

import pytest

from repro.social import (
    PrivacyPolicy,
    PrivacyRegistry,
    SocialGraph,
    Visibility,
)


@pytest.fixture
def graph():
    g = SocialGraph()
    g.befriend("iris", "jason")
    g.add_user("stranger")
    return g


class TestPolicy:
    def test_owner_always_sees_own(self, graph):
        policy = PrivacyPolicy("iris")
        assert policy.allows("history", "iris", graph)

    def test_friends_visibility(self, graph):
        policy = PrivacyPolicy("iris")
        assert policy.allows("interests", "jason", graph)
        assert not policy.allows("interests", "stranger", graph)

    def test_public_visibility(self, graph):
        policy = PrivacyPolicy("iris")
        policy.set_level("interests", Visibility.PUBLIC)
        assert policy.allows("interests", "stranger", graph)

    def test_private_blocks_friends(self, graph):
        policy = PrivacyPolicy("iris")
        policy.set_level("interests", Visibility.PRIVATE)
        assert not policy.allows("interests", "jason", graph)

    def test_unknown_part_rejected(self, graph):
        policy = PrivacyPolicy("iris")
        with pytest.raises(ValueError):
            policy.allows("shoe-size", "jason", graph)
        with pytest.raises(ValueError):
            policy.set_level("shoe-size", Visibility.PUBLIC)

    def test_unknown_part_in_constructor_rejected(self):
        with pytest.raises(ValueError):
            PrivacyPolicy("iris", levels={"shoe-size": Visibility.PUBLIC})

    def test_missing_parts_default_private(self):
        policy = PrivacyPolicy("iris", levels={"interests": Visibility.PUBLIC})
        assert policy.levels["history"] is Visibility.PRIVATE


class TestRegistry:
    def test_default_policy_conservative(self, graph):
        registry = PrivacyRegistry(graph)
        assert registry.can_see("jason", "iris", "interests")  # friends
        assert not registry.can_see("stranger", "iris", "interests")
        assert not registry.can_see("jason", "iris", "history")  # private

    def test_set_policy(self, graph):
        registry = PrivacyRegistry(graph)
        open_policy = PrivacyPolicy(
            "iris", levels={part: Visibility.PUBLIC for part in
                            ("interests", "qos_weights", "history", "queries")}
        )
        registry.set_policy(open_policy)
        assert registry.can_see("stranger", "iris", "history")

    def test_visible_users_filter(self, graph):
        registry = PrivacyRegistry(graph)
        visible = registry.visible_users("jason", "interests", ["iris", "stranger"])
        assert visible == ["iris"]
