"""Tests for Pareto utilities."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.optimizer import (
    CandidateAssignment,
    CandidatePlan,
    PlanEvaluation,
    dominates,
    hypervolume,
    pareto_front,
    regret,
)
from repro.qos import QoSVector
from repro.query import Query, QueryKind
from repro.uncertainty import UncertainEstimate


def _evaluation(utility, price):
    query = Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id=f"ref-{utility}-{price}", domain="museum",
            latent=np.array([1.0]), terms={"w00001": 1},
        ),
    )
    assignment = CandidateAssignment(
        subquery=query.restricted_to("museum"),
        source_id="s1",
        expected=QoSVector(),
        cost=UncertainEstimate.exact(price),
        breach_risk=0.0,
    )
    plan = CandidatePlan({"j1": [assignment]})
    return PlanEvaluation(
        plan=plan, qos=QoSVector(), price=price, utility=utility,
        risk_adjusted_utility=utility, breach_risk=0.0,
    )


class TestDominance:
    def test_better_both_dominates(self):
        assert dominates(_evaluation(0.9, 1.0), _evaluation(0.5, 2.0))

    def test_tradeoff_incomparable(self):
        a = _evaluation(0.9, 5.0)
        b = _evaluation(0.5, 1.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_equal_not_dominating(self):
        a = _evaluation(0.5, 1.0)
        b = _evaluation(0.5, 1.0)
        assert not dominates(a, b)


class TestFront:
    def test_front_filters_dominated(self):
        evaluations = [
            _evaluation(0.9, 1.0),
            _evaluation(0.5, 2.0),  # dominated
            _evaluation(0.95, 3.0),
        ]
        front = pareto_front(evaluations)
        utilities = [e.utility for e in front]
        assert 0.5 not in utilities
        assert len(front) == 2

    def test_front_sorted_by_utility(self):
        front = pareto_front([_evaluation(0.3, 0.1), _evaluation(0.9, 5.0)])
        assert front[0].utility == 0.9

    def test_duplicates_collapsed(self):
        front = pareto_front([_evaluation(0.5, 1.0), _evaluation(0.5, 1.0)])
        assert len(front) == 1

    def test_empty_front(self):
        assert pareto_front([]) == []


class TestHypervolume:
    def test_single_point(self):
        volume = hypervolume([_evaluation(0.5, 2.0)], reference_price=10.0)
        assert volume == pytest.approx((10.0 - 2.0) * 0.5)

    def test_second_point_adds_volume(self):
        one = hypervolume([_evaluation(0.5, 2.0)], reference_price=10.0)
        two = hypervolume(
            [_evaluation(0.5, 2.0), _evaluation(0.9, 6.0)], reference_price=10.0
        )
        assert two > one

    def test_points_beyond_reference_ignored(self):
        volume = hypervolume([_evaluation(0.5, 20.0)], reference_price=10.0)
        assert volume == 0.0

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            hypervolume([], reference_price=0.0)


class TestRegret:
    def test_chosen_best_no_regret(self):
        evaluations = [_evaluation(0.9, 1.0), _evaluation(0.5, 1.0)]
        assert regret(evaluations[0], evaluations) == 0.0

    def test_regret_is_gap(self):
        evaluations = [_evaluation(0.9, 1.0), _evaluation(0.5, 1.0)]
        assert regret(evaluations[1], evaluations) == pytest.approx(0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            regret(_evaluation(0.5, 1.0), [])
