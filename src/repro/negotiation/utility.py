"""Negotiation utilities.

Each party values offers with a linear additive utility over normalised
issues.  Buyers and sellers differ in *direction* per issue: the buyer
likes low price and high quality; the seller the opposite (high price,
cheap-to-provide promises).  Utilities are in [0, 1]; each party also has
a reservation utility below which no deal beats walking away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.negotiation.offers import IssueSpace, Offer


class AdditiveUtility:
    """Linear additive utility over an issue space.

    Parameters
    ----------
    space:
        The issue space offers live in.
    weights:
        Non-negative importance per issue; normalised internally.
    ascending:
        Per issue, ``True`` when this party's utility grows with the
        issue's value (e.g. price for the seller), ``False`` when it
        shrinks (price for the buyer).
    """

    def __init__(
        self,
        space: IssueSpace,
        weights: Mapping[str, float],
        ascending: Mapping[str, bool],
    ):
        self.space = space
        if set(weights) != set(space.names):
            raise ValueError("weights must cover exactly the issue space")
        if set(ascending) != set(space.names):
            raise ValueError("ascending must cover exactly the issue space")
        if any(w < 0 for w in weights.values()):
            raise ValueError("weights must be non-negative")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.weights: Dict[str, float] = {k: v / total for k, v in weights.items()}
        self.ascending: Dict[str, bool] = dict(ascending)

    # ------------------------------------------------------------------
    def __call__(self, offer: Mapping[str, float]) -> float:
        """Utility of ``offer`` in [0, 1]."""
        offer = self.space.validate(offer)
        utility = 0.0
        for issue in self.space.issues:
            normalised = issue.normalise(offer[issue.name])
            if not self.ascending[issue.name]:
                normalised = 1.0 - normalised
            utility += self.weights[issue.name] * normalised
        return utility

    def ideal(self) -> Offer:
        """The offer this party likes best (its corner of the space)."""
        return {
            issue.name: issue.high if self.ascending[issue.name] else issue.low
            for issue in self.space.issues
        }

    def worst(self) -> Offer:
        """The offer this party likes least (the opponent-friendly corner)."""
        return {
            issue.name: issue.low if self.ascending[issue.name] else issue.high
            for issue in self.space.issues
        }

    def iso_utility_offer(self, target: float, toward: Optional[Offer] = None) -> Offer:
        """An offer with own utility ≈ ``target``, as close to ``toward`` as
        the segment ideal→toward allows.

        Walks the line from this party's ideal towards ``toward`` (default:
        its worst corner, i.e. the opponent's ideal for opposed
        preferences) and bisects for the mixing weight whose utility equals
        ``target``.  Utility is monotone along that segment, so bisection
        converges.
        """
        if not 0.0 <= target <= 1.0:
            raise ValueError("target must be in [0, 1]")
        ideal = self.ideal()
        toward = dict(toward) if toward is not None else self.worst()
        toward = self.space.validate(toward)
        low_u = self(toward)
        high_u = self(ideal)
        if target >= high_u:
            return ideal
        if target <= low_u:
            return toward
        lo, hi = 0.0, 1.0  # blend weight towards `toward`
        for __ in range(50):
            mid = (lo + hi) / 2.0
            candidate = self.space.blend(ideal, toward, mid)
            if self(candidate) > target:
                lo = mid
            else:
                hi = mid
        return self.space.blend(ideal, toward, (lo + hi) / 2.0)


def buyer_utility(
    space: IssueSpace, weights: Optional[Mapping[str, float]] = None
) -> AdditiveUtility:
    """Standard buyer: dislikes price and response time, likes quality."""
    if weights is None:
        weights = {name: 1.0 for name in space.names}
    ascending = {}
    for name in space.names:
        ascending[name] = name not in ("price", "response_time")
    return AdditiveUtility(space, weights, ascending)


def seller_utility(
    space: IssueSpace, weights: Optional[Mapping[str, float]] = None
) -> AdditiveUtility:
    """Standard seller: likes price, dislikes strict promises."""
    if weights is None:
        weights = {name: 1.0 for name in space.names}
    ascending = {}
    for name in space.names:
        ascending[name] = name in ("price", "response_time")
    return AdditiveUtility(space, weights, ascending)


@dataclass
class NegotiationPreferences:
    """One party's full negotiation stance."""

    utility: AdditiveUtility
    reservation: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.reservation <= 1.0:
            raise ValueError("reservation must be in [0, 1]")

    def acceptable(self, offer: Mapping[str, float]) -> bool:
        """Whether the offer clears the reservation utility."""
        return self.utility(offer) >= self.reservation
