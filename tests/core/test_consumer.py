"""Tests for the consumer agent (integration of the full ask() loop)."""

import pytest

from repro import Consumer, QoSRequirement, build_agora
from repro.context import ActivationRule, ConditionalProfile, Context, ProfileOverlay
from repro.personalization import UserProfile
from repro.workloads import QueryWorkloadGenerator


@pytest.fixture(scope="module")
def agora():
    return build_agora(seed=21, n_sources=6, items_per_source=30,
                       calibration_pairs=300)


@pytest.fixture(scope="module")
def workload(agora):
    return QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary,
        agora.sim.rng.spawn("test-workload"), corpus=agora.corpus,
    )


def _profile(agora, user_id="iris", topic="folk-jewelry"):
    return UserProfile(
        user_id=user_id,
        interests=agora.topic_space.basis(topic, weight=0.9),
    )


class TestAskTrading:
    def test_full_loop_returns_results(self, agora, workload):
        consumer = Consumer(agora, _profile(agora), planner="trading")
        query = workload.topic_query("folk-jewelry", k=8,
                                     requirement=QoSRequirement(min_completeness=0.1))
        result = consumer.ask(query)
        assert len(result.ranked_items) > 0
        assert result.response_time > 0
        assert result.total_price > 0
        assert len(result.contracts) >= 1
        assert len(result.settlements) == len(result.contracts)

    def test_contracts_settled_into_monitor(self, agora, workload):
        before = agora.monitor.total_contracts
        consumer = Consumer(agora, _profile(agora, "buyer2"), planner="trading")
        query = workload.topic_query("dance-forms", k=5)
        result = consumer.ask(query)
        assert agora.monitor.total_contracts == before + len(result.contracts)

    def test_reputation_learned_from_outcomes(self, agora, workload):
        consumer = Consumer(agora, _profile(agora, "buyer3"), planner="trading")
        for __ in range(3):
            consumer.ask(workload.topic_query("folk-jewelry", k=5))
        assert len(consumer.reputation.known_subjects()) > 0

    def test_history_recorded(self, agora, workload):
        consumer = Consumer(agora, _profile(agora, "buyer4"))
        consumer.ask(workload.topic_query("tourism", k=5))
        consumer.ask(workload.topic_query("tourism", k=5))
        assert len(consumer.history) == 2

    def test_utility_bounded(self, agora, workload):
        consumer = Consumer(agora, _profile(agora, "buyer5"))
        result = consumer.ask(workload.topic_query("folk-jewelry", k=5))
        assert 0.0 <= result.utility <= 1.0


class TestAskSearchPlanners:
    @pytest.mark.parametrize("planner", ["greedy", "local", "exhaustive"])
    def test_search_planners_work(self, agora, workload, planner):
        consumer = Consumer(agora, _profile(agora, f"user-{planner}"), planner=planner)
        query = workload.topic_query("folk-jewelry", k=5)
        result = consumer.ask(query)
        assert len(result.ranked_items) > 0
        assert result.contracts == []  # search planners don't sign SLAs

    def test_impossible_requirement_unserved(self, agora, workload):
        consumer = Consumer(agora, _profile(agora, "strict"), planner="trading")
        query = workload.topic_query(
            "folk-jewelry", k=5,
            requirement=QoSRequirement(min_completeness=0.999, min_correctness=0.999,
                                       max_response_time=1e-9, min_trust=0.999),
        )
        # With risk-aware bidders most jobs go unserved; those that are
        # served will mostly breach and pay compensation.
        result = consumer.ask(query)
        assert result.unserved_jobs or result.breached_contracts > 0


class TestPersonalizationIntegration:
    def test_personalized_ranking_prefers_interests(self, agora, workload):
        jewelry_fan = Consumer(
            agora, _profile(agora, "fan", "folk-jewelry"),
            personalization_weight=0.9,
        )
        query = workload.topic_query("regional-history", k=10)
        personalized = jewelry_fan.ask(query, personalize=True)
        generic = jewelry_fan.ask(query, personalize=False)
        assert len(personalized.ranked_items) == len(generic.ranked_items)

    def test_conditional_profile_activation(self, agora, workload):
        base = _profile(agora, "ctx-user", "folk-jewelry")
        conditional = ConditionalProfile(base)
        leisure_shift = agora.topic_space.basis("tourism", weight=1.0)
        conditional.add_overlay(
            ActivationRule({"task": "leisure"}),
            ProfileOverlay(interest_shift=2.0 * leisure_shift),
        )
        consumer = Consumer(agora, conditional)
        work_profile = consumer.active_profile(Context(task="deep-research"))
        leisure_profile = consumer.active_profile(Context(task="leisure"))
        tourism_index = agora.topic_space.names.index("tourism")
        assert leisure_profile.interests[tourism_index] > work_profile.interests[tourism_index]

    def test_socialized_trust_view_steers_planning(self, agora, workload):
        from repro.social import AffineNeighbour, SocialTrustView
        from repro.trust import ReputationSystem

        profile = _profile(agora, "social-shopper", "folk-jewelry")
        # A close friend had terrible experiences with every museum source.
        friend_reputation = ReputationSystem()
        museum_sources = [
            s for s in agora.sources if s.startswith("museum")
        ]
        for source_id in museum_sources:
            for __ in range(10):
                friend_reputation.observe(source_id, 0.0)

        friend = AffineNeighbour(
            "friend", 0.9,
            UserProfile(user_id="friend",
                        interests=agora.topic_space.basis("folk-jewelry", 0.9)),
        )
        consumer = Consumer(
            agora, profile, planner="greedy",
            trust_view=SocialTrustView(
                ReputationSystem(), {"friend": friend_reputation}, [friend],
            ),
        )
        for source_id in museum_sources:
            assert consumer.trust_in(source_id) < 0.3
        result = consumer.ask(workload.topic_query("folk-jewelry", k=5))
        # The socialized trust view also annotates delivered QoS.
        assert result.delivered.trust < 0.7

    def test_subscribe_and_feed_inbox(self, agora, workload):
        consumer = Consumer(agora, _profile(agora, "feedfan", "fashion-trends"))
        query = workload.topic_query("fashion-trends", k=5, issuer_id="feedfan")
        standing_id = consumer.subscribe(query, threshold=0.2)
        assert standing_id >= 0
        agora.start_feeds()
        agora.run(until=agora.now + 40.0)
        hits = consumer.feed_inbox()
        # Magazine sources publish fashion items frequently at rate 0.3.
        assert isinstance(hits, list)
