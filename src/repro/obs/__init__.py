"""Observability substrate: causal spans, metrics, manifests, exporters.

``repro.obs`` sits at the very bottom of the layer DAG (below even the
simulation kernel) so every layer — kernel, network, QoS, resilience,
executor, experiments — can record into one shared vocabulary:

- :class:`SpanTracer` / :class:`Span` — causal span trees over the
  virtual clock, propagated through the kernel's event queue.
- :class:`TraceContext` (``obs.context``) — the serializable capsule
  that continues a coordinator span inside a worker process, with
  per-shard span-id namespaces so merged traces are collision-free.
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms with deterministic snapshots.
- :class:`ShardSnapshot` / :func:`merge_snapshots` (``obs.aggregate``) —
  the order-free deterministic merge of N shards' telemetry.
- :class:`SimProfiler` (``obs.profile``) — sim-time profiler over
  kernel event dispatch: folded-stack flamegraph output + hotspots.
- :class:`FlightRecorder` (``obs.flight``) — streaming byte-stable
  per-event log with rolling digests and per-stream RNG draw counters.
- :func:`align_runs` / :func:`find_divergence` (``obs.divergence``) —
  the first-divergence debugger: binary-search checkpoint digests to
  name the exact event where two recordings fork.
- :class:`SLOSpec` / :class:`SLOMonitor` (``obs.slo``) — declarative
  SLOs evaluated as rolling burn-rate windows, observe-only.
- :class:`RunManifest` / :func:`diff_manifests` — canonical run
  provenance (now with per-shard sections); two runs are attested
  identical iff their diff is clean.
- JSONL exporters, a markdown dashboard renderer, and the
  ``python -m repro.obs`` CLI (``summary [--by-shard]`` / ``spans`` /
  ``diff`` / ``flame`` / ``slo`` / ``divergence``).
"""

from repro.obs.aggregate import (
    MergedRun,
    ShardSnapshot,
    export_merged_run,
    load_shard_snapshot,
    merge_snapshots,
    merged_manifest,
    snapshot_shard,
    write_merged_spans_jsonl,
    write_shard_snapshot,
)
from repro.obs.context import (
    SHARD_SPAN_STRIDE,
    TraceContext,
    derive_trace_id,
    seq_of,
    shard_of,
)
from repro.obs.dashboard import append_dashboard, render_dashboard, span_cost_rows
from repro.obs.divergence import (
    DivergenceReport,
    FlightRecording,
    RunAlignment,
    StreamDelta,
    align_runs,
    discover_recordings,
    find_divergence,
    load_recording,
    render_alignment,
    render_report,
)
from repro.obs.export import (
    export_run,
    load_manifest,
    load_metrics_jsonl,
    load_spans_jsonl,
    write_manifest,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.flight import FlightRecorder, callback_identity
from repro.obs.manifest import (
    Drift,
    ManifestDiff,
    RunManifest,
    canonical_json,
    config_digest,
    diff_manifests,
    flatten_manifest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    HotSpot,
    SimProfiler,
    parse_folded,
    render_hotspots,
    write_profile,
)
from repro.obs.slo import (
    SLOMonitor,
    SLOReport,
    SLOSpec,
    SLOStatus,
    load_slo_report,
    write_slo_report,
)
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanTracer,
    ancestors,
    child_map,
    descendants_of,
    span_index,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "NULL_TRACER",
    "SHARD_SPAN_STRIDE",
    "Counter",
    "DivergenceReport",
    "Drift",
    "FlightRecorder",
    "FlightRecording",
    "Gauge",
    "Histogram",
    "HotSpot",
    "ManifestDiff",
    "MergedRun",
    "MetricsRegistry",
    "RunAlignment",
    "RunManifest",
    "SLOMonitor",
    "SLOReport",
    "SLOSpec",
    "SLOStatus",
    "ShardSnapshot",
    "SimProfiler",
    "Span",
    "SpanTracer",
    "StreamDelta",
    "TraceContext",
    "align_runs",
    "ancestors",
    "append_dashboard",
    "callback_identity",
    "canonical_json",
    "child_map",
    "config_digest",
    "derive_trace_id",
    "descendants_of",
    "diff_manifests",
    "discover_recordings",
    "export_merged_run",
    "export_run",
    "find_divergence",
    "flatten_manifest",
    "load_manifest",
    "load_metrics_jsonl",
    "load_recording",
    "load_shard_snapshot",
    "load_slo_report",
    "load_spans_jsonl",
    "merge_snapshots",
    "merged_manifest",
    "parse_folded",
    "render_alignment",
    "render_dashboard",
    "render_hotspots",
    "render_report",
    "seq_of",
    "shard_of",
    "snapshot_shard",
    "span_cost_rows",
    "span_index",
    "write_manifest",
    "write_merged_spans_jsonl",
    "write_metrics_jsonl",
    "write_profile",
    "write_shard_snapshot",
    "write_slo_report",
    "write_spans_jsonl",
]
