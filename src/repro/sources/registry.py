"""Source registry: the agora's (imperfect) yellow pages.

Consumers discover sources through advertised descriptors, not ground
truth.  Descriptors are produced by the sources themselves (with their
optimism bias) and may be stale — the §2 "identification of appropriate
resources" uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.qos.vector import QoSVector
from repro.sources.source import InformationSource


@dataclass
class SourceDescriptor:
    """The advertised profile of one source, as known to the registry."""

    source_id: str
    node_id: str
    domains: Tuple[str, ...]
    advertised: Dict[str, QoSVector] = field(default_factory=dict)  # per domain
    advertised_at: float = 0.0
    trust_class: str = "ordinary"

    def covers(self, domain: str) -> bool:
        """Whether the descriptor advertises ``domain``."""
        return domain in self.domains


class SourceRegistry:
    """Directory of advertised source descriptors.

    The registry stores whatever sources last advertised; :meth:`refresh`
    re-advertises (snapshotting current claims).  Lookups never consult
    the actual source objects, preserving the advertised/actual gap.
    """

    def __init__(self) -> None:
        self._descriptors: Dict[str, SourceDescriptor] = {}
        self._sources: Dict[str, InformationSource] = {}
        # Inverted index: domain -> ids of sources advertising it, so
        # per-domain candidate lookup avoids scanning every descriptor.
        self._by_domain: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def register(self, source: InformationSource, now: float = 0.0) -> SourceDescriptor:
        """Add ``source`` and record its advertised descriptor."""
        descriptor = SourceDescriptor(
            source_id=source.source_id,
            node_id=source.node_id,
            domains=source.domains,
            advertised={
                domain: source.advertised_quality(now, domain)
                for domain in source.domains
            },
            advertised_at=now,
            trust_class=source.quality.trust_class,
        )
        previous = self._descriptors.get(source.source_id)
        if previous is not None:
            self._unindex(previous)
        self._descriptors[source.source_id] = descriptor
        self._sources[source.source_id] = source
        for domain in descriptor.domains:
            self._by_domain.setdefault(domain, set()).add(descriptor.source_id)
        return descriptor

    def _unindex(self, descriptor: SourceDescriptor) -> None:
        for domain in descriptor.domains:
            ids = self._by_domain.get(domain)
            if ids is not None:
                ids.discard(descriptor.source_id)
                if not ids:
                    del self._by_domain[domain]

    def refresh(self, source_id: str, now: float) -> SourceDescriptor:
        """Re-advertise one source (updates the stored snapshot)."""
        source = self.source(source_id)
        return self.register(source, now)

    def deregister(self, source_id: str) -> None:
        """Remove a source and its descriptor (idempotent)."""
        descriptor = self._descriptors.pop(source_id, None)
        if descriptor is not None:
            self._unindex(descriptor)
        self._sources.pop(source_id, None)

    # ------------------------------------------------------------------
    def descriptor(self, source_id: str) -> SourceDescriptor:
        """The stored advertisement of ``source_id``."""
        try:
            return self._descriptors[source_id]
        except KeyError:
            raise KeyError(f"unknown source {source_id!r}") from None

    def source(self, source_id: str) -> InformationSource:
        """The live source object (used to actually send it work)."""
        try:
            return self._sources[source_id]
        except KeyError:
            raise KeyError(f"unknown source {source_id!r}") from None

    def candidates_for(self, domain: str) -> List[SourceDescriptor]:
        """Descriptors of sources advertising coverage of ``domain``."""
        ids = self._by_domain.get(domain, set())
        return [self._descriptors[source_id] for source_id in sorted(ids)]

    def all_descriptors(self) -> List[SourceDescriptor]:
        """Every stored descriptor, sorted by source id."""
        return [self._descriptors[k] for k in sorted(self._descriptors)]

    def all_sources(self) -> List[InformationSource]:
        """Every live source object, sorted by id."""
        return [self._sources[k] for k in sorted(self._sources)]

    def domains(self) -> List[str]:
        """All domains advertised by at least one source."""
        return sorted(self._by_domain)

    def __len__(self) -> int:
        return len(self._descriptors)

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._descriptors
