"""Tests for personalized ranking."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.personalization import PersonalizedRanker, UserProfile, generic_ranking
from repro.uncertainty import UncertainMatch, UncertainResultSet


def _item(latent, item_id):
    return InformationItem(item_id=item_id, domain="d", latent=np.asarray(latent, float))


def _match(latent, item_id, probability):
    return UncertainMatch(
        item=_item(latent, item_id), score=probability, probability=probability,
    )


@pytest.fixture
def results():
    return UncertainResultSet([
        _match([1.0, 0.0], "on-topic-lowprob", 0.5),
        _match([0.0, 1.0], "off-topic-highprob", 0.7),
    ])


def _ranker(alpha):
    profile = UserProfile(user_id="iris", interests=np.array([1.0, 0.0]))
    return PersonalizedRanker(profile, concept_fn=lambda item: item.latent,
                              personalization_weight=alpha)


class TestRanker:
    def test_alpha_zero_matches_generic(self, results):
        ranker = _ranker(alpha=0.0)
        assert ranker.rerank_items(results) == generic_ranking(results)

    def test_high_alpha_prefers_interests(self, results):
        ranker = _ranker(alpha=0.9)
        top = ranker.rerank_items(results)[0]
        assert top.item_id == "on-topic-lowprob"

    def test_generic_prefers_probability(self, results):
        assert generic_ranking(results)[0].item_id == "off-topic-highprob"

    def test_item_score_blend(self, results):
        ranker = _ranker(alpha=0.5)
        match = results.matches[1]  # on-topic-lowprob (prob 0.5, interest 1.0)
        assert match.item.item_id == "on-topic-lowprob"
        assert ranker.item_score(match) == pytest.approx(0.75)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            _ranker(alpha=1.5)

    def test_deterministic_tiebreak(self):
        results = UncertainResultSet([
            _match([1.0, 0.0], "b", 0.5),
            _match([1.0, 0.0], "a", 0.5),
        ])
        ranked = _ranker(alpha=0.5).rerank_items(results)
        assert [i.item_id for i in ranked] == ["a", "b"]
