"""The effect lattice and summary records of the interprocedural pass.

Every function in the analysed project gets a *summary*: a set of
:class:`Effect` atoms, each carrying the reason it arose, the qualname
where it originated, and (after propagation) the call chain that makes it
reachable.  The summary collapses to one of four verdicts ordered as a
lattice::

    PURE  ⊑  READS_SHARED  ⊑  MUTATES_SHARED  ⊑  UNKNOWN

``UNKNOWN`` is the poison element: an unresolvable dynamic call means the
analysis cannot bound the callee's behaviour, so everything reaching it
is conservatively uncertifiable.

Atoms additionally carry a *confinement* dimension used by the trusted
``# agora: worker-local`` declaration (see :mod:`.fixpoint`): mutations
confined to ``self``-reachable state, memo decorators, and keyed RNG
draws can be attested as per-worker-replicable; true module-global
writes, I/O, and unresolved calls cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

# -- verdicts ----------------------------------------------------------------

PURE = "PURE"
READS_SHARED = "READS_SHARED"
MUTATES_SHARED = "MUTATES_SHARED"
UNKNOWN = "UNKNOWN"

_VERDICT_ORDER: Dict[str, int] = {
    PURE: 0,
    READS_SHARED: 1,
    MUTATES_SHARED: 2,
    UNKNOWN: 3,
}


def join_verdicts(a: str, b: str) -> str:
    """Least upper bound of two verdicts."""
    return a if _VERDICT_ORDER[a] >= _VERDICT_ORDER[b] else b


# -- atom kinds --------------------------------------------------------------

#: write to a module global, class attribute, or object of unknown origin
WRITE_GLOBAL = "write_global"
#: write to state reachable from ``self`` (instance attrs, their contents)
WRITE_SELF = "write_self"
#: write to state reachable from a (non-self) parameter; mapped to the
#: actual argument's provenance at every call site
WRITE_ARG = "write_arg"
#: memoisation hanging off the function object (``functools.lru_cache``)
MEMO = "memo"
#: RNG draw from a generator that is not a threaded parameter
RNG_DRAW = "rng_draw"
#: host wall-clock read (``time.time`` and friends)
WALL_CLOCK = "wall_clock"
#: file/network/process I/O
IO = "io"
#: read of a module-level mutable binding or other global object
READ_GLOBAL = "read_global"
#: read of instance state through ``self``
READ_SELF = "read_self"
#: read of the simulation virtual clock (``*.now``)
READ_CLOCK = "read_clock"
#: call that the conservative resolver could not bound
UNRESOLVED_CALL = "unresolved_call"
#: call of a parameter (higher-order); resolved at call sites, and poison
#: if the actual argument cannot be identified
CALLS_PARAM = "calls_param"

#: atom kind -> verdict contribution
KIND_SEVERITY: Dict[str, str] = {
    WRITE_GLOBAL: MUTATES_SHARED,
    WRITE_SELF: MUTATES_SHARED,
    WRITE_ARG: MUTATES_SHARED,
    MEMO: MUTATES_SHARED,
    RNG_DRAW: MUTATES_SHARED,
    WALL_CLOCK: MUTATES_SHARED,
    IO: MUTATES_SHARED,
    READ_GLOBAL: READS_SHARED,
    READ_SELF: READS_SHARED,
    READ_CLOCK: READS_SHARED,
    UNRESOLVED_CALL: UNKNOWN,
    CALLS_PARAM: UNKNOWN,
}

#: atom kinds a worker-local declaration comment may attest away:
#: self-confined memo writes and keyed RNG re-derivation are replicable
#: per worker; global writes, I/O and unresolved calls are not.
TRUSTABLE_KINDS = frozenset({WRITE_SELF, MEMO, RNG_DRAW})


@dataclass(frozen=True, order=True)
class Effect:
    """One effect atom: what happened, where, and why.

    ``detail`` disambiguates atoms of the same kind — the parameter name
    for :data:`WRITE_ARG` / :data:`CALLS_PARAM`, the global name for
    global reads/writes.
    """

    kind: str
    reason: str
    origin: str
    detail: str = ""

    @property
    def severity(self) -> str:
        """The verdict this atom forces on its own."""
        return KIND_SEVERITY[self.kind]


#: summary: atom -> witness chain (callee qualnames from the summarised
#: function down to — and including — the atom's origin; empty for local
#: atoms).
Summary = Dict[Effect, Tuple[str, ...]]


def better_chain(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
    """The canonical (shortest, then lexicographically least) chain."""
    if len(a) != len(b):
        return a if len(a) < len(b) else b
    return a if a <= b else b


def merge_effect(
    summary: Summary, effect: Effect, chain: Tuple[str, ...]
) -> bool:
    """Fold one atom into ``summary``; returns True if anything changed."""
    existing = summary.get(effect)
    if existing is None:
        summary[effect] = chain
        return True
    best = better_chain(existing, chain)
    if best != existing:
        summary[effect] = best
        return True
    return False


def summary_verdict(summary: Summary) -> str:
    """The joined verdict of every atom in ``summary``."""
    verdict = PURE
    for effect in summary:
        verdict = join_verdicts(verdict, effect.severity)
    return verdict


def worst_effects(summary: Summary) -> List[Tuple[Effect, Tuple[str, ...]]]:
    """Atoms at the summary's verdict level, in deterministic order."""
    verdict = summary_verdict(summary)
    found = [
        (effect, chain)
        for effect, chain in summary.items()
        if effect.severity == verdict
    ]
    return sorted(found, key=lambda pair: (pair[0], pair[1]))


# -- provenance --------------------------------------------------------------

#: freshly constructed inside this function; mutating it is invisible
PROV_FRESH = "fresh"
#: the receiver instance (``self``/``cls``) or state reached through it
PROV_SELF = "self"
#: a (non-self) parameter or state reached through it
PROV_PARAM = "param"
#: a module-level binding or other global object
PROV_GLOBAL = "global"
#: could not be determined
PROV_UNKNOWN = "unknown"


@dataclass(frozen=True)
class Prov:
    """Where a value comes from, for write/read mapping."""

    kind: str
    name: str = ""


FRESH = Prov(PROV_FRESH)
SELF = Prov(PROV_SELF)
GLOBAL = Prov(PROV_GLOBAL)
UNKNOWN_PROV = Prov(PROV_UNKNOWN)


def join_prov(a: Prov, b: Prov) -> Prov:
    """Join two provenances (fresh is bottom, unknown is top)."""
    if a == b:
        return a
    if a.kind == PROV_FRESH:
        return b
    if b.kind == PROV_FRESH:
        return a
    return UNKNOWN_PROV


# -- call sites --------------------------------------------------------------


@dataclass(frozen=True)
class Actual:
    """One resolved actual argument at a call site."""

    prov: Prov
    #: the argument expression is an inline lambda / local function whose
    #: body effects are already attributed to the caller
    is_inline_callable: bool = False
    #: qualname of the project function passed by reference, if any
    func_ref: str = ""


@dataclass(frozen=True)
class CallSite:
    """One call edge from a function to resolved project targets."""

    lineno: int
    #: resolved project callee qualnames (joined conservatively)
    targets: Tuple[str, ...]
    #: provenance of the receiver (for WRITE_SELF/READ_SELF mapping);
    #: FRESH for constructor calls, UNKNOWN_PROV for plain functions
    receiver: Prov
    #: actual arguments by callee parameter name (self excluded)
    actuals: Tuple[Tuple[str, Actual], ...] = ()

    def actual_for(self, param: str) -> "Actual":
        """The actual bound to ``param``, or an unknown placeholder."""
        for name, actual in self.actuals:
            if name == param:
                return actual
        return Actual(prov=UNKNOWN_PROV)


@dataclass
class LocalResult:
    """Everything the intraprocedural pass extracts from one function."""

    atoms: List[Effect] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)


def map_write(prov: Prov, reason: str, origin: str) -> "Effect | None":
    """Translate a state write through ``prov`` into an atom (or drop)."""
    if prov.kind == PROV_FRESH:
        return None
    if prov.kind == PROV_SELF:
        return Effect(WRITE_SELF, reason, origin)
    if prov.kind == PROV_PARAM:
        return Effect(WRITE_ARG, reason, origin, detail=prov.name)
    return Effect(WRITE_GLOBAL, reason, origin, detail=prov.name)


def map_read(prov: Prov, reason: str, origin: str) -> "Effect | None":
    """Translate a state read through ``prov`` into an atom (or drop).

    Reads of parameters and fresh objects are input reads — pure from the
    caller's perspective; the certification story excludes concurrent
    mutation separately (no certified mutators).
    """
    if prov.kind in (PROV_FRESH, PROV_PARAM):
        return None
    if prov.kind == PROV_SELF:
        return Effect(READ_SELF, reason, origin)
    return Effect(READ_GLOBAL, reason, origin, detail=prov.name)


def iter_sorted(summary: Summary) -> Iterable[Tuple[Effect, Tuple[str, ...]]]:
    """Deterministic iteration over a summary."""
    return sorted(summary.items(), key=lambda pair: (pair[0], pair[1]))
