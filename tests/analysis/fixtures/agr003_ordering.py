# module: repro.core.fixture_ordering
"""Fixture: unordered iteration feeding effects that AGR003 must flag."""


def schedule_all(sim, handlers, rng):
    for node_id in {"a", "b", "c"}:  # expect: AGR003
        sim.schedule(1.0, node_id)
    for name, handler in handlers.items():  # expect: AGR003
        rng.choice([name, handler])
    for node_id in sorted({"a", "b", "c"}):  # fine: pinned order
        sim.schedule(1.0, node_id)
    total = 0
    for value in handlers.values():  # fine: aggregation has no effect order
        total += value
    return total
