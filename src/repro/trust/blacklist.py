"""Blacklists.

Sources in the paper may decline requests "because of ... black-listing of
Iris's IP address"; symmetrically, consumers stop dealing with providers
whose trust collapses.  A :class:`Blacklist` is a per-owner set of banned
counterparties with optional expiry.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Blacklist:
    """Banned counterparties for one owner (a source or a consumer)."""

    def __init__(self, owner_id: str):
        self.owner_id = owner_id
        self._entries: Dict[str, Optional[float]] = {}

    def ban(self, subject_id: str, until: Optional[float] = None) -> None:
        """Ban ``subject_id``; ``until=None`` is a permanent ban."""
        self._entries[subject_id] = until

    def lift(self, subject_id: str) -> None:
        """Remove a ban (idempotent)."""
        self._entries.pop(subject_id, None)

    def is_banned(self, subject_id: str, now: float = 0.0) -> bool:
        """True when ``subject_id`` is currently banned (expired bans drop)."""
        if subject_id not in self._entries:
            return False
        until = self._entries[subject_id]
        if until is not None and now >= until:
            del self._entries[subject_id]
            return False
        return True

    def banned(self, now: float = 0.0) -> List[str]:
        """Sorted currently banned subjects (expired bans drop)."""
        return sorted(s for s in list(self._entries) if self.is_banned(s, now))

    def __len__(self) -> int:
        return len(self._entries)


class BlacklistRegistry:
    """All blacklists in an agora, keyed by owner."""

    def __init__(self) -> None:
        self._lists: Dict[str, Blacklist] = {}

    def for_owner(self, owner_id: str) -> Blacklist:
        """The owner's blacklist (created on first use)."""
        if owner_id not in self._lists:
            self._lists[owner_id] = Blacklist(owner_id)
        return self._lists[owner_id]

    def blocks(self, owner_id: str, subject_id: str, now: float = 0.0) -> bool:
        """Whether ``owner_id`` currently refuses to deal with ``subject_id``."""
        if owner_id not in self._lists:
            return False
        return self._lists[owner_id].is_banned(subject_id, now)
