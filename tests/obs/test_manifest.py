"""Tests for run manifests, canonical JSON, and manifest diffing."""

from dataclasses import dataclass

from repro.obs import (
    RunManifest,
    canonical_json,
    config_digest,
    diff_manifests,
    flatten_manifest,
)


def make_manifest(**overrides):
    base = dict(
        seed=11,
        config_digest="abc",
        event_count=120,
        span_count=40,
        metrics={
            "counters": {"sim.events": 120.0, "qos.breaches": 2.0},
            "gauges": {},
            "histograms": {"lat": {"count": 3.0, "p99": 0.5}},
        },
        labels={"scenario": "t"},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestCanonicalJson:
    def test_sorted_keys_minimal_separators(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_dataclass_and_set_fallbacks(self):
        @dataclass
        class Config:
            seed: int
            names: tuple

        text = canonical_json({"cfg": Config(3, ("b", "a")), "s": {2, 1}})
        assert text == '{"cfg":{"names":["b","a"],"seed":3},"s":[1,2]}'

    def test_config_digest_is_stable_and_order_free(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert len(config_digest({"a": 1})) == 64


class TestRunManifest:
    def test_round_trip_through_json(self):
        manifest = make_manifest()
        assert RunManifest.from_json(manifest.to_json()) == manifest

    def test_digest_ignores_labels(self):
        relabelled = make_manifest(labels={"scenario": "other", "extra": "x"})
        assert make_manifest().digest() == relabelled.digest()

    def test_digest_sees_metric_changes(self):
        drifted = make_manifest(
            metrics={"counters": {"sim.events": 121.0}, "gauges": {},
                     "histograms": {}},
        )
        assert make_manifest().digest() != drifted.digest()

    def test_flatten_produces_dotted_scalars(self):
        flat = flatten_manifest(make_manifest())
        assert flat["seed"] == 11
        assert flat["metrics.counters.sim.events"] == 120.0
        assert flat["metrics.histograms.lat.p99"] == 0.5
        assert not any(key.startswith("labels") for key in flat)


class TestDiff:
    def test_identical_manifests_are_clean(self):
        report = diff_manifests(make_manifest(), make_manifest())
        assert report.clean
        assert report.drift_count == 0
        assert "zero drift" in report.render()

    def test_labels_do_not_drift(self):
        report = diff_manifests(
            make_manifest(), make_manifest(labels={"scenario": "renamed"})
        )
        assert report.clean

    def test_changed_counter_is_reported(self):
        right = make_manifest(
            metrics={
                "counters": {"sim.events": 125.0, "qos.breaches": 2.0},
                "gauges": {},
                "histograms": {"lat": {"count": 3.0, "p99": 0.5}},
            },
        )
        report = diff_manifests(make_manifest(), right)
        assert not report.clean
        keys = [drift.key for drift in report.drifts]
        assert keys == ["metrics.counters.sim.events"]
        assert report.drifts[0].left == 120.0
        assert report.drifts[0].right == 125.0
        assert "sim.events" in report.render()

    def test_one_sided_metric_counts_as_drift(self):
        right = make_manifest(
            metrics={
                "counters": {"sim.events": 120.0, "qos.breaches": 2.0,
                             "new.counter": 1.0},
                "gauges": {},
                "histograms": {"lat": {"count": 3.0, "p99": 0.5}},
            },
        )
        report = diff_manifests(make_manifest(), right)
        drift = {d.key: (d.left, d.right) for d in report.drifts}
        assert drift == {"metrics.counters.new.counter": (None, 1.0)}

    def test_seed_drift_detected(self):
        report = diff_manifests(make_manifest(), make_manifest(seed=12))
        assert [d.key for d in report.drifts] == ["seed"]


def shard_section(sim_time=9.0, event_count=40, span_count=10, dropped=0):
    return {
        "sim_time": sim_time,
        "event_count": event_count,
        "span_count": span_count,
        "dropped_spans": dropped,
    }


class TestShardDiff:
    """Per-shard sections must drift distinctly: added / removed / drifted."""

    def make_sharded(self, **shards):
        return make_manifest(shards=dict(shards))

    def test_identical_shards_are_clean(self):
        left = self.make_sharded(**{"0": shard_section(), "1": shard_section()})
        right = self.make_sharded(**{"0": shard_section(), "1": shard_section()})
        assert diff_manifests(left, right).clean

    def test_shard_added_reports_right_only_entries(self):
        left = self.make_sharded(**{"0": shard_section()})
        right = self.make_sharded(**{"0": shard_section(), "1": shard_section()})
        report = diff_manifests(left, right)
        drift = {d.key: (d.left, d.right) for d in report.drifts}
        assert all(key.startswith("shards.1.") for key in drift)
        assert drift["shards.1.sim_time"] == (None, 9.0)
        assert drift["shards.1.event_count"] == (None, 40)

    def test_shard_removed_reports_left_only_entries(self):
        left = self.make_sharded(**{"0": shard_section(), "2": shard_section()})
        right = self.make_sharded(**{"0": shard_section()})
        report = diff_manifests(left, right)
        drift = {d.key: (d.left, d.right) for d in report.drifts}
        assert all(key.startswith("shards.2.") for key in drift)
        assert drift["shards.2.span_count"] == (10, None)

    def test_shard_drifted_reports_only_the_changed_field(self):
        left = self.make_sharded(**{"0": shard_section(event_count=40)})
        right = self.make_sharded(**{"0": shard_section(event_count=41)})
        report = diff_manifests(left, right)
        assert [d.key for d in report.drifts] == ["shards.0.event_count"]
        assert report.drifts[0].left == 40
        assert report.drifts[0].right == 41
        assert "shards.0.event_count" in report.render()

    def test_added_removed_and_drifted_are_distinct_entries(self):
        left = self.make_sharded(**{"0": shard_section(sim_time=5.0),
                                    "1": shard_section()})
        right = self.make_sharded(**{"0": shard_section(sim_time=6.0),
                                     "2": shard_section()})
        report = diff_manifests(left, right)
        keys = {d.key for d in report.drifts}
        assert "shards.0.sim_time" in keys  # drifted
        assert "shards.1.sim_time" in keys  # removed
        assert "shards.2.sim_time" in keys  # added

    def test_shards_participate_in_digest(self):
        plain = make_manifest()
        sharded = self.make_sharded(**{"0": shard_section()})
        assert plain.digest() != sharded.digest()
        assert RunManifest.from_json(sharded.to_json()) == sharded


class TestFlightSection:
    def flight_section(self, digest="f" * 64, events=10):
        return {"digest": digest, "events": events, "shard_id": 0}

    def test_flight_participates_in_digest(self):
        plain = make_manifest()
        with_flight = make_manifest(flight=self.flight_section())
        assert plain.digest() != with_flight.digest()

    def test_flight_omitted_from_payload_when_empty(self):
        assert "flight" not in make_manifest().to_dict()
        assert "flight" in make_manifest(flight=self.flight_section()).to_dict()

    def test_round_trip_preserves_flight(self):
        manifest = make_manifest(flight=self.flight_section())
        assert RunManifest.from_json(manifest.to_json()) == manifest

    def test_flight_digest_drift_is_reported(self):
        left = make_manifest(flight=self.flight_section(digest="a" * 64))
        right = make_manifest(flight=self.flight_section(digest="b" * 64))
        report = diff_manifests(left, right)
        assert not report.clean
        assert any(d.key.startswith("flight.") for d in report.drifts)

    def test_recorder_off_manifests_stay_identical(self):
        # A run with the recorder off must produce byte-identical
        # manifests to a pre-flight-recorder build.
        left, right = make_manifest(), make_manifest(flight={})
        assert left.to_json() == right.to_json()
        assert diff_manifests(left, right).clean
