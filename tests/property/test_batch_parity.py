"""Property tests: batch scoring is *exactly* the pairwise path.

The vectorized kernels promise bitwise float parity, not approximate
agreement: ``score_many(q, cs)[i] == score(q, cs[i])`` down to the last
bit, and ``rank`` returns the identical list (same order, same floats,
same tie-breaks) as the one-pair-at-a-time reference ``rank_pairwise``.
Likewise the sorted ``CollectionIndex`` must answer visibility questions
exactly like the legacy linear scan it replaced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    InformationItem,
    TopicSpace,
    Vocabulary,
)
from repro.sim import RngStreams
from repro.sources import CollectionIndex, InformationSource, SourceQuality
from repro.uncertainty import build_matching_engine

POOL_SIZE = 60


@pytest.fixture(scope="module")
def parity_world():
    """A fixed mixed-type item pool plus a fitted engine."""
    streams = RngStreams(seed=505).spawn("parity")
    space = TopicSpace(8)
    vocabulary = Vocabulary(
        space, streams.spawn("v"), vocabulary_size=400, terms_per_topic=50
    )
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=16
    )
    extractor = FeatureExtractor(16, streams.spawn("f"))

    def spec(name, mix):
        return DomainSpec(
            name=name, topic_prior={"folk-jewelry": 0.6, "dance-forms": 0.4},
            type_mix=mix, concentration=0.4,
        )

    sample = corpus.generate(
        spec("sample", {"text": 0.0, "media": 1.0, "compound": 0.0}), 40
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    pool = corpus.generate(
        spec("pool", {"text": 0.4, "media": 0.4, "compound": 0.2}), POOL_SIZE
    )
    queries = corpus.generate(
        spec("query", {"text": 0.4, "media": 0.4, "compound": 0.2}), 10
    )
    return engine, pool, queries


class TestBatchPairwiseParity:
    @settings(max_examples=25, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            min_size=0, max_size=40,
        ),
        query_index=st.integers(min_value=0, max_value=9),
    )
    def test_rank_matches_pairwise_exactly(
        self, parity_world, indices, query_index
    ):
        engine, pool, queries = parity_world
        candidates = [pool[i] for i in indices]
        query = queries[query_index]
        batch = engine.rank(query, candidates)
        pairwise = engine.rank_pairwise(query, candidates)
        assert len(batch) == len(pairwise) == len(candidates)
        for (item_b, score_b), (item_p, score_p) in zip(batch, pairwise):
            assert item_b.item_id == item_p.item_id
            assert score_b == score_p  # bitwise, not approx

    @settings(max_examples=25, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=POOL_SIZE - 1),
            min_size=0, max_size=40,
        ),
        query_index=st.integers(min_value=0, max_value=9),
    )
    def test_score_many_matches_score_elementwise(
        self, parity_world, indices, query_index
    ):
        engine, pool, queries = parity_world
        candidates = [pool[i] for i in indices]
        query = queries[query_index]
        batch = engine.score_many(query, candidates)
        single = np.array([engine.score(query, c) for c in candidates])
        assert np.array_equal(batch, single)

    @settings(max_examples=15, deadline=None)
    @given(
        split=st.integers(min_value=0, max_value=POOL_SIZE),
        limit=st.integers(min_value=0, max_value=POOL_SIZE + 5),
        query_index=st.integers(min_value=0, max_value=9),
    )
    def test_block_prefix_and_extend_parity(
        self, parity_world, split, limit, query_index
    ):
        """An extended block scores prefixes like a fresh score_many."""
        engine, pool, queries = parity_world
        query = queries[query_index]
        block = engine.prepare(pool[:split])
        block.extend(pool[split:])
        scores = block.score(query, limit=limit)
        expected = engine.score_many(query, pool[:limit])
        assert np.array_equal(scores, expected)


def _item(index: int, domain: str) -> InformationItem:
    return InformationItem(
        item_id=f"idx-{domain}-{index}", domain=domain, latent=np.zeros(2)
    )


ingest_steps = st.lists(
    st.tuples(
        st.sampled_from(["alpha", "beta", "gamma"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=0, max_size=60,
)
probe_times = st.lists(
    st.floats(min_value=-5.0, max_value=110.0, allow_nan=False),
    min_size=1, max_size=8,
)


class TestCollectionIndexEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(steps=ingest_steps, probes=probe_times)
    def test_visible_items_match_linear_scan(self, steps, probes):
        """The index answers exactly like the legacy O(N) list scan."""
        index = CollectionIndex()
        legacy = []  # (item, visible_at) in ingestion order
        for position, (domain, visible_at) in enumerate(steps):
            item = _item(position, domain)
            index.add(item, visible_at)
            legacy.append((item, visible_at))
        for now in probes:
            for domain in [None, "alpha", "beta", "gamma", "missing"]:
                expected = [
                    item for item, visible_at in legacy
                    if visible_at <= now
                    and (domain is None or item.domain == domain)
                ]
                assert index.visible_items(now, domain) == expected
                assert index.visible_count(now, domain) == len(expected)
        for domain in [None, "alpha", "beta", "gamma", "missing"]:
            expected_total = sum(
                1 for item, __ in legacy
                if domain is None or item.domain == domain
            )
            assert index.domain_size(domain) == expected_total
        assert index.size == len(legacy)

    @settings(max_examples=40, deadline=None)
    @given(steps=ingest_steps)
    def test_interleaved_probes_match_linear_scan(self, steps):
        """Probing between ingests (cache extend/rebuild) stays exact."""
        index = CollectionIndex()
        legacy = []
        for position, (domain, visible_at) in enumerate(steps):
            item = _item(position, domain)
            index.add(item, visible_at)
            legacy.append((item, visible_at))
            now = visible_at  # probe right at the new item's boundary
            expected = [i for i, v in legacy if v <= now]
            assert index.visible_items(now) == expected


class TestSourceAnswerCoherence:
    @settings(max_examples=10, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),   # ingest batch size
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
            ),
            min_size=1, max_size=5,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_answers_track_pairwise_over_ingest_sequences(
        self, parity_world, batches, seed
    ):
        """Cached blocks stay coherent across arbitrary ingest/now orders.

        After every ingest batch the source must answer with exactly the
        ranking the reference pairwise path produces over the visible
        items — regardless of whether the cached block was reused,
        extended, or rebuilt.  The query's evidence item is minted fresh
        per call (new item id), so equal scores here also demonstrate
        that scores depend only on content, never on cache identity.
        """
        engine, pool, queries = parity_world
        query = _topic_query(engine)
        subquery = query.restricted_to("pool")
        source = InformationSource(
            source_id=f"prop-src-{seed}",
            node_id="n0",
            domains=["pool"],
            quality=SourceQuality(
                coverage=1.0, freshness_lag=10.0, error_rate=0.0,
            ),
            engine=engine,
            streams=RngStreams(seed=seed).spawn("prop"),
        )
        cursor = 0
        for size, ingest_now, probe_now in batches:
            chunk = pool[cursor:cursor + size]
            cursor += size
            source.ingest(chunk, now=ingest_now)
            answer = source.answer(subquery, now=probe_now)
            visible = source.visible_items(probe_now, "pool")
            assert answer.candidates_scanned == len(visible)
            expected = engine.rank_pairwise(
                subquery.evidence_item(), visible
            )[: subquery.k]
            assert [i.item_id for i, __ in answer.matches] == [
                i.item_id for i, __ in expected
            ]
            assert [s for __, s in answer.matches] == [s for __, s in expected]


def _topic_query(engine):
    """A topic query over the parity world's vocabulary."""
    from repro.query import Query, QueryKind

    vocabulary = engine.cross.lifter.vocabulary
    space = vocabulary.topic_space
    rng = np.random.default_rng(99)
    intent = space.basis("folk-jewelry", weight=0.9)
    return Query(
        kind=QueryKind.TOPIC,
        terms=vocabulary.sample_terms(intent, rng, length=50),
        intent_latent=intent,
        k=5,
    )
