"""Tests for the streaming flight recorder."""

import functools
import json

import pytest

from repro.obs.flight import (
    CHUNK_PATTERN,
    FLIGHT_VERSION,
    FOOTER_FILE,
    FlightRecorder,
    callback_identity,
)


def _record_n(recorder, n, start=0):
    for index in range(start, start + n):
        recorder.record(index, float(index), "tick", "m:f", None)


class TestCallbackIdentity:
    def test_plain_function(self):
        def hook():
            pass

        identity = callback_identity(hook)
        assert identity.endswith(":TestCallbackIdentity.test_plain_function.<locals>.hook")
        assert identity.startswith("tests.obs.test_flight")

    def test_lambda(self):
        assert "<lambda>" in callback_identity(lambda: None)

    def test_bound_method(self):
        class Widget:
            def fire(self):
                pass

        identity = callback_identity(Widget().fire)
        assert identity.endswith(":TestCallbackIdentity.test_bound_method.<locals>.Widget.fire")

    def test_partial_unwrapped(self):
        def hook(x):
            pass

        assert callback_identity(functools.partial(hook, 1)) == callback_identity(hook)

    def test_wrapped_chain_unwrapped(self):
        def inner():
            pass

        @functools.wraps(inner)
        def outer():
            inner()

        assert callback_identity(outer) == callback_identity(inner)

    def test_callable_object_falls_back_to_class(self):
        class Proc:
            def __call__(self):
                pass

        identity = callback_identity(Proc())
        assert "Proc" in identity
        assert "0x" not in identity

    def test_no_memory_addresses(self):
        assert "0x" not in callback_identity(lambda: None)


class TestFlightRecorder:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FlightRecorder(checkpoint_interval=0)
        with pytest.raises(ValueError):
            FlightRecorder(chunk_lines=0)
        with pytest.raises(ValueError):
            FlightRecorder(shard_id=-1)

    def test_record_appends_canonical_entries(self):
        recorder = FlightRecorder()
        recorder.record(3, 1.5, "query", "mod:fn", 7)
        assert recorder.record_count == 1
        footer = recorder.footer_dict()
        assert footer["events"] == 1
        assert footer["version"] == FLIGHT_VERSION

    def test_checkpoint_cadence(self):
        recorder = FlightRecorder(checkpoint_interval=4)
        _record_n(recorder, 11)
        assert [entry["events"] for entry in recorder.checkpoints()] == [4, 8]

    def test_checkpoint_digest_covers_preceding_lines_only(self):
        left = FlightRecorder(checkpoint_interval=4)
        right = FlightRecorder(checkpoint_interval=4)
        _record_n(left, 4)
        _record_n(right, 4)
        # Same first window -> same checkpoint digest.
        assert left.checkpoints()[0]["digest"] == right.checkpoints()[0]["digest"]

    def test_digest_deterministic_for_same_inputs(self):
        left = FlightRecorder(checkpoint_interval=8)
        right = FlightRecorder(checkpoint_interval=8)
        _record_n(left, 20)
        _record_n(right, 20)
        assert left.digest == right.digest

    def test_digest_sensitive_to_any_field(self):
        left = FlightRecorder()
        right = FlightRecorder()
        left.record(0, 1.0, "tick", "m:f", None)
        right.record(0, 1.0, "tick", "m:g", None)
        assert left.digest != right.digest

    def test_draw_deltas_measured_from_start(self):
        draws = {"total": 100, "streams": {"warmup": 100}}
        recorder = FlightRecorder()
        recorder.bind_rng(
            draw_total=lambda: draws["total"],
            draw_counts=lambda: dict(draws["streams"]),
        )
        recorder.start()  # baseline: 100 construction-time draws
        draws["total"] = 103
        draws["streams"] = {"warmup": 100, "query": 3}
        recorder.record(0, 1.0, "tick", "m:f", None)
        footer = recorder.footer_dict()
        # Zero-delta warmup stream is omitted; only run-time draws appear.
        assert footer["streams"] == {"query": 3}

    def test_start_is_idempotent(self):
        total = [5]
        recorder = FlightRecorder()
        recorder.bind_rng(draw_total=lambda: total[0], draw_counts=dict)
        recorder.start()
        total[0] = 50
        recorder.start()  # must not re-baseline
        recorder.record(0, 1.0, "tick", "m:f", None)
        assert recorder.footer_dict()["streams"] == {}

    def test_record_lines_match_canonical_json(self, tmp_path):
        # The hot path hand-builds each line; it must stay byte-identical
        # to json.dumps with sorted keys and minimal separators.
        recorder = FlightRecorder(checkpoint_interval=100)
        recorder.record(0, 1.5, 'na"me\\with\nescapes', "mod:Cls.fn", 7)
        recorder.record(1, 2.0, "tick", "mod:fn", None)
        recorder.finalize(tmp_path)
        for line in (tmp_path / "chunk-000000.jsonl").read_text().splitlines():
            entry = json.loads(line)
            assert line == json.dumps(entry, sort_keys=True, separators=(",", ":"))

    def test_chunked_streaming(self, tmp_path):
        recorder = FlightRecorder(checkpoint_interval=100, chunk_lines=4)
        recorder.bind_directory(tmp_path)
        _record_n(recorder, 10)
        written = recorder.finalize()
        assert written == {"flight": str(tmp_path)}
        chunks = sorted(path.name for path in tmp_path.glob("chunk-*.jsonl"))
        assert chunks == [CHUNK_PATTERN.format(i) for i in range(3)]
        lines = []
        for chunk in chunks:
            lines.extend((tmp_path / chunk).read_text().splitlines())
        assert len(lines) == 10
        assert [json.loads(line)["seq"] for line in lines] == list(range(10))

    def test_footer_matches_content(self, tmp_path):
        recorder = FlightRecorder(checkpoint_interval=3)
        _record_n(recorder, 7)
        recorder.finalize(tmp_path)
        footer = json.loads((tmp_path / FOOTER_FILE).read_text())
        assert footer["events"] == 7
        assert footer["chunks"] == 1
        assert footer["checkpoint_interval"] == 3
        assert len(footer["checkpoints"]) == 2
        assert footer["digest"] == recorder.digest

    def test_record_after_finalize_raises(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(0, 1.0, "tick", "m:f", None)
        recorder.finalize(tmp_path)
        with pytest.raises(RuntimeError):
            recorder.record(1, 2.0, "tick", "m:f", None)

    def test_finalize_without_directory_raises(self):
        with pytest.raises(ValueError):
            FlightRecorder().finalize()

    def test_manifest_section(self):
        recorder = FlightRecorder(shard_id=2)
        _record_n(recorder, 3)
        section = recorder.manifest_section()
        assert section == {
            "digest": recorder.digest,
            "events": 3,
            "shard_id": 2,
        }
