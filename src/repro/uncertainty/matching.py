"""Matching engines for heterogeneous objects.

Section 2 of the paper asks three escalating questions: how to match two
images (feature-set uncertainty), how to match *compound* objects ("a web
page of a fashion magazine with an auction catalog"), and how to match
objects *of different types* ("an image of a jewel matching an article").
This module answers all three:

- :class:`TextMatcher` — cosine over sublinear-TF term bags.
- :class:`MediaMatcher` — cosine over one observable feature set.
- :class:`ConceptLifter` — a learned linear map from observable features
  into the shared topic (concept) space, fit by least squares on a labelled
  sample; enables cross-type comparison.
- :class:`CrossTypeMatcher` — lifts both objects into concept space.
- :class:`CompoundMatcher` — recursive best-part alignment with weights.
- :class:`MatchingEngine` — dispatches on item types.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureExtractor
from repro.data.items import (
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
)
from repro.data.vocabulary import Vocabulary
from repro.uncertainty.similarity import bag_cosine, nonnegative_cosine, sublinear_tf


class TextMatcher:
    """Scores text/text pairs by term overlap."""

    def score(self, query: TextDocument, candidate: TextDocument) -> float:
        """Similarity score for one pair, in [0, 1]."""
        return bag_cosine(sublinear_tf(query.terms), sublinear_tf(candidate.terms))


class MediaMatcher:
    """Scores media/media pairs over one observable feature set."""

    def __init__(self, extractor: FeatureExtractor, feature_set: str):
        self.extractor = extractor
        self.feature_set = feature_set
        self._cache: Dict[Tuple[str, str], np.ndarray] = {}

    def _features(self, obj: MediaObject) -> np.ndarray:
        key = (obj.item_id, self.feature_set)
        if key not in self._cache:
            self._cache[key] = self.extractor.extract(obj, self.feature_set)
        return self._cache[key]

    def score(self, query: MediaObject, candidate: MediaObject) -> float:
        """Similarity score for one pair, in [0, 1]."""
        a = self._features(query)
        b = self._features(candidate)
        return float((1.0 + np.dot(a, b)) / 2.0)


class ConceptLifter:
    """Learned linear lift from observable evidence into concept space.

    For media objects: ridge regression from extracted features to latent
    topic vectors, trained on a labelled sample (in a real deployment this
    would be a hand-annotated calibration set; here the generator supplies
    labels).  For text: the vocabulary's topic posterior, which needs no
    training.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        extractor: FeatureExtractor,
        feature_set: str = "content_metadata",
        ridge: float = 1.0,
    ):
        self.vocabulary = vocabulary
        self.extractor = extractor
        self.feature_set = feature_set
        self.ridge = ridge
        self._weights: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether the media lift has been trained."""
        return self._weights is not None

    def fit(self, sample: Sequence[MediaObject]) -> "ConceptLifter":
        """Fit the media lift on a labelled sample of media objects."""
        if not sample:
            raise ValueError("need a non-empty training sample")
        features = np.stack(
            [self.extractor.extract(obj, self.feature_set) for obj in sample]
        )
        targets = np.stack([obj.latent for obj in sample])
        dims = features.shape[1]
        gram = features.T @ features + self.ridge * np.eye(dims)
        self._weights = np.linalg.solve(gram, features.T @ targets)
        return self

    def lift(self, item: InformationItem) -> np.ndarray:
        """Map ``item`` to a (normalised, non-negative) concept vector."""
        if isinstance(item, TextDocument):
            return self.vocabulary.topic_posterior(item.terms)
        if isinstance(item, MediaObject):
            if self._weights is None:
                raise RuntimeError("ConceptLifter must be fit before lifting media")
            features = self.extractor.extract(item, self.feature_set)
            raw = features @ self._weights
            raw = np.clip(raw, 0.0, None)
            total = raw.sum()
            if total <= 0:
                return np.full(raw.shape, 1.0 / raw.shape[0])
            return raw / total
        if isinstance(item, CompoundObject):
            parts = item.flat_parts()
            lifted = np.stack([self.lift(part) * weight for part, weight in parts])
            total = sum(weight for __, weight in parts)
            vector = lifted.sum(axis=0) / total
            return vector / vector.sum()
        raise TypeError(f"cannot lift item of type {type(item).__name__}")


class CrossTypeMatcher:
    """Scores any pair of items by concept-space cosine."""

    def __init__(self, lifter: ConceptLifter):
        self.lifter = lifter

    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Similarity score for one pair, in [0, 1]."""
        return nonnegative_cosine(self.lifter.lift(query), self.lifter.lift(candidate))


class CompoundMatcher:
    """Aligns compound objects part-by-part.

    Score = weighted mean over query parts of the best match among
    candidate parts, where part/part scores come from a base engine.  This
    is the "matching strategies for compound objects ... each with its own
    semantics and rules for matching" design.
    """

    def __init__(self, base_engine: "MatchingEngine"):
        self.base = base_engine

    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Similarity score for one pair, in [0, 1]."""
        query_parts = self._parts(query)
        candidate_parts = self._parts(candidate)
        if not query_parts or not candidate_parts:
            return 0.0
        total_weight = sum(weight for __, weight in query_parts)
        aggregate = 0.0
        for query_part, weight in query_parts:
            best = max(
                self.base.score(query_part, candidate_part)
                for candidate_part, __ in candidate_parts
            )
            aggregate += weight * best
        return aggregate / total_weight

    @staticmethod
    def _parts(item: InformationItem) -> List[Tuple[InformationItem, float]]:
        if isinstance(item, CompoundObject):
            return item.flat_parts()
        return [(item, 1.0)]


class MatchingEngine:
    """Type-dispatching entry point for scoring item pairs.

    Uses the most specific matcher available: text/text → term overlap,
    media/media → the configured feature set, anything involving a
    compound → part alignment, and mixed plain types → concept-space lift.
    """

    def __init__(
        self,
        text_matcher: TextMatcher,
        media_matcher: MediaMatcher,
        cross_matcher: CrossTypeMatcher,
    ):
        self.text = text_matcher
        self.media = media_matcher
        self.cross = cross_matcher
        self.compound = CompoundMatcher(self)

    def score(self, query: InformationItem, candidate: InformationItem) -> float:
        """Return a similarity score in [0, 1] for any item pair."""
        if isinstance(query, CompoundObject) or isinstance(candidate, CompoundObject):
            return self.compound.score(query, candidate)
        if isinstance(query, TextDocument) and isinstance(candidate, TextDocument):
            return self.text.score(query, candidate)
        if isinstance(query, MediaObject) and isinstance(candidate, MediaObject):
            return self.media.score(query, candidate)
        return self.cross.score(query, candidate)

    def rank(
        self, query: InformationItem, candidates: Sequence[InformationItem]
    ) -> List[Tuple[InformationItem, float]]:
        """Candidates with scores, best first (ties broken by item id)."""
        scored = [(item, self.score(query, item)) for item in candidates]
        return sorted(scored, key=lambda pair: (-pair[1], pair[0].item_id))


def build_matching_engine(
    vocabulary: Vocabulary,
    extractor: FeatureExtractor,
    feature_set: str = "content_metadata",
    lifter_sample: Optional[Sequence[MediaObject]] = None,
) -> MatchingEngine:
    """Convenience constructor wiring the standard matchers together."""
    lifter = ConceptLifter(vocabulary, extractor, feature_set=feature_set)
    if lifter_sample:
        lifter.fit(lifter_sample)
    return MatchingEngine(
        text_matcher=TextMatcher(),
        media_matcher=MediaMatcher(extractor, feature_set),
        cross_matcher=CrossTypeMatcher(lifter),
    )
