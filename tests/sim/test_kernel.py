"""Tests for the discrete-event simulator."""

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_schedule_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_schedule_absolute(self):
        sim = Simulator()
        fired = []
        sim.at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(2.0, lambda: None)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(2.0, lambda: times.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 3.0]


class TestRunLimits:
    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        processed = sim.run(until=5.0)
        assert processed == 0
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_includes_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 2

    def test_step(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_processed_accumulates(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2


class TestProcesses:
    def test_generator_process(self):
        sim = Simulator()
        times = []

        def worker():
            for __ in range(3):
                times.append(sim.now)
                yield 2.0

        sim.process(worker())
        sim.run()
        assert times == [0.0, 2.0, 4.0]

    def test_process_negative_delay_raises(self):
        sim = Simulator()

        def bad():
            yield -1.0

        with pytest.raises(SimulationError):
            sim.process(bad())

    def test_rng_is_seeded_from_constructor(self):
        a = Simulator(seed=9).rng.stream("x").random(4)
        b = Simulator(seed=9).rng.stream("x").random(4)
        assert list(a) == list(b)


class TestFlightHook:
    def test_records_every_dispatched_event(self):
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
        sim = Simulator(seed=3, flight=flight)
        sim.schedule(1.0, lambda: None, tag="alpha")
        sim.schedule(2.0, lambda: None, tag="beta")
        sim.run()
        assert flight.record_count == 2

    def test_record_draws_reflect_callback_consumption(self):
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
        sim = Simulator(seed=3, flight=flight)
        sim.rng.stream("warmup").random(8)  # pre-run draws must not count
        sim.schedule(1.0, lambda: sim.rng.stream("x").random(4), tag="draw")
        sim.run(until=5.0)
        footer = flight.footer_dict()
        # The stream table only accounts draws made during the run.
        assert footer["streams"] == {"x": 1}

    def test_same_seed_runs_record_identical_digests(self):
        from repro.obs.flight import FlightRecorder

        digests = []
        for _ in range(2):
            flight = FlightRecorder()
            sim = Simulator(seed=9, flight=flight)

            def worker(sim=sim):
                for __ in range(5):
                    sim.rng.stream("w").random()
                    yield 1.0

            sim.process(worker(), tag="work")
            sim.run()
            digests.append(flight.digest)
        assert digests[0] == digests[1]

    def test_no_flight_attribute_left_none(self):
        sim = Simulator(seed=1)
        assert sim.flight is None
