"""First-divergence debugger over flight recordings.

Given two recordings written by :class:`repro.obs.flight.FlightRecorder`
(or two run directories holding one recording per shard), this module
answers "**where** did these runs stop being bitwise-identical?":

1. If the footer digests match, the recordings are identical — done.
2. Otherwise the checkpoint digests are **binary-searched** for the
   first checkpoint whose rolling digest disagrees.  Divergence of a
   rolling (prefix-sensitive) digest is monotone over checkpoints, so
   the search brackets the fork to one checkpoint window without
   scanning the whole log.
3. The bracketed window is scanned line-by-line for the first entry
   that differs, and the result is reported with causal context: the
   differing fields, the span stack of both sides (when span artifacts
   are available), the RNG streams whose draw counters disagree, and
   the last K matching events before the fork.

A divergent *checkpoint* line with identical event records around it is
itself diagnostic: the per-event ``draws`` totals matched while the
per-stream counters forked — two streams traded draws one-for-one —
and the report names exactly those streams.

Everything here works on *files and loaded values only*; the module
never imports the kernel, keeping ``repro.obs`` at the bottom of the
layer DAG.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.flight import CHUNK_PATTERN, FLIGHT_VERSION, FOOTER_FILE
from repro.obs.spans import Span, ancestors, span_index

PathLike = Union[str, Path]

#: Default number of trailing matched events echoed in a report.
DEFAULT_CONTEXT = 5
#: Spans artifact expected next to a recording's parent run directory.
SPANS_SIBLING = "spans.jsonl"


@dataclass
class FlightRecording:
    """One loaded flight recording: footer + parsed log lines.

    ``entries`` preserves file order (event records interleaved with
    checkpoint lines); ``checkpoint_positions`` maps checkpoint ordinal
    → index into ``entries``.
    """

    path: str
    footer: Dict[str, Any]
    entries: List[Dict[str, Any]]
    checkpoint_positions: List[int]
    spans: Optional[List[Span]] = None

    @property
    def shard_id(self) -> int:
        """Namespace index of the process that recorded this log."""
        return int(self.footer.get("shard_id", 0))

    @property
    def digest(self) -> str:
        """Final rolling digest over every log line."""
        return str(self.footer["digest"])

    @property
    def events(self) -> int:
        """Event records in the recording (checkpoint lines excluded)."""
        return int(self.footer["events"])

    def checkpoint_entry(self, ordinal: int) -> Dict[str, Any]:
        """The checkpoint *line* (with stream counters) at ``ordinal``."""
        return self.entries[self.checkpoint_positions[ordinal]]


def load_recording(path: PathLike) -> FlightRecording:
    """Load and integrity-check one recording directory.

    Verifies the footer's rolling digest against the chunk bytes, so a
    corrupt or hand-edited recording fails loudly (``ValueError``)
    instead of producing a nonsense alignment.
    """
    directory = Path(path)
    footer_path = directory / FOOTER_FILE
    if not footer_path.is_file():
        raise ValueError(f"not a flight recording (no {FOOTER_FILE}): {directory}")
    footer = json.loads(footer_path.read_text())
    if footer.get("version") != FLIGHT_VERSION:
        raise ValueError(
            f"unsupported flight recording version {footer.get('version')!r} "
            f"in {footer_path}"
        )
    digest = hashlib.sha256()
    entries: List[Dict[str, Any]] = []
    checkpoint_positions: List[int] = []
    for chunk in range(int(footer.get("chunks", 0))):
        chunk_path = directory / CHUNK_PATTERN.format(chunk)
        for line in chunk_path.read_text().splitlines():
            if not line:
                continue
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
            entry = json.loads(line)
            if "checkpoint" in entry:
                checkpoint_positions.append(len(entries))
            entries.append(entry)
    if digest.hexdigest() != footer["digest"]:
        raise ValueError(f"flight recording digest mismatch in {directory}")
    recording = FlightRecording(
        path=str(directory),
        footer=footer,
        entries=entries,
        checkpoint_positions=checkpoint_positions,
    )
    spans_path = directory.parent / SPANS_SIBLING
    if spans_path.is_file():
        from repro.obs.export import load_spans_jsonl

        recording.spans = load_spans_jsonl(spans_path)
    return recording


def discover_recordings(path: PathLike) -> Dict[int, FlightRecording]:
    """Map shard id → recording for a recording or run directory.

    Accepts either a recording directory itself (containing
    ``footer.json``), or a run directory containing ``flight/`` and/or
    ``shard-*/flight/`` sub-recordings (the layout produced by
    ``export_run`` and the sharded demo).
    """
    root = Path(path)
    if (root / FOOTER_FILE).is_file():
        recording = load_recording(root)
        return {recording.shard_id: recording}
    candidates = [root / "flight"]
    candidates.extend(sorted(root.glob("shard-*/flight")))
    recordings: Dict[int, FlightRecording] = {}
    for candidate in candidates:
        if not (candidate / FOOTER_FILE).is_file():
            continue
        recording = load_recording(candidate)
        if recording.shard_id in recordings:
            raise ValueError(
                f"duplicate shard id {recording.shard_id} under {root} "
                f"({recordings[recording.shard_id].path} vs {recording.path})"
            )
        recordings[recording.shard_id] = recording
    if not recordings:
        raise ValueError(f"no flight recordings found under {root}")
    return recordings


@dataclass(frozen=True)
class StreamDelta:
    """One RNG stream whose draw counters disagree at the fork."""

    stream: str
    left: int
    right: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the JSON report."""
        return {"stream": self.stream, "left": self.left, "right": self.right}


@dataclass
class DivergenceReport:
    """Where (and how) one shard's recordings stop matching.

    ``kind`` is one of ``identical``, ``event`` (an event record
    differs), ``rng-checkpoint`` (only per-stream counters differ),
    ``truncated`` (one log is a strict prefix of the other) or
    ``missing-left`` / ``missing-right`` (the shard exists on one side
    only).
    """

    shard_id: int
    kind: str
    left_events: int = 0
    right_events: int = 0
    index: Optional[int] = None
    left_entry: Optional[Dict[str, Any]] = None
    right_entry: Optional[Dict[str, Any]] = None
    fields: List[str] = field(default_factory=list)
    streams: List[StreamDelta] = field(default_factory=list)
    context: List[Dict[str, Any]] = field(default_factory=list)
    left_stack: Optional[str] = None
    right_stack: Optional[str] = None
    window: Optional[Tuple[int, int]] = None
    probes: int = 0

    @property
    def identical(self) -> bool:
        """Whether this shard's recordings are bitwise-identical."""
        return self.kind == "identical"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``--json`` output."""
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "left_events": self.left_events,
            "right_events": self.right_events,
            "index": self.index,
            "left_entry": self.left_entry,
            "right_entry": self.right_entry,
            "fields": list(self.fields),
            "streams": [delta.to_dict() for delta in self.streams],
            "context": [dict(entry) for entry in self.context],
            "left_stack": self.left_stack,
            "right_stack": self.right_stack,
            "window": list(self.window) if self.window is not None else None,
            "probes": self.probes,
        }


# agora: shard-safe
def _differing_fields(left: Dict[str, Any], right: Dict[str, Any]) -> List[str]:
    """Sorted keys on which two parsed log entries disagree."""
    keys = set(left) | set(right)
    sentinel = object()
    return sorted(
        key for key in keys if left.get(key, sentinel) != right.get(key, sentinel)
    )


# agora: shard-safe
def _stream_deltas(
    left: Dict[str, int], right: Dict[str, int]
) -> List[StreamDelta]:
    """Streams whose counters differ between two counter tables."""
    names = set(left) | set(right)
    return [
        StreamDelta(stream=name, left=int(left.get(name, 0)), right=int(right.get(name, 0)))
        for name in sorted(names)
        if int(left.get(name, 0)) != int(right.get(name, 0))
    ]


# agora: shard-safe
def _span_stack(span_id: Optional[int], spans: Optional[Sequence[Span]]) -> Optional[str]:
    """``root > … > leaf`` rendering of a span's ancestor chain."""
    if span_id is None or spans is None:
        return None
    index = span_index(list(spans))
    leaf = index.get(span_id)
    if leaf is None:
        return f"#{span_id} (span not in artifact)"
    chain = ancestors(leaf, index) + [leaf]
    return " > ".join(f"#{span.span_id} {span.name}" for span in chain)


def _first_divergent_checkpoint(
    left: FlightRecording, right: FlightRecording
) -> Tuple[Optional[int], int]:
    """Binary-search the first paired checkpoint whose digests differ.

    Returns ``(ordinal, probes)``; ordinal is ``None`` when every paired
    checkpoint agrees.  Valid because a rolling digest that has diverged
    stays diverged: the predicate "digests differ at ordinal i" is
    monotone in ``i``.
    """
    left_index = left.footer.get("checkpoints", [])
    right_index = right.footer.get("checkpoints", [])
    paired = min(len(left_index), len(right_index))
    probes = 0
    if paired == 0:
        return None, probes
    lo, hi = 0, paired - 1
    if left_index[hi]["digest"] == right_index[hi]["digest"]:
        return None, 1
    probes += 1
    first = hi
    while lo <= hi:
        mid = (lo + hi) // 2
        probes += 1
        if left_index[mid]["digest"] != right_index[mid]["digest"]:
            first = mid
            hi = mid - 1
        else:
            lo = mid + 1
    return first, probes


def find_divergence(
    left: FlightRecording,
    right: FlightRecording,
    context: int = DEFAULT_CONTEXT,
) -> DivergenceReport:
    """Locate the first divergent log entry between two recordings."""
    shard_id = left.shard_id
    report = DivergenceReport(
        shard_id=shard_id,
        kind="identical",
        left_events=left.events,
        right_events=right.events,
    )
    if left.digest == right.digest and left.events == right.events:
        return report
    if left.footer.get("checkpoint_interval") != right.footer.get(
        "checkpoint_interval"
    ):
        raise ValueError(
            "recordings use different checkpoint intervals "
            f"({left.footer.get('checkpoint_interval')} vs "
            f"{right.footer.get('checkpoint_interval')}); re-record with "
            "matching settings"
        )

    first_ck, probes = _first_divergent_checkpoint(left, right)
    report.probes = probes
    # A checkpoint's indexed digest covers the lines *strictly before*
    # its own line, so a matching digest still leaves the checkpoint
    # line itself (its streams table) as a fork candidate — every
    # window below therefore starts AT the last agreeing checkpoint
    # line, not after it.
    if first_ck is None:
        paired = min(len(left.checkpoint_positions), len(right.checkpoint_positions))
        start = left.checkpoint_positions[paired - 1] if paired > 0 else 0
        end = min(len(left.entries), len(right.entries))
    else:
        start = left.checkpoint_positions[first_ck - 1] if first_ck > 0 else 0
        end = min(
            left.checkpoint_positions[first_ck],
            right.checkpoint_positions[first_ck],
        ) + 1
    report.window = (start, end)

    for position in range(start, end):
        left_entry = left.entries[position]
        right_entry = right.entries[position]
        if left_entry == right_entry:
            continue
        report.index = position
        report.left_entry = left_entry
        report.right_entry = right_entry
        report.fields = _differing_fields(left_entry, right_entry)
        if "checkpoint" in left_entry or "checkpoint" in right_entry:
            report.kind = "rng-checkpoint"
            report.streams = _stream_deltas(
                dict(left_entry.get("streams", {})),
                dict(right_entry.get("streams", {})),
            )
        else:
            report.kind = "event"
            report.streams = _stream_deltas(
                _counters_at_or_after(left, position),
                _counters_at_or_after(right, position),
            )
            report.left_stack = _span_stack(left_entry.get("span"), left.spans)
            report.right_stack = _span_stack(right_entry.get("span"), right.spans)
        report.context = _matching_context(left, position, context)
        return report

    # Every compared entry matched: one log must be a prefix of the other.
    report.kind = "truncated"
    report.index = end
    shorter = left if len(left.entries) <= len(right.entries) else right
    longer = right if shorter is left else left
    if end < len(longer.entries):
        extra = longer.entries[end]
        if shorter is left:
            report.right_entry = extra
        else:
            report.left_entry = extra
    report.streams = _stream_deltas(
        dict(left.footer.get("streams", {})), dict(right.footer.get("streams", {}))
    )
    report.context = _matching_context(left, end, context)
    return report


# agora: shard-safe
def _counters_at_or_after(recording: FlightRecording, position: int) -> Dict[str, int]:
    """Stream counters from the first checkpoint at/after ``position``.

    Falls back to the footer's final counters when the divergence sits
    after the last checkpoint.
    """
    for checkpoint_position in recording.checkpoint_positions:
        if checkpoint_position >= position:
            entry = recording.entries[checkpoint_position]
            return {name: int(count) for name, count in entry.get("streams", {}).items()}
    return {
        name: int(count)
        for name, count in recording.footer.get("streams", {}).items()
    }


# agora: shard-safe
def _matching_context(
    recording: FlightRecording, position: int, context: int
) -> List[Dict[str, Any]]:
    """The last ``context`` matching *event* records before ``position``."""
    matched: List[Dict[str, Any]] = []
    for entry in reversed(recording.entries[:position]):
        if "checkpoint" in entry:
            continue
        matched.append(entry)
        if len(matched) >= context:
            break
    return list(reversed(matched))


@dataclass
class RunAlignment:
    """Per-shard divergence reports for two runs."""

    left_path: str
    right_path: str
    reports: List[DivergenceReport]

    @property
    def identical(self) -> bool:
        """Whether every shard's recordings are bitwise-identical."""
        return all(report.identical for report in self.reports)

    def first_divergence(self) -> Optional[DivergenceReport]:
        """The divergent report with the lowest shard id, if any."""
        for report in self.reports:
            if not report.identical:
                return report
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for ``--json`` output."""
        return {
            "left": self.left_path,
            "right": self.right_path,
            "identical": self.identical,
            "reports": [report.to_dict() for report in self.reports],
        }


def align_runs(
    left_path: PathLike,
    right_path: PathLike,
    context: int = DEFAULT_CONTEXT,
) -> RunAlignment:
    """Compare all shards of two runs (single recordings included)."""
    left_map = discover_recordings(left_path)
    right_map = discover_recordings(right_path)
    reports: List[DivergenceReport] = []
    for shard_id in sorted(set(left_map) | set(right_map)):
        left = left_map.get(shard_id)
        right = right_map.get(shard_id)
        if left is None:
            assert right is not None
            reports.append(
                DivergenceReport(
                    shard_id=shard_id,
                    kind="missing-left",
                    right_events=right.events,
                )
            )
        elif right is None:
            reports.append(
                DivergenceReport(
                    shard_id=shard_id,
                    kind="missing-right",
                    left_events=left.events,
                )
            )
        else:
            reports.append(find_divergence(left, right, context=context))
    return RunAlignment(
        left_path=str(left_path), right_path=str(right_path), reports=reports
    )


# agora: shard-safe
def _render_entry(entry: Optional[Dict[str, Any]]) -> str:
    """One-line rendering of a parsed log entry."""
    if entry is None:
        return "(absent)"
    if "checkpoint" in entry:
        return (
            f"checkpoint #{entry['checkpoint']} after {entry['events']} events "
            f"digest={str(entry.get('digest', ''))[:12]}…"
        )
    span = entry.get("span")
    span_text = f"#{span}" if span is not None else "-"
    return (
        f"seq={entry.get('seq')} t={entry.get('time')} kind={entry.get('kind')} "
        f"callback={entry.get('callback')} span={span_text} "
        f"draws={entry.get('draws')}"
    )


# agora: shard-safe
def render_report(report: DivergenceReport) -> str:
    """Human-readable rendering of one shard's divergence report."""
    head = f"shard {report.shard_id}: "
    if report.identical:
        return (
            head + f"identical ({report.left_events} events, digests match)"
        )
    lines: List[str] = []
    if report.kind == "missing-left":
        lines.append(head + "recording missing on the left side")
        return "\n".join(lines)
    if report.kind == "missing-right":
        lines.append(head + "recording missing on the right side")
        return "\n".join(lines)
    if report.kind == "truncated":
        lines.append(
            head
            + f"DIVERGED — one recording is a prefix of the other "
            f"(left {report.left_events} vs right {report.right_events} events)"
        )
    elif report.kind == "rng-checkpoint":
        lines.append(
            head
            + "DIVERGED at an RNG accounting checkpoint "
            "(event records match; streams traded draws)"
        )
    else:
        lines.append(head + f"DIVERGED at log entry {report.index}")
    if report.window is not None:
        lines.append(
            f"  window: entries {report.window[0]}..{report.window[1]} "
            f"({report.probes} checkpoint probes)"
        )
    if report.kind != "truncated" or report.left_entry or report.right_entry:
        lines.append("  first divergent entry:")
        lines.append(f"    left : {_render_entry(report.left_entry)}")
        lines.append(f"    right: {_render_entry(report.right_entry)}")
    if report.fields:
        lines.append(f"  fields differing: {', '.join(report.fields)}")
    if report.left_stack is not None:
        lines.append(f"  span stack (left) : {report.left_stack}")
    if report.right_stack is not None:
        lines.append(f"  span stack (right): {report.right_stack}")
    if report.streams:
        lines.append("  rng streams disagreeing:")
        for delta in report.streams:
            lines.append(
                f"    {delta.stream}: left={delta.left} right={delta.right}"
            )
    if report.context:
        lines.append(f"  last {len(report.context)} matching events:")
        for entry in report.context:
            lines.append(f"    {_render_entry(entry)}")
    return "\n".join(lines)


# agora: shard-safe
def render_alignment(alignment: RunAlignment) -> str:
    """Human-readable rendering of a whole-run alignment."""
    lines = [
        f"left : {alignment.left_path}",
        f"right: {alignment.right_path}",
    ]
    for report in alignment.reports:
        lines.append(render_report(report))
    if alignment.identical:
        lines.append("runs are bitwise-identical")
    return "\n".join(lines)
