"""T1 (§2 Uncertainty): matching quality vs feature set; calibration.

Regenerates the T1 table: for each observable feature set, the ranking
quality (AUC) of media matching and the calibration error of raw scores
vs calibrated probabilities.  Expected shape: higher-fidelity feature sets
rank better; calibration reduces ECE for every feature set.
"""

import numpy as np
import pytest

from repro.data import CorpusGenerator, DomainSpec, FeatureExtractor, TopicSpace, Vocabulary
from repro.experiments import ExperimentResult
from repro.sim import RngStreams
from repro.uncertainty import (
    BinnedCalibrator,
    expected_calibration_error,
    ranking_auc,
)
from repro.uncertainty.matching import MediaMatcher

FEATURE_SETS = ["color_histogram", "shape", "texture", "content_metadata"]
RELEVANCE_THRESHOLD = 0.75


def _build_world(seed=13, items_per_domain=60):
    streams = RngStreams(seed).spawn("t1")
    space = TopicSpace(10)
    vocabulary = Vocabulary(space, streams.spawn("vocab"), vocabulary_size=500)
    corpus = CorpusGenerator(space, vocabulary, streams.spawn("corpus"),
                             feature_dimensions=32)
    extractor = FeatureExtractor(32, streams.spawn("features"))
    domains = [
        DomainSpec(name=f"d{i}", topic_prior={space.names[i]: 1.0},
                   type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
                   concentration=0.4)
        for i in range(5)
    ]
    items = []
    for spec in domains:
        items.extend(corpus.generate(spec, items_per_domain))
    return space, extractor, items


def run_t1(seed=13, items_per_domain=60, n_pairs=1500) -> ExperimentResult:
    space, extractor, items = _build_world(seed, items_per_domain)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        "T1", "Matching quality and calibration by feature set",
        ["feature_set", "fidelity", "auc", "ece_raw", "ece_calibrated"],
    )
    pair_indices = rng.integers(0, len(items), size=(n_pairs, 2))
    for feature_set in FEATURE_SETS:
        matcher = MediaMatcher(extractor, feature_set)
        scores, labels = [], []
        for i, j in pair_indices:
            if i == j:
                continue
            scores.append(matcher.score(items[i], items[j]))
            truth = space.relevance(items[i].latent, items[j].latent)
            labels.append(int(truth >= RELEVANCE_THRESHOLD))
        scores = np.asarray(scores)
        labels = np.asarray(labels)
        half = len(scores) // 2
        calibrator = BinnedCalibrator(n_bins=10).fit(scores[:half], labels[:half])
        calibrated = calibrator.predict_many(scores[half:])
        result.add_row(
            feature_set,
            extractor.spec(feature_set).fidelity,
            ranking_auc(scores, labels),
            expected_calibration_error(scores[half:], labels[half:]),
            expected_calibration_error(calibrated, labels[half:]),
        )
    result.add_note(
        "expected shape: AUC increases with fidelity; calibration lowers ECE"
    )
    return result


@pytest.mark.benchmark(group="T1")
def test_t1_uncertainty(benchmark):
    result = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    result.print()
    rows = {row[0]: row for row in result.rows}
    # Who wins: the high-fidelity feature set ranks best.
    assert rows["content_metadata"][2] > rows["color_histogram"][2]
    # Calibration helps every feature set.
    for row in result.rows:
        assert row[4] <= row[3] + 0.02


if __name__ == "__main__":
    run_t1().print()
