"""Learning behavioural profile parts: risk attitudes and negotiation styles.

§5 singles these out as untouched territory: "optimizing queries according
to different risk profiles of individuals, **establishing those profiles
through observations**" and "there are several [user-model elements] that
remain untouched, e.g., **negotiation styles**".  Two estimators:

- :class:`RiskAttitudeLearner` — fits a CARA coefficient to observed
  choices among lotteries via a softmax (logit) choice model on a grid.
- :func:`fit_concession_exponent` / :func:`classify_negotiation_style` —
  recovers a time-dependent strategy's exponent from an observed
  concession trace and maps it back to a named style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.uncertainty.risk import RiskProfile

Lottery = Tuple[Sequence[float], Sequence[float]]  # (outcomes, probabilities)


@dataclass(frozen=True)
class ObservedChoice:
    """One observed decision among lotteries."""

    options: Tuple[Lottery, ...]
    chosen: int

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ValueError("a choice needs at least two options")
        if not 0 <= self.chosen < len(self.options):
            raise ValueError("chosen index out of range")


class RiskAttitudeLearner:
    """Maximum-likelihood CARA estimation from lottery choices.

    Assumes the user picks option ``i`` with probability
    softmax(β · EUₐ(i)) where EUₐ is expected utility under CARA
    coefficient ``a``; the grid search maximises the data likelihood
    over ``a``.
    """

    def __init__(
        self,
        grid: Optional[Sequence[float]] = None,
        choice_sharpness: float = 8.0,
    ):
        if choice_sharpness <= 0:
            raise ValueError("choice_sharpness must be positive")
        self.grid = (
            list(grid) if grid is not None else list(np.linspace(-10.0, 10.0, 41))
        )
        if not self.grid:
            raise ValueError("grid must be non-empty")
        self.beta = choice_sharpness
        self._choices: List[ObservedChoice] = []

    # ------------------------------------------------------------------
    def observe(self, choice: ObservedChoice) -> None:
        """Record one observed choice."""
        self._choices.append(choice)

    def observe_choice(self, options: Sequence[Lottery], chosen: int) -> None:
        """Convenience wrapper building the ObservedChoice."""
        self.observe(ObservedChoice(tuple(options), chosen))

    @property
    def observations(self) -> int:
        """Number of choices observed so far."""
        return len(self._choices)

    # ------------------------------------------------------------------
    def log_likelihood(self, aversion: float) -> float:
        """Data log-likelihood under CARA coefficient ``aversion``."""
        profile = RiskProfile(aversion=aversion, name="candidate")
        total = 0.0
        for choice in self._choices:
            values = np.array([
                profile.expected_utility(outcomes, probabilities)
                for outcomes, probabilities in choice.options
            ])
            logits = self.beta * values
            logits -= logits.max()
            log_probs = logits - np.log(np.exp(logits).sum())
            total += float(log_probs[choice.chosen])
        return total

    def estimate(self) -> RiskProfile:
        """The grid point maximising the likelihood (neutral when no data)."""
        if not self._choices:
            return RiskProfile(aversion=0.0, name="neutral")
        scored = [(self.log_likelihood(a), -abs(a), a) for a in self.grid]
        best = max(scored)[2]
        if best > 0.5:
            name = "averse"
        elif best < -0.5:
            name = "seeking"
        else:
            name = "neutral"
        return RiskProfile(aversion=float(best), name=name)


# ----------------------------------------------------------------------
# Negotiation-style recovery
# ----------------------------------------------------------------------
def fit_concession_exponent(
    trace: Sequence[Tuple[float, float]],
    floor: float,
    start: float = 0.95,
) -> Optional[float]:
    """Recover ``e`` of a time-dependent strategy from a concession trace.

    ``trace`` is a list of (normalised time t, demanded own-utility).
    Inverts target(t) = floor + (start−floor)·(1 − t^(1/e)) pointwise and
    returns the median estimate; ``None`` when the trace never concedes
    (a firm negotiator has no finite exponent).
    """
    span = start - floor
    if span <= 0:
        raise ValueError("start must exceed floor")
    estimates = []
    for t, target in trace:
        if not 0.0 < t < 1.0:
            continue
        conceded = (start - target) / span
        if not 1e-6 < conceded < 1.0 - 1e-6:
            continue
        # t^(1/e) = conceded  =>  e = ln t / ln conceded
        estimates.append(float(np.log(t) / np.log(conceded)))
    if not estimates:
        return None
    return float(np.median(estimates))


def classify_negotiation_style(
    trace: Sequence[Tuple[float, float]],
    floor: float,
    start: float = 0.95,
) -> str:
    """Name the style behind a concession trace.

    - never concedes → ``firm``;
    - e < 0.8 → ``boulware``; 0.8 ≤ e ≤ 1.25 → ``linear``;
      e > 1.25 → ``conceder``.
    (Behaviour-dependent styles like tit-for-tat are indistinguishable
    from time-dependent ones without the opponent's trace; callers with
    both sides should check reciprocity first.)
    """
    exponent = fit_concession_exponent(trace, floor, start)
    if exponent is None:
        return "firm"
    if exponent < 0.8:
        return "boulware"
    if exponent <= 1.25:
        return "linear"
    return "conceder"


def trace_from_strategy(strategy, floor: float, samples: int = 9):
    """Sample a strategy's concession trace (for tests and calibration)."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    times = np.linspace(0.1, 0.9, samples)
    return [(float(t), strategy.target(float(t), floor, [])) for t in times]
