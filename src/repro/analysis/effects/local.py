"""Intraprocedural effect extraction: one function → atoms + call sites.

The scanner walks a function body (nested defs and lambdas included —
their effects are attributed to the enclosing function, which
over-approximates but never under-approximates), tracking a
flow-insensitive provenance map for local names so that writes and
method calls can be classified as fresh / self-rooted / parameter /
global.  Call results carry the callee's *return provenance*
(:func:`callee_return_prov`): a project helper handing back an alias of
module-level or instance state taints its result, so mutations through
the alias are not dropped as fresh.  Everything it cannot bound becomes
an :data:`~.model.UNRESOLVED_CALL` poison atom (or
:data:`~.model.UNKNOWN_PROV` provenance) rather than a silent pass.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import resolve as tables
from repro.analysis.effects.model import (
    FRESH,
    IO,
    MEMO,
    PROV_FRESH,
    PROV_GLOBAL,
    PROV_PARAM,
    PROV_SELF,
    PROV_UNKNOWN,
    RNG_DRAW,
    SELF,
    UNKNOWN_PROV,
    UNRESOLVED_CALL,
    WALL_CLOCK,
    Actual,
    CallSite,
    Effect,
    LocalResult,
    Prov,
    join_prov,
    map_write,
)
from repro.analysis.effects.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)

#: method calls whose result is a fresh value (not an alias of the receiver)
_FRESH_RESULT_METHODS = frozenset(
    {
        "copy", "deepcopy", "tolist", "astype", "most_common", "split",
        "rsplit", "splitlines", "strip", "lstrip", "rstrip", "lower",
        "upper", "join", "format", "replace", "encode", "decode",
        "digest", "hexdigest", "isoformat", "keys", "items", "values",
    }
)

_DISPLAY_NODES = (
    ast.Constant,
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.JoinedStr,
    ast.FormattedValue,
    ast.Lambda,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
)


class FunctionScanner:
    """Extracts the local effect summary of one project function."""

    def __init__(
        self, func: FunctionInfo, index: ProjectIndex, module: ModuleInfo
    ) -> None:
        self.func = func
        self.index = index
        self.module = module
        self.ctx = module.ctx
        self.result = LocalResult()
        self._atom_keys: Set[Effect] = set()
        self._global_decls: Set[str] = set()
        self._nonlocal_decls: Set[str] = set()
        self._bindings: Dict[str, List[ast.expr]] = {}
        self._inline_callables: Set[str] = set()
        self._inline_defs: Dict[str, List[ast.AST]] = {}
        self._inline_prov_stack: Set[int] = set()
        self._prov_cache: Dict[str, Prov] = {}
        self._prov_stack: Set[str] = set()
        self._type_cache: Dict[str, Tuple[str, ...]] = {}
        self._type_stack: Set[str] = set()
        self._call_funcs: Set[int] = set()
        self._read_self_seen = False

    # ------------------------------------------------------------------
    def run(self) -> LocalResult:
        node = self.func.node
        if self.func.has_memo_decorator:
            self._add(
                Effect(
                    MEMO,
                    "memoises results on the shared function object",
                    self.func.qualname,
                )
            )
        for name in self.func.unknown_decorators:
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"wrapped by unresolved decorator @{name}",
                    self.func.qualname,
                    detail=name,
                )
            )
        self._collect_bindings(node)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._call_funcs.add(id(sub.func))
        for sub in ast.walk(node):
            self._scan_node(sub)
        self.result.calls.sort(key=lambda site: (site.lineno, site.targets))
        return self.result

    # -- binding collection ---------------------------------------------
    def _collect_bindings(self, root: ast.AST) -> None:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    self._bind_target(target, sub.value)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                self._bind_target(sub.target, sub.value)
            elif isinstance(sub, ast.AugAssign):
                self._bind_target(sub.target, sub.value)
            elif isinstance(sub, ast.NamedExpr):
                self._bind_target(sub.target, sub.value)
            elif isinstance(sub, ast.For):
                self._bind_target(sub.target, sub.iter)
            elif isinstance(sub, ast.comprehension):
                self._bind_target(sub.target, sub.iter)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                self._bind_target(sub.optional_vars, sub.context_expr)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not self.func.node:
                    self._inline_callables.add(sub.name)
                    self._inline_defs.setdefault(sub.name, []).append(sub)
            elif isinstance(sub, ast.Global):
                self._global_decls.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                self._nonlocal_decls.update(sub.names)
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                self._bindings.setdefault(sub.name, [])

    def _bind_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._bindings.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, value)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value)
        # attribute/subscript targets are writes, handled in _scan_node

    # -- provenance ------------------------------------------------------
    def prov_of(self, expr: ast.expr) -> Prov:
        """Provenance of an expression (flow-insensitive, conservative)."""
        if isinstance(expr, ast.Name):
            return self._prov_of_name(expr.id)
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.prov_of(expr.value)
        if isinstance(expr, ast.Call):
            return self._prov_of_call(expr)
        if isinstance(expr, ast.BoolOp):
            prov = FRESH
            for value in expr.values:
                prov = join_prov(prov, self.prov_of(value))
            return prov
        if isinstance(expr, ast.IfExp):
            return join_prov(self.prov_of(expr.body), self.prov_of(expr.orelse))
        if isinstance(expr, ast.NamedExpr):
            return self.prov_of(expr.value)
        if isinstance(expr, ast.Await):
            return UNKNOWN_PROV
        if isinstance(expr, _DISPLAY_NODES):
            return FRESH
        return FRESH

    def _prov_of_name(self, name: str) -> Prov:
        if name == self.func.receiver and name:
            return SELF
        if name in self.func.params:
            return Prov(PROV_PARAM, name)
        if name in self._global_decls:
            return Prov("global", name)
        if name in self._bindings:
            return self._prov_of_local(name)
        if name in self._nonlocal_decls:
            return UNKNOWN_PROV
        if name in self._inline_callables:
            return FRESH
        if name in self.module.mutable_globals:
            return Prov("global", name)
        if name in self.module.functions or name in self.module.classes:
            return Prov("global", name)
        if name in self.ctx._aliases:
            return Prov("global", name)
        if name in tables.PURE_CALLS or name in {"True", "False", "None"}:
            return FRESH
        return UNKNOWN_PROV

    def _prov_of_local(self, name: str) -> Prov:
        cached = self._prov_cache.get(name)
        if cached is not None:
            return cached
        if name in self._prov_stack:
            return UNKNOWN_PROV
        self._prov_stack.add(name)
        try:
            prov = FRESH
            for value in self._bindings[name]:
                prov = join_prov(prov, self.prov_of(value))
        finally:
            self._prov_stack.discard(name)
        self._prov_cache[name] = prov
        return prov

    def _prov_of_call(self, call: ast.Call) -> Prov:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _FRESH_RESULT_METHODS:
                return FRESH
            dotted = self._dotted_of(func)
            if dotted is not None:
                if self._is_external_dotted(dotted):
                    return FRESH
                project = self._project_lookup(dotted)
                if project is not None:
                    kind, qualname = project
                    if kind == "class":
                        return FRESH  # constructor → fresh instance
                    return self._returned_prov(call, qualname)
            # method-call results conservatively alias their receiver
            # (covers ``self._buckets.setdefault(...)`` handing back a
            # self-reachable list)
            return self.prov_of(func.value)
        if isinstance(func, ast.Name):
            return self._prov_of_name_call(call, func.id)
        return FRESH

    def _prov_of_name_call(self, call: ast.Call, name: str) -> Prov:
        """Provenance of a bare-name call's result.

        Project functions may hand back aliases of shared state, so their
        return provenance is computed from the callee body rather than
        assumed fresh; local lambdas and nested defs are resolved through
        their own return expressions.  Callables the analysis cannot
        bound already poison the caller at the call site
        (:meth:`_scan_name_call`), so their result provenance is moot.
        """
        if name in self._inline_callables:
            return self._inline_return_prov(self._inline_defs.get(name, []))
        if name in self._bindings:
            values = self._bindings[name]
            if values and all(isinstance(v, ast.Lambda) for v in values):
                return self._inline_return_prov(values)
            return FRESH  # call itself is UNRESOLVED_CALL poison
        if name in self.func.params:
            return FRESH  # call itself is CALLS_PARAM poison
        if name in self.module.functions:
            return self._returned_prov(call, self.module.functions[name])
        if name in self.module.classes:
            return FRESH  # constructor → fresh instance
        dotted = self.ctx._aliases.get(name, name)
        if dotted in self.index.functions:
            return self._returned_prov(call, dotted)
        # builtins / external callables return fresh (or immutable) values
        return FRESH

    def _inline_return_prov(self, nodes: Sequence[ast.AST]) -> Prov:
        """Join of the return-expression provenances of local callables."""
        prov = FRESH
        for node in nodes:
            if id(node) in self._inline_prov_stack:
                return UNKNOWN_PROV
            self._inline_prov_stack.add(id(node))
            try:
                if isinstance(node, ast.Lambda):
                    prov = join_prov(prov, self.prov_of(node.body))
                    continue
                for sub in ast.walk(node):
                    value: Optional[ast.expr] = None
                    if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                        value = sub.value
                    if value is not None:
                        prov = join_prov(prov, self.prov_of(value))
                    if prov.kind == PROV_UNKNOWN:
                        return prov
            finally:
                self._inline_prov_stack.discard(id(node))
        return prov

    def _returned_prov(self, call: ast.Call, qualname: str) -> Prov:
        """Caller-side provenance of a resolved project call's result."""
        ret = callee_return_prov(self.index, qualname)
        if ret.kind == PROV_FRESH:
            return FRESH
        if ret.kind == PROV_GLOBAL:
            return ret
        callee = self.index.functions.get(qualname)
        if ret.kind == PROV_PARAM and callee is not None:
            actual = self._actual_for_param(call, callee, ret.name)
            if actual is not None:
                return self.prov_of(actual)
        if ret.kind == PROV_SELF and callee is not None:
            # explicit ``Class.method(obj, ...)``: the result aliases the
            # first positional argument (the receiver)
            if callee.receiver and call.args and not isinstance(
                call.args[0], ast.Starred
            ):
                return self.prov_of(call.args[0])
        return UNKNOWN_PROV

    def _actual_for_param(
        self, call: ast.Call, callee: FunctionInfo, param: str
    ) -> Optional[ast.expr]:
        """The argument expression bound to ``param``, when unambiguous."""
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if callee.receiver:
            # explicit receiver calls shift positions; refuse to guess
            return None
        if param not in callee.params:
            return None
        position = callee.params.index(param)
        if position >= len(call.args):
            return None  # default used — may itself alias shared state
        if any(
            isinstance(arg, ast.Starred) for arg in call.args[: position + 1]
        ):
            return None
        return call.args[position]

    # -- type inference --------------------------------------------------
    def _classes_of(self, expr: ast.expr) -> List[ClassInfo]:
        """Project classes ``expr`` may evaluate to (empty = untyped).

        Annotations are trusted (mypy enforces them in CI); inferred
        local bindings are only trusted when *every* binding is typed.
        """
        names = self._class_names_of(expr)
        return [
            self.index.classes[name]
            for name in names
            if name in self.index.classes
        ]

    def _class_names_of(self, expr: ast.expr) -> Tuple[str, ...]:
        if isinstance(expr, ast.Name):
            return self._class_names_of_name(expr.id)
        if isinstance(expr, ast.Attribute):
            found: Set[str] = set()
            for base in self._classes_of(expr.value):
                for cls in self.index.field_classes(base, expr.attr):
                    found.add(cls.qualname)
            return tuple(sorted(found))
        if isinstance(expr, ast.Call):
            return self._class_names_of_call(expr)
        if isinstance(expr, ast.IfExp):
            branches = set(self._class_names_of(expr.body))
            branches.update(self._class_names_of(expr.orelse))
            return tuple(sorted(branches))
        if isinstance(expr, ast.BoolOp):
            joined: Set[str] = set()
            for value in expr.values:
                joined.update(self._class_names_of(value))
            return tuple(sorted(joined))
        if isinstance(expr, ast.NamedExpr):
            return self._class_names_of(expr.value)
        return ()

    def _class_names_of_name(self, name: str) -> Tuple[str, ...]:
        if name == self.func.receiver and name:
            cls = self.index.class_of(self.func)
            return (cls.qualname,) if cls is not None else ()
        found: Set[str] = set()
        if name in self.func.param_type_refs:
            for ref in self.func.param_type_refs[name]:
                resolved = self.index.resolve_class(ref, self.func.module)
                if resolved is not None:
                    found.add(resolved.qualname)
        if name in self._bindings:
            found.update(self._inferred_local_classes(name))
        return tuple(sorted(found))

    def _inferred_local_classes(self, name: str) -> Tuple[str, ...]:
        cached = self._type_cache.get(name)
        if cached is not None:
            return cached
        if name in self._type_stack:
            return ()
        self._type_stack.add(name)
        try:
            inferred: Set[str] = set()
            typed = True
            for value in self._bindings[name]:
                value_names = self._class_names_of(value)
                if not value_names:
                    typed = False
                    break
                inferred.update(value_names)
        finally:
            self._type_stack.discard(name)
        result = tuple(sorted(inferred)) if typed else ()
        self._type_cache[name] = result
        return result

    def _class_names_of_call(self, call: ast.Call) -> Tuple[str, ...]:
        """Constructor calls type as the constructed class; calls to
        precisely-resolved project functions type as their return
        annotation."""
        func = call.func
        callees: List[str] = []
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.module.classes:
                return (self.module.classes[name],)
            dotted = self.ctx._aliases.get(name, name)
            if dotted in self.index.classes:
                return (dotted,)
            if name in self.module.functions:
                callees = [self.module.functions[name]]
            elif dotted in self.index.functions:
                callees = [dotted]
        elif isinstance(func, ast.Attribute):
            dotted_attr = self._dotted_of(func)
            if dotted_attr is not None:
                if dotted_attr in self.index.classes:
                    return (dotted_attr,)
                if dotted_attr in self.index.functions:
                    callees = [dotted_attr]
            if not callees:
                targets: Set[str] = set()
                for cls in self._classes_of(func.value):
                    targets.update(
                        self.index.override_targets(cls, func.attr)
                    )
                callees = sorted(targets)
        returned: Set[str] = set()
        for qualname in callees:
            callee = self.index.functions.get(qualname)
            if callee is None:
                return ()
            refs: Set[str] = set()
            for ref in callee.return_type_refs:
                resolved = self.index.resolve_class(ref, callee.module)
                if resolved is not None:
                    refs.add(resolved.qualname)
            if not refs:
                return ()
            returned.update(refs)
        return tuple(sorted(returned))

    # -- atom helpers ----------------------------------------------------
    def _add(self, effect: Optional[Effect]) -> None:
        if effect is None or effect in self._atom_keys:
            return
        self._atom_keys.add(effect)
        self.result.atoms.append(effect)

    def _add_read_self(self) -> None:
        if self._read_self_seen:
            return
        self._read_self_seen = True
        label = self.func.class_name or "instance"
        self._add(
            Effect(
                "read_self",
                f"reads instance state of {label}",
                self.func.qualname,
            )
        )

    # -- node dispatch ---------------------------------------------------
    def _scan_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._scan_write_target(target)
        elif isinstance(node, ast.AnnAssign):
            self._scan_write_target(node.target)
        elif isinstance(node, ast.AugAssign):
            self._scan_write_target(node.target, augmented=True)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._scan_write_target(target)
        elif isinstance(node, ast.Attribute):
            self._scan_attribute(node)
        elif isinstance(node, ast.Name):
            self._scan_name(node)

    def _scan_write_target(self, target: ast.expr, augmented: bool = False) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self._global_decls:
                self._add(
                    Effect(
                        "write_global",
                        f"rebinds module global '{name}'",
                        self.func.qualname,
                        detail=name,
                    )
                )
            elif augmented and name in self.module.mutable_globals:
                self._add(
                    Effect(
                        "write_global",
                        f"augments module global '{name}' without a global "
                        "declaration",
                        self.func.qualname,
                        detail=name,
                    )
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_write_target(element, augmented=augmented)
            return
        if isinstance(target, ast.Starred):
            self._scan_write_target(target.value, augmented=augmented)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            prov = self.prov_of(base)
            described = self._describe_target(target)
            self._add(
                map_write(prov, f"assigns {described}", self.func.qualname)
            )
            if isinstance(target, ast.Attribute):
                self._scan_setter(target, prov)

    def _scan_setter(self, target: ast.Attribute, prov: Prov) -> None:
        """Absorb a property setter when ``self.attr = ...`` has one."""
        if not (isinstance(target.value, ast.Name) and prov == SELF):
            return
        cls = self.index.class_of(self.func)
        if cls is None:
            return
        for candidate in self.index.mro_classes(cls):
            setter = candidate.setters.get(target.attr)
            if setter is not None:
                self.result.calls.append(
                    CallSite(
                        lineno=target.lineno,
                        targets=(setter,),
                        receiver=SELF,
                    )
                )
                return

    def _describe_target(self, target: ast.expr) -> str:
        try:
            text = ast.unparse(target)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            text = "<target>"
        if len(text) > 60:
            text = text[:57] + "..."
        return f"'{text}'"

    def _scan_attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if node.attr == "now":
            self._add(
                Effect(
                    "read_clock",
                    "reads the simulation clock ('.now')",
                    self.func.qualname,
                )
            )
        root = node
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if not isinstance(root, ast.Name):
            return
        prov = self._prov_of_name(root.id)
        if prov == SELF:
            if self._is_bare_self_method_ref(node):
                return
            self._add_read_self()
        self._absorb_property(node)
        # reads of mutable module globals are reported by ``_scan_name``
        # when the walk reaches the root ``Name`` node itself

    def _absorb_property(self, node: ast.Attribute) -> None:
        """A read of ``base.attr`` runs the property getter when the
        typed receiver declares one — absorb it as a call site."""
        targets: Set[str] = set()
        for cls in self._classes_of(node.value):
            targets.update(self.index.property_targets(cls, node.attr))
        if targets:
            self.result.calls.append(
                CallSite(
                    lineno=node.lineno,
                    targets=tuple(sorted(targets)),
                    receiver=self.prov_of(node.value),
                )
            )

    def _is_bare_self_method_ref(self, node: ast.Attribute) -> bool:
        """``self.method(...)`` where ``method`` is a class-level def is a
        method lookup, not an instance-state read."""
        if id(node) not in self._call_funcs:
            return False
        if not isinstance(node.value, ast.Name):
            return False
        if node.value.id != self.func.receiver:
            return False
        cls = self.index.class_of(self.func)
        if cls is None:
            return False
        return bool(self.index.override_targets(cls, node.attr))

    def _scan_name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        name = node.id
        if name in self._bindings or name in self.func.params:
            return
        if name == self.func.receiver and name:
            return
        imported_read = self._imported_mutable(name)
        if name in self.module.mutable_globals or name in self._global_decls:
            self._add(
                Effect(
                    "read_global",
                    f"reads module global '{name}'",
                    self.func.qualname,
                    detail=name,
                )
            )
        elif imported_read is not None:
            self._add(
                Effect(
                    "read_global",
                    f"reads shared object '{name}' imported from "
                    f"{imported_read}",
                    self.func.qualname,
                    detail=name,
                )
            )

    def _imported_mutable(self, name: str) -> Optional[str]:
        """Module path when ``name`` is an import of a mutable project
        module-level binding."""
        dotted = self.ctx._aliases.get(name)
        if dotted is None or "." not in dotted:
            return None
        module_path, _, attr = dotted.rpartition(".")
        module = self.index.modules.get(module_path)
        if module is not None and attr in module.mutable_globals:
            return module_path
        return None

    # -- call scanning ---------------------------------------------------
    def _scan_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Lambda):
            return  # immediately-invoked; body already attributed
        if isinstance(func, ast.Name):
            self._scan_name_call(call, func.id)
        elif isinstance(func, ast.Attribute):
            self._scan_method_call(call, func)
        else:
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    "calls a dynamically computed callable",
                    self.func.qualname,
                )
            )

    def _scan_name_call(self, call: ast.Call, name: str) -> None:
        if name in self._inline_callables:
            return  # nested def; body already attributed
        if name in self._bindings:
            if all(
                isinstance(value, ast.Lambda) for value in self._bindings[name]
            ):
                return  # local lambda alias
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"calls local callable '{name}' the analysis cannot "
                    "bound",
                    self.func.qualname,
                    detail=name,
                )
            )
            return
        if name in self.func.params:
            self._add(
                Effect(
                    "calls_param",
                    f"calls parameter '{name}'",
                    self.func.qualname,
                    detail=name,
                )
            )
            return
        if name in self.module.functions:
            self._add_project_call(call, [self.module.functions[name]], FRESH)
            return
        if name in self.module.classes:
            self._add_constructor_call(call, self.module.classes[name])
            return
        dotted = self.ctx._aliases.get(name, name)
        self._resolve_dotted_call(call, dotted)

    def _scan_method_call(self, call: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        receiver = func.value

        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            self._scan_super_call(call, method)
            return

        dotted = self._dotted_of(func)
        if dotted is not None and self._is_external_dotted(dotted):
            self._resolve_dotted_call(call, dotted)
            return
        if dotted is not None:
            project = self._project_lookup(dotted)
            if project is not None:
                kind, qualname = project
                if kind == "function":
                    self._add_project_call(call, [qualname], UNKNOWN_PROV)
                else:
                    self._add_constructor_call(call, qualname)
                return

        receiver_prov = self.prov_of(receiver)
        receiver_classes = self._classes_of(receiver)
        if receiver_classes:
            typed_targets: Set[str] = set()
            for cls in receiver_classes:
                typed_targets.update(self.index.override_targets(cls, method))
            if typed_targets:
                self._add_project_call(
                    call, sorted(typed_targets), receiver_prov
                )
                return

        table_hit = (
            method in tables.RNG_METHODS
            or method in tables.MUTATOR_METHODS
            or method in tables.IO_METHODS
            or method in tables.PURE_METHODS
        )
        matched = False
        # name-join is the fallback of last resort: never for receivers
        # typed to project classes (their method set is authoritative),
        # and never for builtin container/RNG verbs (tables win)
        if not table_hit and not receiver_classes:
            targets = self.index.methods_by_name.get(method, [])
            if targets:
                matched = True
                self._add_project_call(call, targets, receiver_prov)

        if method in tables.RNG_METHODS:
            matched = True
            if receiver_prov.kind not in (PROV_FRESH, PROV_PARAM):
                self._add(
                    Effect(
                        RNG_DRAW,
                        f"draws '.{method}()' from an RNG that is not "
                        "threaded as a parameter",
                        self.func.qualname,
                        detail=method,
                    )
                )
        if method in tables.MUTATOR_METHODS:
            matched = True
            self._add(
                map_write(
                    receiver_prov,
                    f"mutates its receiver via '.{method}()'",
                    self.func.qualname,
                )
            )
        if method in tables.IO_METHODS:
            matched = True
            if receiver_prov.kind != PROV_FRESH:
                self._add(
                    Effect(
                        IO,
                        f"performs I/O via '.{method}()'",
                        self.func.qualname,
                        detail=method,
                    )
                )
        if method in tables.PURE_METHODS:
            matched = True
        if not matched:
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"calls '.{method}()' on a receiver the analysis "
                    "cannot type",
                    self.func.qualname,
                    detail=method,
                )
            )

    def _scan_super_call(self, call: ast.Call, method: str) -> None:
        cls = self.index.class_of(self.func)
        targets: List[str] = []
        if cls is not None:
            for candidate in self.index.mro_classes(cls)[1:]:
                if method in candidate.methods:
                    targets = [candidate.methods[method]]
                    break
        if targets:
            self._add_project_call(call, targets, SELF)
        else:
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"calls super().{method}() with no resolvable project "
                    "base",
                    self.func.qualname,
                    detail=method,
                )
            )

    # -- dotted resolution ----------------------------------------------
    def _dotted_of(self, node: ast.expr) -> Optional[str]:
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.ctx._aliases.get(current.id)
        if base is None:
            if current.id in self.module.classes:
                base = self.module.classes[current.id]
            else:
                return None
        parts.append(base)
        return ".".join(reversed(parts))

    def _is_external_dotted(self, dotted: str) -> bool:
        root = dotted.split(".")[0]
        return root in tables.KNOWN_STDLIB_ROOTS and root not in self.index.modules

    def _project_lookup(self, dotted: str) -> Optional[Tuple[str, str]]:
        if dotted in self.index.functions:
            return ("function", dotted)
        if dotted in self.index.classes:
            return ("class", dotted)
        return None

    def _resolve_dotted_call(self, call: ast.Call, dotted: str) -> None:
        project = self._project_lookup(dotted)
        if project is not None:
            kind, qualname = project
            if kind == "function":
                receiver = FRESH
                if self.index.functions[qualname].class_name:
                    receiver = UNKNOWN_PROV
                self._add_project_call(call, [qualname], receiver)
            else:
                self._add_constructor_call(call, qualname)
            return
        root = dotted.split(".")[0]
        if dotted in tables.UNKNOWN_CALLS:
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"calls dynamic builtin '{dotted}'",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        if dotted in tables.ARG0_MUTATORS:
            prov = self.prov_of(call.args[0]) if call.args else UNKNOWN_PROV
            self._add(
                map_write(
                    prov,
                    f"mutates its first argument via {dotted}()",
                    self.func.qualname,
                )
            )
            return
        if dotted in tables.FRESH_NUMPY_RANDOM:
            return
        if dotted in tables.GLOBAL_STATE_CALLS:
            self._add(
                Effect(
                    "write_global",
                    f"mutates interpreter-global settings via {dotted}()",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        if tables.matches_prefix(dotted, tables.RNG_PREFIXES):
            self._add(
                Effect(
                    RNG_DRAW,
                    f"draws from shared module-level RNG {dotted}()",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        if tables.matches_prefix(dotted, tables.WALL_PREFIXES):
            self._add(
                Effect(
                    WALL_CLOCK,
                    f"reads the host wall clock via {dotted}()",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        if dotted in tables.PURE_CALLS:
            return
        # pure prefixes come before the I/O prefixes: ``os.path.`` /
        # ``posixpath.`` are path algebra, not I/O, and must win over
        # the broader ``os.`` entry
        if tables.matches_prefix(dotted, tables.PURE_PREFIXES):
            return
        if tables.matches_prefix(dotted, tables.IO_PREFIXES):
            self._add(
                Effect(
                    IO,
                    f"performs I/O via {dotted}()",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        if tables.matches_prefix(dotted, tables.PURE_NUMPY_PREFIXES):
            return
        if root in tables.KNOWN_STDLIB_ROOTS:
            return
        if dotted.startswith("repro.") or root in self.index.modules:
            # a project path the registry does not know (dynamic attr,
            # re-export, missing module) — refuse to guess
            self._add(
                Effect(
                    UNRESOLVED_CALL,
                    f"calls unregistered project path {dotted}()",
                    self.func.qualname,
                    detail=dotted,
                )
            )
            return
        self._add(
            Effect(
                UNRESOLVED_CALL,
                f"calls unknown callable '{dotted}'",
                self.func.qualname,
                detail=dotted,
            )
        )

    # -- call-site construction -----------------------------------------
    def _add_constructor_call(self, call: ast.Call, class_qual: str) -> None:
        cls = self.index.classes.get(class_qual)
        if cls is None:
            return
        targets: List[str] = []
        for name in ("__init__", "__post_init__"):
            for candidate in self.index.mro_classes(cls):
                if name in candidate.methods:
                    targets.append(candidate.methods[name])
                    break
        if targets:
            self._add_project_call(call, targets, FRESH)

    def _add_project_call(
        self, call: ast.Call, targets: Sequence[str], receiver: Prov
    ) -> None:
        actuals = self._map_actuals(call, targets)
        self.result.calls.append(
            CallSite(
                lineno=call.lineno,
                targets=tuple(sorted(set(targets))),
                receiver=receiver,
                actuals=actuals,
            )
        )

    def _map_actuals(
        self, call: ast.Call, targets: Sequence[str]
    ) -> Tuple[Tuple[str, Actual], ...]:
        by_param: Dict[str, Actual] = {}
        for qualname in targets:
            callee = self.index.functions.get(qualname)
            if callee is None:
                continue
            for position, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    continue
                if position < len(callee.params):
                    self._merge_actual(
                        by_param, callee.params[position], self._actual_of(arg)
                    )
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                if keyword.arg in callee.params:
                    self._merge_actual(
                        by_param, keyword.arg, self._actual_of(keyword.value)
                    )
        return tuple(sorted(by_param.items()))

    @staticmethod
    def _merge_actual(
        by_param: Dict[str, Actual], param: str, actual: Actual
    ) -> None:
        existing = by_param.get(param)
        if existing is None:
            by_param[param] = actual
            return
        by_param[param] = Actual(
            prov=join_prov(existing.prov, actual.prov),
            is_inline_callable=existing.is_inline_callable
            and actual.is_inline_callable,
            func_ref=existing.func_ref
            if existing.func_ref == actual.func_ref
            else "",
        )

    def _actual_of(self, arg: ast.expr) -> Actual:
        if isinstance(arg, ast.Lambda):
            return Actual(prov=FRESH, is_inline_callable=True)
        if isinstance(arg, ast.Name):
            if arg.id in self._inline_callables:
                return Actual(prov=FRESH, is_inline_callable=True)
            if arg.id in self.module.functions:
                return Actual(
                    prov=FRESH, func_ref=self.module.functions[arg.id]
                )
            dotted = self.ctx._aliases.get(arg.id)
            if dotted is not None and dotted in self.index.functions:
                return Actual(prov=FRESH, func_ref=dotted)
            return Actual(prov=self.prov_of(arg))
        if isinstance(arg, ast.Attribute):
            # bound-method reference, e.g. passing ``self._compute``
            if isinstance(arg.value, ast.Name):
                receiver_prov = self._prov_of_name(arg.value.id)
                if receiver_prov == SELF:
                    cls = self.index.class_of(self.func)
                    if cls is not None:
                        bound = self.index.override_targets(cls, arg.attr)
                        if len(bound) == 1:
                            return Actual(prov=SELF, func_ref=bound[0])
            return Actual(prov=self.prov_of(arg))
        return Actual(prov=self.prov_of(arg))


def callee_return_prov(index: ProjectIndex, qualname: str) -> Prov:
    """Provenance of the value ``qualname`` returns, callee-relative.

    Join of the provenances of every ``return``/``yield`` expression in
    the callee body (nested defs included — an over-approximation that
    never under-approximates).  ``PROV_PARAM``/``PROV_SELF`` results are
    mapped through the actual arguments at each call site; a cycle in
    the return-aliasing chain refuses to bound and yields
    :data:`~.model.UNKNOWN_PROV`.  Memoised per index because the result
    is intrinsic to the callee.
    """
    cached = index.return_prov_cache.get(qualname)
    if cached is not None:
        return cached
    if qualname in index.return_prov_stack:
        return UNKNOWN_PROV
    func = index.functions.get(qualname)
    if func is None:
        return UNKNOWN_PROV
    module = index.modules.get(func.module)
    if module is None:
        return UNKNOWN_PROV
    index.return_prov_stack.add(qualname)
    try:
        scanner = FunctionScanner(func, index, module)
        scanner._collect_bindings(func.node)
        prov = FRESH
        for sub in ast.walk(func.node):
            value: Optional[ast.expr] = None
            if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = sub.value
            if value is not None:
                prov = join_prov(prov, scanner.prov_of(value))
            if prov.kind == PROV_UNKNOWN:
                break
    finally:
        index.return_prov_stack.discard(qualname)
    index.return_prov_cache[qualname] = prov
    return prov


def scan_function(
    func: FunctionInfo, index: ProjectIndex
) -> LocalResult:
    """Extract local atoms and call sites for ``func``."""
    module = index.modules[func.module]
    return FunctionScanner(func, index, module).run()
