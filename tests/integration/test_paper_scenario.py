"""Acceptance test: the paper's §1 scenario, step by step.

"Iris is a young researcher who is investigating the different styles of
folk jewelry that have been worn across Europe through the times. ...
She uses automatic feeds of history and tourism magazine articles on new
exhibitions and collections, as well as auction catalogs ... These arrive
at her office as multimedia documents and are often annotated by her.
She stores documents and other objects of high interest as well as her
annotations in a personal information base that she maintains, which she
also shares with Jason, a colleague in a different institution who is
working on traditional dance forms."

Every sentence of that paragraph maps to an assertion below.
"""

import pytest

from repro import QoSRequirement, build_agora
from repro.sources import PERSONAL_DOMAIN, PersonalInformationBase
from repro.workloads import build_iris_scenario


@pytest.fixture(scope="module")
def world():
    agora = build_agora(seed=2007, n_sources=10, items_per_source=40,
                        calibration_pairs=300)
    scenario = build_iris_scenario(agora)
    return agora, scenario


class TestPaperScenario:
    def test_iris_researches_folk_jewelry_across_repositories(self, world):
        """'...accesses repositories on holdings of many museums,
        government properties, and regional cultural organizations.'"""
        agora, scenario = world
        query = scenario.workload.topic_query(
            "folk-jewelry", k=10, issuer_id="iris",
            requirement=QoSRequirement(min_completeness=0.1),
            target_domains=("museum", "auction", "cultural-org"),
        )
        result = scenario.iris.ask(query)
        assert result.ranked_items
        # Material really does come from multiple repository kinds.
        domains_used = {c.provider_id.rsplit("-src-", 1)[0]
                        for c in result.contracts}
        assert len(domains_used) >= 2

    def test_automatic_feeds_deliver_new_material(self, world):
        """'She uses automatic feeds of ... magazine articles ... as well
        as auction catalogs.'"""
        agora, scenario = world
        standing_id = scenario.iris.subscribe(
            scenario.workload.topic_query(
                "folk-jewelry", k=10, issuer_id="iris",
                target_domains=("auction", "magazine"),
            ),
            threshold=0.25,
        )
        agora.start_feeds()
        agora.run(until=agora.now + 80.0)
        hits = scenario.iris.feed_inbox()
        assert standing_id >= 0
        assert agora.feeds.items_screened > 0
        assert all(
            hit.match.item.domain in ("auction", "magazine") for hit in hits
        )

    def test_items_are_annotated_and_stored_in_personal_base(self, world):
        """'These ... are often annotated by her.  She stores documents
        and other objects of high interest as well as her annotations in
        a personal information base.'"""
        agora, scenario = world
        query = scenario.workload.topic_query(
            "folk-jewelry", k=5, issuer_id="iris",
        )
        result = scenario.iris.ask(query)
        base = PersonalInformationBase(
            "iris", agora.engine, agora.sim.rng.spawn("scenario-pib"),
        )
        for item in result.ranked_items[:3]:
            record = scenario.annotations.annotate(
                "iris", item, text="for the comparative study",
            )
            base.save(item, now=agora.now)
            base.save(record.annotation, now=agora.now)
        assert base.collection_size == 6
        assert len(base.annotations(now=agora.now)) == 3
        assert len(scenario.annotations.annotations_by("iris")) >= 3

    def test_base_is_shared_with_jason_only(self, world):
        """'...which she also shares with Jason, a colleague in a
        different institution.'"""
        agora, scenario = world
        base = PersonalInformationBase(
            "iris", agora.engine, agora.sim.rng.spawn("scenario-pib2"),
        )
        query = scenario.workload.topic_query(
            "folk-jewelry", k=5, issuer_id="iris",
        )
        result = scenario.iris.ask(query)
        base.save_all(result.ranked_items[:3], now=agora.now)
        base.share_with("jason")
        subquery = scenario.workload.topic_query(
            "folk-jewelry", k=3, issuer_id="jason",
        ).restricted_to(PERSONAL_DOMAIN)
        jason_answer = base.answer(subquery, now=agora.now, consumer_id="jason")
        stranger_answer = base.answer(subquery, now=agora.now,
                                      consumer_id="some-stranger")
        assert not jason_answer.declined
        assert jason_answer.size > 0
        assert stranger_answer.declined

    def test_jason_works_on_dance_forms(self, world):
        """'...who is working on traditional dance forms.'"""
        agora, scenario = world
        query = scenario.workload.topic_query(
            "dance-forms", k=8, issuer_id="jason",
        )
        result = scenario.jason.ask(query)
        assert result.ranked_items
        relevant = sum(
            1 for item in result.ranked_items
            if agora.oracle.relevance(query, item) > 0.5
        )
        assert relevant > 0

    def test_friendship_enables_social_machinery(self, world):
        """Iris and Jason are friends; privacy honours that tie."""
        agora, scenario = world
        assert scenario.social_graph.are_friends("iris", "jason")
        assert scenario.privacy.can_see("jason", "iris", "interests")
        assert not scenario.privacy.can_see("nobody", "iris", "interests")
