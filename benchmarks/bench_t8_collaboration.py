"""T8 (§7 Collaboration): group coverage and MQO savings vs group size.

Regenerates the T8 table: groups of 1..4 members (with diverse angles on
a shared goal) run rounds of queries; we measure how much of the
reachable relevant pool the shared workspace covers after each round, how
many rounds it takes to reach 30% coverage, and how much execution the
multi-query optimizer saves.  Expected shape: bigger groups cover more,
faster; MQO savings grow with group size.
"""

import numpy as np
import pytest

from repro import Consumer, UserProfile, build_agora
from repro.collaboration import CollaborationSession, SharedJobExecutor
from repro.experiments import ExperimentResult
from repro.query import ExecutionContext
from repro.workloads import QueryWorkloadGenerator

GOAL_TOPIC = "regional-history"
ANGLES = ["regional-history", "folk-jewelry", "dance-forms", "traditional-costume"]


def _relevant_pool(agora, query):
    seen = set()
    for source in agora.sources.values():
        for item in source.visible_items(agora.now):
            if agora.oracle.is_relevant(query, item):
                seen.add(item.item_id)
    return seen


def run_t8(seed=53, rounds=4, coverage_target=0.3) -> ExperimentResult:
    result = ExperimentResult(
        "T8", "Group coverage and shared work vs group size",
        ["group_size", "coverage_after_rounds", "rounds_to_30pct",
         "mqo_savings_ratio"],
    )
    for group_size in (1, 2, 3, 4):
        agora = build_agora(seed=seed, n_sources=10, items_per_source=30,
                            calibration_pairs=200)
        space = agora.topic_space
        workload = QueryWorkloadGenerator(
            space, agora.vocabulary, agora.sim.rng.spawn("t8-q"),
        )
        goal_query = workload.topic_query(GOAL_TOPIC, k=10)
        relevant = _relevant_pool(agora, goal_query)
        session = CollaborationSession(goal_latent=goal_query.intent_latent)
        consumers = {}
        for index in range(group_size):
            angle = ANGLES[index % len(ANGLES)]
            profile = UserProfile(
                user_id=f"member-{index}",
                interests=0.6 * space.basis(GOAL_TOPIC, 0.9)
                + 0.4 * space.basis(angle, 0.9),
            )
            session.add_member(profile)
            consumers[profile.user_id] = Consumer(agora, profile, planner="greedy")
        rounds_to_target = None
        coverage = 0.0
        savings = []
        context = ExecutionContext(
            registry=agora.registry, oracle=agora.oracle,
            calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
            consumer_id="group",
        )
        mqo = SharedJobExecutor(context)
        for round_index in range(rounds):
            # Each round the group re-queries the *shared* goal — those
            # jobs overlap across members and the MQO runs them once —
            # while each member also explores from their personal angle.
            round_goal = workload.topic_query(GOAL_TOPIC, k=12)
            plans, queries = {}, {}
            for user_id, consumer in consumers.items():
                goal_plan, __, __u = consumer.plan_query(round_goal)
                personal = workload.interest_query(
                    consumer.active_profile(), k=12, sharpen=1.5,
                )
                personal_plan, __, __u = consumer.plan_query(personal)
                if goal_plan is not None:
                    plans[f"{user_id}#goal"] = goal_plan
                    queries[f"{user_id}#goal"] = round_goal
                if personal_plan is not None:
                    plans[f"{user_id}#angle"] = personal_plan
                    queries[f"{user_id}#angle"] = personal
            shared = mqo.execute(plans, queries)
            savings.append(shared.report.savings_ratio)
            for key, results in shared.member_results.items():
                member_id = key.split("#")[0]
                session.record_results(member_id, results)
            coverage = session.group_coverage(
                agora.oracle, goal_query, len(relevant),
            )
            if rounds_to_target is None and coverage >= coverage_target:
                rounds_to_target = round_index + 1
        result.add_row(
            group_size,
            coverage,
            rounds_to_target if rounds_to_target is not None else f">{rounds}",
            float(np.mean(savings)),
        )
    result.add_note(
        "expected shape: coverage grows with group size; larger groups "
        "share more retrieval work"
    )
    return result


@pytest.mark.benchmark(group="T8")
def test_t8_collaboration(benchmark):
    result = benchmark.pedantic(run_t8, rounds=1, iterations=1)
    result.print()
    coverage = {row[0]: row[1] for row in result.rows}
    assert coverage[4] >= coverage[1]
    savings = {row[0]: row[3] for row in result.rows}
    assert savings[4] >= savings[1]


if __name__ == "__main__":
    run_t8().print()
