"""Tests for the sorted, bucketed collection index."""

import numpy as np
import pytest

from repro.data import InformationItem
from repro.sources import CollectionIndex


def _item(index, domain="museum"):
    return InformationItem(
        item_id=f"ci-{domain}-{index}", domain=domain, latent=np.zeros(2)
    )


@pytest.fixture
def index():
    return CollectionIndex()


class TestVisibility:
    def test_empty_index(self, index):
        assert index.size == 0
        assert index.visible_items(10.0) == []
        assert index.visible_count(10.0) == 0
        assert index.domain_size("museum") == 0

    def test_prefix_by_visibility_time(self, index):
        early, late = _item(0), _item(1)
        index.add(late, visible_at=50.0)
        index.add(early, visible_at=5.0)
        assert index.visible_items(0.0) == []
        assert index.visible_items(10.0) == [early]
        assert index.visible_items(60.0) == [late, early]  # ingestion order

    def test_ingestion_order_preserved(self, index):
        items = [_item(i) for i in range(5)]
        # Visibility times deliberately shuffled vs ingestion order.
        for item, visible_at in zip(items, [30.0, 10.0, 20.0, 0.0, 15.0]):
            index.add(item, visible_at)
        assert index.visible_items(100.0) == items

    def test_boundary_is_inclusive(self, index):
        item = _item(0)
        index.add(item, visible_at=7.0)
        assert index.visible_items(7.0) == [item]
        assert index.visible_count(6.999) == 0

    def test_domain_buckets(self, index):
        museum, auction = _item(0, "museum"), _item(1, "auction")
        index.add(museum, 0.0)
        index.add(auction, 0.0)
        assert index.visible_items(1.0, "museum") == [museum]
        assert index.visible_items(1.0, "auction") == [auction]
        assert index.visible_items(1.0, "no-such-domain") == []
        assert index.visible_items(1.0) == [museum, auction]
        assert index.domain_size("museum") == 1
        assert index.size == 2


class TestCacheCoherenceProtocol:
    def test_untouched_after_checkpoint(self, index):
        index.add(_item(0), 1.0)
        index.checkpoint("museum")
        assert index.dirty_from("museum") is None

    def test_append_reports_end_position(self, index):
        index.add(_item(0), 1.0)
        index.checkpoint("museum")
        index.add(_item(1), 2.0)
        assert index.dirty_from("museum") == 1  # appended past position 0

    def test_mid_insert_reports_inner_position(self, index):
        index.add(_item(0), 10.0)
        index.add(_item(1), 30.0)
        index.checkpoint("museum")
        index.add(_item(2), 20.0)  # lands between the two cached entries
        assert index.dirty_from("museum") == 1

    def test_dirty_tracks_minimum_position(self, index):
        index.add(_item(0), 10.0)
        index.add(_item(1), 30.0)
        index.checkpoint("museum")
        index.add(_item(2), 40.0)  # append
        index.add(_item(3), 0.0)   # front insert
        assert index.dirty_from("museum") == 0

    def test_buckets_track_dirt_independently(self, index):
        index.add(_item(0, "museum"), 1.0)
        index.checkpoint("museum")
        index.add(_item(1, "auction"), 1.0)
        assert index.dirty_from("museum") is None
        assert index.dirty_from("auction") == 0
        assert index.dirty_from(CollectionIndex.ALL) == 0
