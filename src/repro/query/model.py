"""Query model.

Queries in the agora are richer than SQL: they may carry a *reference
item* ("compare this jewelry image with pertinent information"), a bag of
terms, a QoS requirement and the user's trade-off weights.  Like goods in
a market, a query is a commodity that can be split (decomposed per domain)
and traded (each part contracted to a source).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.items import InformationItem, TextDocument, make_item_id
from repro.qos.vector import QoSRequirement, QoSWeights

_QUERY_COUNTER = itertools.count()


@dataclass(frozen=True)
class PruneHint:
    """Cutoffs an enclosing plan node pushes down into retrieval.

    ``score_floor`` is a raw-score lower bound below which a match can
    never survive the plan (only sound when calibrated probability equals
    the clipped raw score); ``k_cap`` is the tightest enclosing ``TopK``
    size.  Sources treat the hint as advisory: applying it must never
    change the surviving (item, score) pairs, only skip work.
    """

    score_floor: float = 0.0
    k_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.score_floor <= 1.0:
            raise ValueError("score_floor must be in [0, 1]")
        if self.k_cap is not None and self.k_cap < 1:
            raise ValueError("k_cap must be >= 1")


class QueryKind(Enum):
    """What evidence a query carries."""
    SIMILARITY = "similarity"  # match against a reference item
    TOPIC = "topic"  # match against a bag of terms
    HYBRID = "hybrid"  # both


@dataclass
class Query:
    """A consumer's information request.

    Attributes
    ----------
    kind:
        What evidence the query carries (reference item, terms, or both).
    reference_item:
        The example object for similarity queries.
    terms:
        Term bag for topic queries.
    target_domains:
        Restrict to these domains; ``None`` means all domains.
    k:
        Number of results wanted.
    threshold:
        Minimum calibrated match probability to include a result.
    requirement / weights:
        The QoS contract bounds and the user's trade-off weights.
    intent_latent:
        Ground-truth topic vector of the *information need*.  Used only by
        experiment oracles to score result relevance — never by matching.
    """

    kind: QueryKind
    reference_item: Optional[InformationItem] = None
    terms: Optional[Dict[str, int]] = None
    target_domains: Optional[Tuple[str, ...]] = None
    k: int = 10
    threshold: float = 0.0
    requirement: QoSRequirement = field(default_factory=QoSRequirement)
    weights: QoSWeights = field(default_factory=QoSWeights)
    issuer_id: str = ""
    intent_latent: Optional[np.ndarray] = None
    query_id: int = field(default_factory=lambda: next(_QUERY_COUNTER))

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if self.kind in (QueryKind.SIMILARITY, QueryKind.HYBRID) and self.reference_item is None:
            raise ValueError(f"{self.kind.value} query needs a reference_item")
        if self.kind in (QueryKind.TOPIC, QueryKind.HYBRID) and not self.terms:
            raise ValueError(f"{self.kind.value} query needs terms")

    # ------------------------------------------------------------------
    def evidence_item(self) -> InformationItem:
        """The item to hand the matching engine.

        For topic queries a synthetic text document is built from the
        terms; for similarity/hybrid queries the reference item is used.
        """
        if self.reference_item is not None:
            return self.reference_item
        assert self.terms is not None
        latent = self.intent_latent if self.intent_latent is not None else np.array([1.0])
        return TextDocument(
            item_id=make_item_id("query"),
            domain="query",
            latent=latent,
            terms=dict(self.terms),
        )

    def restricted_to(self, domain: str) -> "Subquery":
        """The per-domain part of this query (query decomposition)."""
        return Subquery(parent=self, domain=domain)

    def targets(self, domain: str) -> bool:
        """Whether this query targets ``domain``."""
        return self.target_domains is None or domain in self.target_domains

    def with_requirement(self, requirement: QoSRequirement) -> "Query":
        """A copy of the query under a different QoS requirement."""
        return replace(self, requirement=requirement, query_id=next(_QUERY_COUNTER))


@dataclass(frozen=True)
class Subquery:
    """One domain-restricted piece of a decomposed query."""

    parent: Query
    domain: str

    @property
    def subquery_id(self) -> str:
        """Stable identifier: parent query id + domain."""
        return f"q{self.parent.query_id}:{self.domain}"

    @property
    def k(self) -> int:
        """Result count inherited from the parent query."""
        return self.parent.k

    @property
    def threshold(self) -> float:
        """Confidence threshold inherited from the parent query."""
        return self.parent.threshold

    def evidence_item(self) -> InformationItem:
        """The parent query's evidence item."""
        return self.parent.evidence_item()


def decompose(query: Query, available_domains: Sequence[str]) -> List[Subquery]:
    """Split ``query`` into one subquery per targeted available domain.

    "Queries have a complex structure and can be broken into smaller
    parts" (§4) — this is the library's decomposition: one retrieval job
    per domain, merged afterwards.
    """
    domains = [d for d in sorted(set(available_domains)) if query.targets(d)]
    return [query.restricted_to(domain) for domain in domains]


def reset_query_ids() -> None:
    """Reset the query-id counter (tests only)."""
    global _QUERY_COUNTER
    _QUERY_COUNTER = itertools.count()
