"""Cross-cutting property-based tests on core invariants.

These complement the per-module tests: each property here is a contract
several subsystems rely on simultaneously (e.g. the optimizer assumes QoS
dominance is a strict partial order; collaboration assumes result-set
merging is a semilattice).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InformationItem
from repro.qos import QoSRequirement, QoSVector, QoSWeights, scalarize
from repro.trust import BetaReputation
from repro.uncertainty import (
    UncertainEstimate,
    UncertainMatch,
    UncertainResultSet,
    merge_all,
    pool_adjacent_violators,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
qos_vectors = st.builds(
    QoSVector,
    response_time=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    completeness=unit, freshness=unit, correctness=unit, trust=unit,
)


class TestQoSPartialOrder:
    @given(qos_vectors)
    def test_irreflexive(self, vector):
        assert not vector.dominates(vector)

    @given(qos_vectors, qos_vectors, qos_vectors)
    def test_transitive(self, a, b, c):
        if a.dominates(b) and b.dominates(c):
            assert a.dominates(c)

    @given(qos_vectors, qos_vectors)
    def test_dominance_implies_weakly_better_utility(self, a, b):
        if a.dominates(b):
            assert scalarize(a, QoSWeights()) >= scalarize(b, QoSWeights()) - 1e-9

    @given(qos_vectors, qos_vectors)
    def test_worst_case_is_lower_bound(self, a, b):
        worst = a.worst_case(b)
        for other in (a, b):
            assert not worst.dominates(other)


class TestRequirementConsistency:
    requirements = st.builds(
        QoSRequirement,
        max_response_time=st.one_of(st.none(), st.floats(0.1, 50, allow_nan=False)),
        min_completeness=st.one_of(st.none(), unit),
        min_freshness=st.one_of(st.none(), unit),
        min_correctness=st.one_of(st.none(), unit),
        min_trust=st.one_of(st.none(), unit),
    )

    @given(requirements)
    def test_promise_meets_own_requirement(self, requirement):
        assert requirement.as_promise().meets(requirement)

    @given(requirements, qos_vectors)
    def test_violations_consistent_with_meets(self, requirement, vector):
        assert vector.meets(requirement) == (
            requirement.violated_dimensions(vector) == []
        )


def _match(item_id, probability):
    return UncertainMatch(
        item=InformationItem(item_id=item_id, domain="d", latent=np.array([1.0])),
        score=probability, probability=probability,
    )


# Item ids are unique within one result set (a single source never returns
# the same item twice); merging is what resolves cross-set duplicates.
result_sets = st.dictionaries(
    st.integers(0, 20), unit, max_size=15,
).map(lambda pairs: UncertainResultSet(
    _match(f"i{j}", p) for j, p in pairs.items()
))


class TestResultSetSemilattice:
    @given(result_sets)
    def test_merge_idempotent(self, results):
        merged = results.merge(results)
        assert [m.item.item_id for m in merged] == [
            m.item.item_id for m in results
        ]

    @given(result_sets, result_sets)
    def test_merge_commutative(self, a, b):
        ab = a.merge(b)
        ba = b.merge(a)
        assert [m.item.item_id for m in ab] == [m.item.item_id for m in ba]
        assert [m.probability for m in ab] == [m.probability for m in ba]

    @given(result_sets, result_sets, result_sets)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert [m.item.item_id for m in left] == [m.item.item_id for m in right]

    @given(result_sets, result_sets)
    def test_merge_never_lowers_confidence(self, a, b):
        merged = a.merge(b)
        probabilities = {m.item.item_id: m.probability for m in merged}
        for source in (a, b):
            for match in source:
                assert probabilities[match.item.item_id] >= match.probability

    @given(st.lists(result_sets, max_size=5))
    def test_merge_all_size_bounds(self, sets):
        merged = merge_all(sets)
        distinct = {m.item.item_id for s in sets for m in s}
        assert len(merged) == len(distinct)


class TestEstimateAlgebra:
    estimates = st.builds(
        lambda m, s: UncertainEstimate(mean=m, std=s, low=m - 3 * s - 1,
                                       high=m + 3 * s + 1),
        st.floats(-50, 50, allow_nan=False),
        st.floats(0, 10, allow_nan=False),
    )

    @given(estimates, estimates)
    def test_addition_commutative(self, a, b):
        left, right = a + b, b + a
        assert left.mean == pytest.approx(right.mean)
        assert left.std == pytest.approx(right.std)

    @given(estimates, estimates)
    def test_combine_max_upper_bounds_both(self, a, b):
        combined = a.combine_max(b)
        assert combined.mean >= max(a.mean, b.mean) - 1e-9

    @given(estimates, st.floats(0.1, 5, allow_nan=False))
    def test_scaling_preserves_relative_error(self, estimate, factor):
        if abs(estimate.mean) < 1e-6:
            return  # relative error is ill-conditioned near zero mean
        scaled = estimate.scale(factor)
        assert scaled.relative_error == pytest.approx(estimate.relative_error)


class TestReputationBounds:
    @given(st.lists(unit, max_size=60), st.floats(0.5, 1.0, exclude_min=True))
    def test_score_stays_in_open_interval(self, outcomes, decay):
        reputation = BetaReputation(decay=decay)
        for outcome in outcomes:
            reputation.observe(outcome)
        assert 0.0 < reputation.score < 1.0
        assert reputation.pessimistic_score() <= reputation.score

    @given(st.lists(unit, min_size=1, max_size=60))
    def test_all_good_outcomes_never_lower_score(self, outcomes):
        reputation = BetaReputation()
        previous = reputation.score
        for __ in outcomes:
            reputation.observe(1.0)
            assert reputation.score >= previous - 1e-12
            previous = reputation.score


class TestPAVProperties:
    values = st.lists(unit, min_size=1, max_size=40)

    @given(values)
    def test_idempotent(self, values):
        once = pool_adjacent_violators(values, np.ones(len(values)))
        twice = pool_adjacent_violators(once, np.ones(len(values)))
        np.testing.assert_allclose(once, twice)

    @given(values)
    def test_preserves_weighted_mean(self, values):
        result = pool_adjacent_violators(values, np.ones(len(values)))
        assert float(np.mean(result)) == pytest.approx(float(np.mean(values)))

    @given(values)
    def test_within_value_range(self, values):
        result = pool_adjacent_violators(values, np.ones(len(values)))
        assert result.min() >= min(values) - 1e-9
        assert result.max() <= max(values) + 1e-9
