"""T10 (§9 Multi-modal interaction): combined modes find material faster.

Regenerates the T10 table.  Relevant material is split across channels the
way the Iris scenario describes: some sits indexed at sources (query finds
it), some is only adjacent to known items (browsing finds it), and some
arrives as fresh publications (feeds find it).  Sessions restricted to a
single mode compete against the interleaved multi-modal session on
distinct relevant items discovered within a fixed step budget and on
steps-to-first-five.

Expected shape: the multi-modal session discovers more, sooner, than any
single mode alone.
"""

import numpy as np
import pytest

from repro import Consumer, UserProfile, build_agora
from repro.experiments import ExperimentResult, summarize
from repro.multimodal import BrowseGraph, Browser, InteractionSession, StandingQuery
from repro.workloads import QueryWorkloadGenerator

TOPIC = "folk-jewelry"
STEPS = 30


def _build_session_world(seed):
    agora = build_agora(seed=seed, n_sources=8, items_per_source=25,
                        calibration_pairs=200, start_update_streams=True)
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("t10-q"),
    )
    profile = UserProfile(
        user_id="t10-user",
        interests=agora.topic_space.basis(TOPIC, 0.9),
        mode_preference={"query": 1 / 3, "browse": 1 / 3, "feed": 1 / 3},
    )
    consumer = Consumer(agora, profile, planner="greedy")

    # Browse graph over a sample of the catalog.
    pool = []
    for source in agora.sources.values():
        pool.extend(source.visible_items(agora.now)[:10])
    graph = BrowseGraph(agora.engine, k_links=4)
    graph.build(pool[:70])
    browser = Browser(graph, profile, concept_fn=consumer.concept_of,
                      streams=agora.sim.rng.spawn("t10-browse"), temperature=0.4)
    browser.start()

    # Standing query over incoming publications.
    standing = StandingQuery.from_query(
        workload.topic_query(TOPIC, k=10, issuer_id=profile.user_id),
        threshold=0.3,
    )
    agora.feeds.register(standing)

    query_counter = {"count": 0}

    def query_action():
        query_counter["count"] += 1
        query = workload.topic_query(TOPIC, k=6)
        outcome = consumer.ask(query, personalize=False)
        return outcome.results.items()

    def browse_action():
        step = browser.step()
        return [step.item]

    def feed_action():
        agora.run(until=agora.now + 4.0)  # let publications arrive
        return [hit.match.item for hit in agora.feeds.drain(profile.user_id)]

    actions = {"query": query_action, "browse": browse_action, "feed": feed_action}
    def is_relevant(item):
        return agora.topic_space.relevance(profile.interests, item.latent) >= 0.75

    return agora, profile, actions, is_relevant


def run_t10(seeds=(61, 62, 63)) -> ExperimentResult:
    conditions = ["query", "browse", "feed", "multi-modal"]
    found = {name: [] for name in conditions}
    first_five = {name: [] for name in conditions}
    for seed in seeds:
        for condition in conditions:
            agora, profile, actions, is_relevant = _build_session_world(seed)
            enabled = None if condition == "multi-modal" else [condition]
            session = InteractionSession(
                profile, actions, agora.sim.rng.spawn(f"t10-{condition}"),
                enabled_modes=enabled,
            )
            session.run(STEPS)
            relevant_found = sum(
                1 for d in session.discoveries if is_relevant(d.item)
            )
            found[condition].append(relevant_found)
            steps = session.steps_to_find(is_relevant, count=5)
            first_five[condition].append(steps if steps is not None else STEPS + 10)
    result = ExperimentResult(
        "T10", f"Discovery by interaction mode ({STEPS}-step sessions)",
        ["mode", "relevant_found", "steps_to_first_5"],
    )
    for condition in conditions:
        result.add_row(
            condition,
            summarize(found[condition]).mean,
            summarize(first_five[condition]).mean,
        )
    result.add_note(
        "expected shape: multi-modal finds at least as much as the best "
        "single mode and beats the average single mode"
    )
    return result


@pytest.mark.benchmark(group="T10")
def test_t10_multimodal(benchmark):
    result = benchmark.pedantic(run_t10, rounds=1, iterations=1)
    result.print()
    rows = {row[0]: row for row in result.rows}
    single_mean = np.mean([rows[m][1] for m in ("query", "browse", "feed")])
    assert rows["multi-modal"][1] > single_mean
    # Multi-modal should never be the worst mode.
    assert rows["multi-modal"][1] >= min(
        rows[m][1] for m in ("query", "browse", "feed")
    )


if __name__ == "__main__":
    run_t10().print()
