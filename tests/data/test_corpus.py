"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.data import (
    CompoundObject,
    DomainSpec,
    MediaObject,
    TextDocument,
    iris_domains,
)


class TestDomainSpec:
    def test_type_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            DomainSpec(
                name="bad", topic_prior={"folk-jewelry": 1.0},
                type_mix={"text": 0.5, "media": 0.2, "compound": 0.2},
            )

    def test_iris_domains_complete(self):
        names = {spec.name for spec in iris_domains()}
        assert names == {"museum", "auction", "magazine", "thesis", "cultural-org"}


class TestGeneration:
    def test_generate_count(self, corpus_generator):
        spec = iris_domains()[0]
        items = corpus_generator.generate(spec, 20)
        assert len(items) == 20

    def test_items_carry_domain(self, corpus_generator):
        spec = iris_domains()[1]
        items = corpus_generator.generate(spec, 10)
        assert all(item.domain == "auction" for item in items)

    def test_latents_are_simplex_points(self, corpus_generator, topic_space):
        spec = iris_domains()[0]
        for item in corpus_generator.generate(spec, 10):
            assert item.latent.shape == (topic_space.n_topics,)
            assert item.latent.sum() == pytest.approx(1.0)

    def test_type_mix_respected_roughly(self, corpus_generator):
        spec = DomainSpec(
            name="museum", topic_prior={"folk-jewelry": 1.0},
            type_mix={"text": 1.0, "media": 0.0, "compound": 0.0},
        )
        items = corpus_generator.generate(spec, 15)
        assert all(isinstance(item, TextDocument) for item in items)

    def test_domain_prior_shapes_latents(self, corpus_generator, topic_space):
        spec = iris_domains()[3]  # thesis: academic-theses-dominant
        items = corpus_generator.generate(spec, 60)
        mean_latent = np.mean([item.latent for item in items], axis=0)
        thesis_index = topic_space.names.index("academic-theses")
        assert np.argmax(mean_latent) == thesis_index

    def test_unknown_topic_in_prior(self, corpus_generator):
        spec = DomainSpec(name="x", topic_prior={"no-such-topic": 1.0})
        with pytest.raises(KeyError):
            corpus_generator.generate(spec, 1)

    def test_generate_collection(self, corpus_generator):
        collection = corpus_generator.generate_collection(iris_domains()[:2], 5)
        assert set(collection) == {"museum", "auction"}
        assert all(len(v) == 5 for v in collection.values())

    def test_created_at_propagates(self, corpus_generator):
        spec = iris_domains()[0]
        items = corpus_generator.generate(spec, 5, created_at=42.0)
        assert all(item.created_at == 42.0 for item in items)


class TestMediaRendering:
    def test_features_normalised(self, corpus_generator):
        spec = DomainSpec(
            name="museum", topic_prior={"folk-jewelry": 1.0},
            type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        )
        items = corpus_generator.generate(spec, 5)
        for item in items:
            assert isinstance(item, MediaObject)
            assert np.linalg.norm(item.true_features) == pytest.approx(1.0)

    def test_similar_latents_give_similar_features(self, corpus_generator, topic_space):
        rng = np.random.default_rng(0)
        latent_a = topic_space.basis(topic_space.names[0], weight=0.95)
        latent_b = topic_space.basis(topic_space.names[5], weight=0.95)
        fa1 = corpus_generator.render_features(latent_a, rng)
        fa2 = corpus_generator.render_features(latent_a, rng)
        fb = corpus_generator.render_features(latent_b, rng)
        assert np.dot(fa1, fa2) > np.dot(fa1, fb)


class TestCompound:
    def test_compound_parts_nonempty(self, corpus_generator):
        spec = DomainSpec(
            name="auction", topic_prior={"auction-market": 1.0},
            type_mix={"text": 0.0, "media": 0.0, "compound": 1.0},
        )
        items = corpus_generator.generate(spec, 5)
        for item in items:
            assert isinstance(item, CompoundObject)
            assert len(item.parts) >= 2

    def test_compound_latent_is_part_average(self, corpus_generator):
        spec = DomainSpec(
            name="auction", topic_prior={"auction-market": 1.0},
            type_mix={"text": 0.0, "media": 0.0, "compound": 1.0},
        )
        item = corpus_generator.generate(spec, 1)[0]
        total = sum(w for __, w in item.parts)
        expected = sum(part.latent * w for part, w in item.parts) / total
        np.testing.assert_allclose(item.latent, expected)

    def test_auction_layout(self, corpus_generator):
        spec = DomainSpec(
            name="auction", topic_prior={"auction-market": 1.0},
            type_mix={"text": 0.0, "media": 0.0, "compound": 1.0},
        )
        item = corpus_generator.generate(spec, 1)[0]
        assert item.layout == "catalog"
