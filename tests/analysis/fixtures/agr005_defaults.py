# module: repro.core.fixture_defaults
"""Fixture: mutable default arguments that AGR005 must flag."""

from collections import defaultdict


def append_to(item, items=[]):  # expect: AGR005
    items.append(item)
    return items


def tally(key, *, counts={}):  # expect: AGR005
    counts[key] = counts.get(key, 0) + 1
    return counts


def group(pairs, buckets=defaultdict(list)):  # expect: AGR005
    for key, value in pairs:
        buckets[key].append(value)
    return buckets


def safe(item, items=None):  # fine: None sentinel
    return [item] if items is None else items + [item]
