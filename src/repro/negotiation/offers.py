"""Multi-issue offer space.

A deal between a consumer and a source covers several issues at once —
price plus the promised QoS levels (completeness, freshness, correctness,
response time).  An :class:`Offer` assigns a value to every issue; an
:class:`IssueSpace` declares the issues and their ranges.  Utilities and
strategies are built on top of this space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

Offer = Dict[str, float]


@dataclass(frozen=True)
class Issue:
    """One negotiable dimension with an inclusive range."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(f"issue {self.name!r}: low must be < high")

    def clip(self, value: float) -> float:
        """Clamp a value into the issue's range."""
        return min(self.high, max(self.low, value))

    def normalise(self, value: float) -> float:
        """Map a value to [0, 1] within the issue's range."""
        return (self.clip(value) - self.low) / (self.high - self.low)


class IssueSpace:
    """The set of issues under negotiation."""

    def __init__(self, issues: Iterable[Issue]):
        self.issues: Tuple[Issue, ...] = tuple(issues)
        if not self.issues:
            raise ValueError("issue space must contain at least one issue")
        names = [issue.name for issue in self.issues]
        if len(set(names)) != len(names):
            raise ValueError("issue names must be unique")
        self._by_name = {issue.name: issue for issue in self.issues}

    @property
    def names(self) -> List[str]:
        """Issue names in declaration order."""
        return [issue.name for issue in self.issues]

    def issue(self, name: str) -> Issue:
        """Look up an issue by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown issue {name!r}") from None

    def validate(self, offer: Mapping[str, float]) -> Offer:
        """Check ``offer`` covers every issue within range; return a copy."""
        missing = set(self.names) - set(offer)
        if missing:
            raise ValueError(f"offer missing issues: {sorted(missing)}")
        extra = set(offer) - set(self.names)
        if extra:
            raise ValueError(f"offer has unknown issues: {sorted(extra)}")
        validated: Offer = {}
        for issue in self.issues:
            value = float(offer[issue.name])
            if not issue.low - 1e-12 <= value <= issue.high + 1e-12:
                raise ValueError(
                    f"issue {issue.name!r}: value {value} outside "
                    f"[{issue.low}, {issue.high}]"
                )
            validated[issue.name] = issue.clip(value)
        return validated

    def blend(self, a: Mapping[str, float], b: Mapping[str, float], weight: float) -> Offer:
        """Componentwise convex combination: (1-weight)·a + weight·b."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        return {
            name: (1.0 - weight) * a[name] + weight * b[name] for name in self.names
        }


def standard_qos_issue_space(
    max_price: float = 20.0,
    max_response_time: float = 30.0,
) -> IssueSpace:
    """The default agora deal space: price + four QoS promises."""
    return IssueSpace(
        [
            Issue("price", 0.0, max_price),
            Issue("response_time", 0.01, max_response_time),
            Issue("completeness", 0.0, 1.0),
            Issue("freshness", 0.0, 1.0),
            Issue("correctness", 0.0, 1.0),
        ]
    )
