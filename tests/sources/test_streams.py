"""Tests for source update streams."""

import pytest

from repro.data import DomainSpec
from repro.sim import Simulator
from repro.sources import UpdateStream

from tests.conftest import make_source


@pytest.fixture
def stream_setup(corpus_generator, matching_engine, streams):
    sim = Simulator(seed=4)
    spec = DomainSpec(
        name="magazine",
        topic_prior={"fashion-trends": 1.0},
        update_rate=0.5,
    )
    source = make_source(
        "mag1", corpus_generator, matching_engine, streams,
        domain_spec=spec, n_items=0,
    )
    stream = UpdateStream(
        sim, source, corpus_generator, spec, streams.spawn("upd")
    )
    return sim, source, stream


class TestUpdateStream:
    def test_publishes_items_over_time(self, stream_setup):
        sim, source, stream = stream_setup
        stream.start()
        sim.run(until=100.0)
        assert stream.published > 10
        assert source.collection_size == stream.published

    def test_rate_controls_volume(self, corpus_generator, matching_engine, streams):
        counts = {}
        for multiplier in (1.0, 4.0):
            sim = Simulator(seed=4)
            spec = DomainSpec(
                name="magazine", topic_prior={"fashion-trends": 1.0}, update_rate=0.2
            )
            source = make_source(
                f"mag-{multiplier}", corpus_generator, matching_engine, streams,
                domain_spec=spec, n_items=0,
            )
            stream = UpdateStream(
                sim, source, corpus_generator, spec,
                streams.spawn(f"upd{multiplier}"), rate_multiplier=multiplier,
            )
            stream.start()
            sim.run(until=200.0)
            counts[multiplier] = stream.published
        assert counts[4.0] > 2 * counts[1.0]

    def test_subscribers_notified(self, stream_setup):
        sim, source, stream = stream_setup
        events = []
        stream.subscribe(lambda source_id, item: events.append((source_id, item)))
        stream.start()
        sim.run(until=50.0)
        assert len(events) == stream.published
        assert all(source_id == "mag1" for source_id, __ in events)

    def test_items_carry_publication_time(self, stream_setup):
        sim, source, stream = stream_setup
        items = []
        stream.subscribe(lambda __, item: items.append(item))
        stream.start()
        sim.run(until=50.0)
        assert all(0 < item.created_at <= 50.0 for item in items)

    def test_stop_halts_publication(self, stream_setup):
        sim, source, stream = stream_setup
        stream.start()
        sim.run(until=20.0)
        count = stream.published
        stream.stop()
        sim.run(until=100.0)
        assert stream.published == count

    def test_start_idempotent(self, stream_setup):
        sim, source, stream = stream_setup
        stream.start()
        stream.start()
        sim.run(until=20.0)
        # Double start must not double the rate: events come from one chain.
        assert sim.pending <= 1

    def test_invalid_multiplier(self, stream_setup, corpus_generator, streams):
        sim, source, stream = stream_setup
        with pytest.raises(ValueError):
            UpdateStream(
                sim, source, corpus_generator, stream.spec,
                streams.spawn("bad"), rate_multiplier=0.0,
            )
