"""Salient-part detection in compound objects.

§9: while Iris examines a thesis, "relevant parts of it, whether specified
by Iris through some annotation or **identified as important by the
system**, are compared against the catalog material".  This module is the
system side: it ranks a compound object's parts by how *informative* they
are — topically peaked parts (low concept entropy) weighted by their
structural importance — so downstream machinery can auto-compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.items import CompoundObject, InformationItem
from repro.uncertainty.matching import ConceptLifter


@dataclass(frozen=True)
class SalientPart:
    """One part with its salience annotation."""

    part: InformationItem
    weight: float
    peakedness: float

    @property
    def salience(self) -> float:
        """Structural weight × concept peakedness."""
        return self.weight * self.peakedness


def concept_peakedness(concept: np.ndarray) -> float:
    """How concentrated a concept vector is, in [0, 1].

    1 − normalised Shannon entropy: a part about exactly one topic scores
    1; a uniform smear scores 0.
    """
    concept = np.asarray(concept, dtype=float)
    total = concept.sum()
    if total <= 0 or concept.size < 2:
        return 0.0
    p = concept / total
    entropy = -float(np.sum(p * np.log(p + 1e-12)))
    max_entropy = float(np.log(concept.size))
    return float(np.clip(1.0 - entropy / max_entropy, 0.0, 1.0))


def salient_parts(
    compound: CompoundObject,
    lifter: ConceptLifter,
    k: int = 3,
) -> List[SalientPart]:
    """The ``k`` most informative leaf parts of ``compound``.

    Salience = structural weight × concept peakedness; ties break by
    item id for determinism.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    scored = []
    for part, weight in compound.flat_parts():
        concept = lifter.lift(part)
        scored.append(SalientPart(
            part=part, weight=weight, peakedness=concept_peakedness(concept),
        ))
    scored.sort(key=lambda s: (-s.salience, s.part.item_id))
    return scored[:k]
