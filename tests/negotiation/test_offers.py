"""Tests for the multi-issue offer space."""

import pytest

from repro.negotiation import Issue, IssueSpace, standard_qos_issue_space


class TestIssue:
    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Issue("price", 5.0, 5.0)

    def test_clip(self):
        issue = Issue("price", 0.0, 10.0)
        assert issue.clip(-1.0) == 0.0
        assert issue.clip(11.0) == 10.0
        assert issue.clip(5.0) == 5.0

    def test_normalise(self):
        issue = Issue("price", 0.0, 10.0)
        assert issue.normalise(0.0) == 0.0
        assert issue.normalise(10.0) == 1.0
        assert issue.normalise(2.5) == 0.25


class TestIssueSpace:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IssueSpace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            IssueSpace([Issue("a", 0, 1), Issue("a", 0, 2)])

    def test_standard_space_issues(self):
        space = standard_qos_issue_space()
        assert "price" in space.names
        assert "completeness" in space.names

    def test_validate_missing_issue(self):
        space = IssueSpace([Issue("a", 0, 1), Issue("b", 0, 1)])
        with pytest.raises(ValueError):
            space.validate({"a": 0.5})

    def test_validate_unknown_issue(self):
        space = IssueSpace([Issue("a", 0, 1)])
        with pytest.raises(ValueError):
            space.validate({"a": 0.5, "z": 0.5})

    def test_validate_out_of_range(self):
        space = IssueSpace([Issue("a", 0, 1)])
        with pytest.raises(ValueError):
            space.validate({"a": 5.0})

    def test_validate_returns_copy(self):
        space = IssueSpace([Issue("a", 0, 1)])
        original = {"a": 0.5}
        validated = space.validate(original)
        validated["a"] = 0.9
        assert original["a"] == 0.5

    def test_blend(self):
        space = IssueSpace([Issue("a", 0, 10)])
        blended = space.blend({"a": 0.0}, {"a": 10.0}, weight=0.3)
        assert blended["a"] == pytest.approx(3.0)

    def test_blend_invalid_weight(self):
        space = IssueSpace([Issue("a", 0, 1)])
        with pytest.raises(ValueError):
            space.blend({"a": 0.0}, {"a": 1.0}, weight=1.5)

    def test_issue_lookup(self):
        space = standard_qos_issue_space(max_price=50.0)
        assert space.issue("price").high == 50.0
        with pytest.raises(KeyError):
            space.issue("nope")
