"""AGR003 — iteration over unordered collections feeding ordered work.

Iterating a ``set`` (arbitrary order under ``PYTHONHASHSEED``) or a
dict view in a loop that schedules events, draws randomness, or sends
messages makes the *order* of those effects an accident of hashing or
insertion history.  Wrapping the iterable in ``sorted(...)`` pins the
order and silences the rule.

The rule is sink-gated: plain aggregation over a dict view is fine; only
loops whose body performs an order-sensitive effect are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

#: Method names whose call order is an observable simulation effect.
_SINK_METHODS = frozenset(
    {
        "schedule",
        "at",
        "process",
        "push",
        "send",
        "stream",
        "fresh",
        "spawn",
        "choice",
        "integers",
        "shuffle",
        "permutation",
        "random",
        "normal",
        "uniform",
    }
)

#: Wrappers that preserve (lack of) ordering of their first argument.
_TRANSPARENT = frozenset({"list", "tuple", "reversed", "enumerate", "iter"})

#: Calls producing explicitly unordered collections.
_UNORDERED_CALLS = frozenset({"set", "frozenset"})

#: Dict-view methods; insertion order is real but is itself a product of
#: arbitrary upstream history, so effect-feeding loops must sort.
_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _unordered_reason(node: ast.expr) -> Optional[str]:
    """Why ``node`` iterates in unpinned order, or ``None`` if it doesn't."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _UNORDERED_CALLS:
                return f"{func.id}()"
            if func.id == "sorted":
                return None
            if func.id in _TRANSPARENT and node.args:
                return _unordered_reason(node.args[0])
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return f".{func.attr}()"
    return None


def _has_sink(body: ast.AST) -> Optional[ast.Call]:
    for node in ast.walk(body):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _SINK_METHODS:
                return node
    return None


class UnorderedIterationRule(Rule):
    """Require ``sorted(...)`` when unordered iteration feeds effects."""

    rule_id = "AGR003"
    title = "unordered iteration feeding effects"
    rationale = (
        "Loops over sets/dict views that schedule, send, or draw randomness "
        "make effect order depend on hashing; wrap the iterable in sorted()."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "benchmarks", "examples"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            reason = _unordered_reason(node.iter)
            if reason is None:
                continue
            sink = None
            for stmt in node.body + node.orelse:
                sink = _has_sink(stmt)
                if sink is not None:
                    break
            if sink is None:
                continue
            sink_name = sink.func.attr if isinstance(sink.func, ast.Attribute) else "?"
            yield self.violation(
                ctx,
                node.iter,
                f"iterating {reason} while calling `.{sink_name}(...)` makes "
                "effect order hash-dependent; wrap the iterable in sorted()",
            )
