"""Tests for the source registry."""

import pytest

from repro.data import DomainSpec
from repro.sources import SourceRegistry

from tests.conftest import make_source


@pytest.fixture
def registry(corpus_generator, matching_engine, streams):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    auction = DomainSpec(name="auction", topic_prior={"auction-market": 1.0})
    registry.register(
        make_source("m1", corpus_generator, matching_engine, streams, domain_spec=museum)
    )
    registry.register(
        make_source("m2", corpus_generator, matching_engine, streams, domain_spec=museum)
    )
    registry.register(
        make_source("a1", corpus_generator, matching_engine, streams, domain_spec=auction)
    )
    return registry


class TestRegistry:
    def test_len_and_contains(self, registry):
        assert len(registry) == 3
        assert "m1" in registry
        assert "zzz" not in registry

    def test_candidates_for_domain(self, registry):
        museum_sources = registry.candidates_for("museum")
        assert [d.source_id for d in museum_sources] == ["m1", "m2"]

    def test_candidates_empty_domain(self, registry):
        assert registry.candidates_for("no-such-domain") == []

    def test_domains(self, registry):
        assert registry.domains() == ["auction", "museum"]

    def test_descriptor_lookup(self, registry):
        descriptor = registry.descriptor("a1")
        assert descriptor.covers("auction")
        assert not descriptor.covers("museum")

    def test_unknown_descriptor(self, registry):
        with pytest.raises(KeyError):
            registry.descriptor("nope")

    def test_source_lookup(self, registry):
        assert registry.source("m1").source_id == "m1"

    def test_unknown_source(self, registry):
        with pytest.raises(KeyError):
            registry.source("nope")

    def test_deregister(self, registry):
        registry.deregister("m1")
        assert "m1" not in registry
        assert len(registry.candidates_for("museum")) == 1

    def test_descriptor_snapshot_is_stale(
        self, registry, corpus_generator, matching_engine, streams
    ):
        """Ingesting more items does not change the stored advertisement."""
        before = registry.descriptor("m1").advertised["museum"].response_time
        source = registry.source("m1")
        spec = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
        source.ingest(corpus_generator.generate(spec, 100), now=0.0)
        after = registry.descriptor("m1").advertised["museum"].response_time
        assert before == after

    def test_refresh_updates_snapshot(
        self, registry, corpus_generator, matching_engine, streams
    ):
        source = registry.source("m1")
        spec = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
        source.ingest(corpus_generator.generate(spec, 200), now=0.0)
        refreshed = registry.refresh("m1", now=1.0)
        assert refreshed.advertised["museum"].response_time > 0
        assert refreshed.advertised_at == 1.0

    def test_all_descriptors_sorted(self, registry):
        ids = [d.source_id for d in registry.all_descriptors()]
        assert ids == sorted(ids)
