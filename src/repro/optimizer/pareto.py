"""Pareto utilities for multi-objective plan comparison.

"Any subset of these features may be together the target of a
multi-objective optimization process" (§4).  We compare plans on
(QoS utility, price): a plan dominates another when it is at least as good
on both and strictly better on one.  The front is the set of non-dominated
plans; hypervolume measures how much of objective space a front covers.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.optimizer.plans import PlanEvaluation


def dominates(a: PlanEvaluation, b: PlanEvaluation) -> bool:
    """True when ``a`` Pareto-dominates ``b`` on (utility ↑, price ↓)."""
    at_least = a.utility >= b.utility and a.price <= b.price
    strictly = a.utility > b.utility or a.price < b.price
    return at_least and strictly


def pareto_front(evaluations: Sequence[PlanEvaluation]) -> List[PlanEvaluation]:
    """Non-dominated subset, sorted by descending utility.

    Duplicate objective points are kept once (the first encountered).
    """
    front: List[PlanEvaluation] = []
    seen_points = set()
    ordered = sorted(evaluations, key=lambda e: (-e.utility, e.price))
    for candidate in ordered:
        point = (round(candidate.utility, 12), round(candidate.price, 12))
        if point in seen_points:
            continue
        if any(dominates(existing, candidate) for existing in front):
            continue
        front = [e for e in front if not dominates(candidate, e)]
        front.append(candidate)
        seen_points.add(point)
    return sorted(front, key=lambda e: (-e.utility, e.price))


def hypervolume(
    front: Sequence[PlanEvaluation],
    reference_price: float,
    reference_utility: float = 0.0,
) -> float:
    """2-D hypervolume of a front against a (price, utility) reference.

    Larger is better.  The reference should be a pessimistic corner:
    a price no acceptable plan exceeds and a utility floor.
    """
    if reference_price <= 0:
        raise ValueError("reference_price must be positive")
    points = sorted(
        {
            (e.price, e.utility)
            for e in front
            if e.price <= reference_price and e.utility >= reference_utility
        }
    )
    if not points:
        return 0.0
    # Walk from the most expensive point to the cheapest; the utility
    # ceiling at each price is the best utility among points at or below it.
    best_so_far = []
    best = reference_utility
    for __, utility in points:
        best = max(best, utility)
        best_so_far.append(best)
    volume = 0.0
    upper = reference_price
    for index in range(len(points) - 1, -1, -1):
        price = points[index][0]
        volume += (upper - price) * (best_so_far[index] - reference_utility)
        upper = price
    return volume


def regret(
    chosen: PlanEvaluation, evaluations: Sequence[PlanEvaluation]
) -> float:
    """Utility gap between the chosen plan and the best available one."""
    if not evaluations:
        raise ValueError("need at least one evaluation")
    best = max(e.utility for e in evaluations)
    return max(0.0, best - chosen.utility)
