"""Tests for SLA pricing policies."""

import pytest

from repro.qos import (
    CompetitivePricing,
    FlatPricing,
    QoSRequirement,
    Quote,
    RiskPricedPremium,
)

REQ = QoSRequirement(min_completeness=0.8)


class TestQuote:
    def test_total(self):
        assert Quote(10.0, 2.0, 5.0).total == 12.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Quote(-1.0, 0.0, 0.0)


class TestFlatPricing:
    def test_premium_ignores_risk(self):
        policy = FlatPricing(flat_premium=0.7)
        low = policy.quote(REQ, base_cost=10.0, breach_probability=0.01)
        high = policy.quote(REQ, base_cost=10.0, breach_probability=0.9)
        assert low.premium == high.premium == 0.7

    def test_margin_applied(self):
        quote = FlatPricing(margin=1.5).quote(REQ, 10.0, 0.1)
        assert quote.base_price == pytest.approx(15.0)

    def test_invalid_breach_probability(self):
        with pytest.raises(ValueError):
            FlatPricing().quote(REQ, 10.0, 1.5)

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            FlatPricing().quote(REQ, -2.0, 0.5)


class TestRiskPricedPremium:
    def test_premium_scales_with_risk(self):
        policy = RiskPricedPremium()
        low = policy.quote(REQ, 10.0, 0.1)
        high = policy.quote(REQ, 10.0, 0.5)
        assert high.premium == pytest.approx(5 * low.premium)

    def test_zero_risk_zero_premium(self):
        assert RiskPricedPremium().quote(REQ, 10.0, 0.0).premium == 0.0

    def test_premium_is_fair_plus_loading(self):
        policy = RiskPricedPremium(margin=1.0, loading=0.25, compensation_multiple=2.0)
        quote = policy.quote(REQ, 10.0, 0.3)
        fair = 0.3 * quote.compensation
        assert quote.premium == pytest.approx(fair * 1.25)


class TestCompetitivePricing:
    def test_more_competitors_lower_price(self):
        monopoly = CompetitivePricing(competitors=1).quote(REQ, 10.0, 0.2)
        crowded = CompetitivePricing(competitors=10).quote(REQ, 10.0, 0.2)
        assert crowded.total < monopoly.total

    def test_never_below_cost(self):
        quote = CompetitivePricing(competitors=1000).quote(REQ, 10.0, 0.0)
        assert quote.base_price >= 10.0

    def test_invalid_competitors(self):
        with pytest.raises(ValueError):
            CompetitivePricing(competitors=0).quote(REQ, 10.0, 0.2)
