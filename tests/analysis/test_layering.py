"""The layer DAG has exactly one source of truth.

``LAYER_TABLE`` in :mod:`repro.analysis.layering` is parsed into the
graph AGR008 enforces, and DESIGN.md embeds the same table verbatim in
a fenced ``layers`` block — these tests keep the two byte-identical and
the graph total over the actual package tree.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.layering import (
    LAYER_DEPS,
    LAYER_TABLE,
    parse_layer_table,
)

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src" / "repro"


def _design_layer_block() -> str:
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    match = re.search(r"```layers\n(.*?)```", text, re.DOTALL)
    assert match is not None, "DESIGN.md must carry a fenced ```layers block"
    return match.group(1)


class TestDesignParity:
    def test_design_block_is_byte_identical_to_layer_table(self):
        assert _design_layer_block() == LAYER_TABLE

    def test_table_parses_to_the_enforced_graph(self):
        assert parse_layer_table(LAYER_TABLE) == LAYER_DEPS


class TestGraphTotality:
    def test_every_src_package_appears_in_the_dag(self):
        packages = sorted(
            child.name
            for child in SRC.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        )
        assert packages, "src/repro must contain packages"
        missing = [pkg for pkg in packages if pkg not in LAYER_DEPS]
        assert missing == [], (
            f"packages absent from LAYER_TABLE: {missing}; every new "
            "package must declare its allowed imports"
        )

    def test_every_declared_package_exists_on_disk(self):
        ghosts = [
            pkg
            for pkg in LAYER_DEPS
            if not (SRC / pkg / "__init__.py").exists()
        ]
        assert ghosts == [], f"LAYER_TABLE declares missing packages: {ghosts}"


class TestTableParser:
    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="undeclared"):
            parse_layer_table("a -> b\n")

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            parse_layer_table("a -> b\nb -> a\n")

    def test_duplicate_entry_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_layer_table("a ->\na ->\n")

    def test_continuation_lines_extend_the_previous_entry(self):
        parsed = parse_layer_table("a ->\nb -> a\n       a\n")
        assert parsed["b"] == frozenset({"a"})

    def test_orphan_continuation_rejected(self):
        with pytest.raises(ValueError, match="continuation"):
            parse_layer_table("   a b c\n")
