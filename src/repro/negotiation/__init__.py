"""Negotiation: bilateral bargaining and market protocols (paper §4).

Public API:

- Offers: :class:`Issue`, :class:`IssueSpace`,
  :func:`standard_qos_issue_space`.
- Utilities: :class:`AdditiveUtility`, :class:`NegotiationPreferences`,
  :func:`buyer_utility`, :func:`seller_utility`.
- Strategies: :func:`boulware`, :func:`conceder`, :func:`linear`,
  :class:`TitForTatStrategy`, :class:`FirmStrategy`,
  :func:`standard_strategy_suite`.
- Bilateral protocol: :class:`Negotiator`,
  :class:`AlternatingOffersProtocol`, :class:`NegotiationOutcome`.
- Market protocol: :class:`ContractNetProtocol`,
  :class:`CallForProposals`, :class:`Proposal`,
  :class:`ContractNetOutcome`, :func:`consumer_bid_score`.
- Subcontracting: :class:`Intermediary`, :class:`SubcontractRecord`.
"""

from repro.negotiation.auctions import (
    AuctionKind,
    AuctionOutcome,
    SealedBidAuction,
)
from repro.negotiation.contract_net import (
    Bidder,
    CallForProposals,
    ContractNetOutcome,
    ContractNetProtocol,
    Proposal,
    consumer_bid_score,
)
from repro.negotiation.mediation import MediationOutcome, Mediator
from repro.negotiation.offers import Issue, IssueSpace, Offer, standard_qos_issue_space
from repro.negotiation.protocol import (
    AlternatingOffersProtocol,
    NegotiationOutcome,
    Negotiator,
)
from repro.negotiation.strategies import (
    ConcessionStrategy,
    FirmStrategy,
    TimeDependentStrategy,
    TitForTatStrategy,
    boulware,
    conceder,
    linear,
    standard_strategy_suite,
)
from repro.negotiation.subcontract import Intermediary, SubcontractRecord
from repro.negotiation.utility import (
    AdditiveUtility,
    NegotiationPreferences,
    buyer_utility,
    seller_utility,
)

__all__ = [
    "AdditiveUtility",
    "AlternatingOffersProtocol",
    "AuctionKind",
    "AuctionOutcome",
    "SealedBidAuction",
    "Bidder",
    "CallForProposals",
    "ConcessionStrategy",
    "ContractNetOutcome",
    "ContractNetProtocol",
    "FirmStrategy",
    "Intermediary",
    "Issue",
    "IssueSpace",
    "MediationOutcome",
    "Mediator",
    "NegotiationOutcome",
    "NegotiationPreferences",
    "Negotiator",
    "Offer",
    "Proposal",
    "SubcontractRecord",
    "TimeDependentStrategy",
    "TitForTatStrategy",
    "boulware",
    "buyer_utility",
    "conceder",
    "consumer_bid_score",
    "linear",
    "seller_utility",
    "standard_qos_issue_space",
    "standard_strategy_suite",
]
