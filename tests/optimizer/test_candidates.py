"""Tests for candidate enumeration."""

import pytest

from repro.data import DomainSpec
from repro.optimizer import CandidateEnumerator, discount_by_trust
from repro.qos import QoSVector
from repro.sources import SourceRegistry
from repro.trust import ReputationSystem

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def registry(corpus_generator, matching_engine, streams):
    registry = SourceRegistry()
    museum = DomainSpec(name="museum", topic_prior={"folk-jewelry": 1.0})
    auction = DomainSpec(name="auction", topic_prior={"auction-market": 1.0})
    for source_id, spec in [("m1", museum), ("m2", museum), ("a1", auction)]:
        registry.register(
            make_source(source_id, corpus_generator, matching_engine, streams,
                        domain_spec=spec)
        )
    return registry


class TestDiscount:
    def test_full_trust_keeps_claims(self):
        advertised = QoSVector(response_time=2.0, completeness=0.8)
        discounted = discount_by_trust(advertised, trust=1.0)
        assert discounted.completeness == pytest.approx(0.8)
        assert discounted.response_time == pytest.approx(2.0)

    def test_zero_trust_discounts_hard(self):
        advertised = QoSVector(response_time=2.0, completeness=0.8)
        discounted = discount_by_trust(advertised, trust=0.0, skepticism=0.6)
        assert discounted.completeness == pytest.approx(0.8 * 0.4)
        assert discounted.response_time > 2.0

    def test_trust_dimension_set_to_trust(self):
        discounted = discount_by_trust(QoSVector(), trust=0.3)
        assert discounted.trust == 0.3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            discount_by_trust(QoSVector(), trust=1.5)
        with pytest.raises(ValueError):
            discount_by_trust(QoSVector(), trust=0.5, skepticism=2.0)


class TestEnumerator:
    def test_candidates_per_job(self, registry, topic_space, vocabulary):
        enumerator = CandidateEnumerator(registry)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        table = enumerator.candidate_table(query)
        assert set(table) == {f"q{query.query_id}:museum", f"q{query.query_id}:auction"}
        museum_job = table[f"q{query.query_id}:museum"]
        assert sorted(c.source_id for c in museum_job) == ["m1", "m2"]

    def test_target_domains_respected(self, registry, topic_space, vocabulary):
        enumerator = CandidateEnumerator(registry)
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            target_domains=("museum",),
        )
        table = enumerator.candidate_table(query)
        assert len(table) == 1

    def test_reputation_lowers_expectations(self, registry, topic_space, vocabulary):
        reputation = ReputationSystem()
        for __ in range(10):
            reputation.observe("m1", 0.0)  # m1 has burned us
            reputation.observe("m2", 1.0)
        enumerator = CandidateEnumerator(registry, reputation)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        table = enumerator.candidate_table(query)
        museum = {c.source_id: c for c in table[f"q{query.query_id}:museum"]}
        assert museum["m2"].expected.completeness > museum["m1"].expected.completeness
        assert museum["m2"].breach_risk <= museum["m1"].breach_risk + 1e-9

    def test_breach_risk_in_range(self, registry, topic_space, vocabulary):
        enumerator = CandidateEnumerator(registry)
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry")
        for candidates in enumerator.candidate_table(query).values():
            for candidate in candidates:
                assert 0.0 <= candidate.breach_risk <= 1.0

    def test_unreachable_domain_omitted(self, registry, topic_space, vocabulary):
        enumerator = CandidateEnumerator(registry)
        query = make_topic_query(
            topic_space, vocabulary, "folk-jewelry",
            target_domains=("no-such-domain",),
        )
        assert enumerator.candidate_table(query) == {}
