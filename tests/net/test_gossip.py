"""Tests for the gossip protocol."""

import pytest

from repro.net import GossipProtocol, Network, random_topology
from repro.sim import RngStreams, Simulator


@pytest.fixture
def gossip_setup():
    sim = Simulator(seed=8)
    streams = sim.rng.spawn("net")
    topo = random_topology(16, streams, edge_probability=0.25)
    net = Network(sim, topo, streams, jitter_fraction=0.0)
    gossip = GossipProtocol(net, sim.rng.spawn("gossip"), fanout=3, max_rounds=12)
    for node in topo.nodes:
        gossip.subscribe(node, lambda rid, data: None)
        net.register(node, gossip.make_handler(node))
    return sim, topo, net, gossip


class TestGossip:
    def test_rumour_reaches_most_nodes(self, gossip_setup):
        sim, topo, net, gossip = gossip_setup
        gossip.start("n0", "rumour-1", {"hello": 1})
        sim.run(until=60.0)
        assert gossip.coverage("rumour-1") >= 0.9

    def test_origin_knows_immediately(self, gossip_setup):
        __, __, __, gossip = gossip_setup
        gossip.start("n0", "r", None)
        assert gossip.knows("n0", "r")

    def test_handlers_invoked_once_per_node(self, gossip_setup):
        sim, topo, net, gossip = gossip_setup
        deliveries = []
        gossip.subscribe("n5", lambda rid, data: deliveries.append(rid))
        gossip.start("n0", "r2", None)
        sim.run(until=60.0)
        assert deliveries.count("r2") <= 1

    def test_coverage_empty(self):
        sim = Simulator(seed=1)
        streams = sim.rng.spawn("net")
        topo = random_topology(4, streams)
        net = Network(sim, topo, streams)
        gossip = GossipProtocol(net, sim.rng.spawn("g"))
        assert gossip.coverage("anything") == 0.0

    def test_invalid_params(self, gossip_setup):
        __, __, net, __ = gossip_setup
        with pytest.raises(ValueError):
            GossipProtocol(net, RngStreams(1).spawn("g"), fanout=0)
        with pytest.raises(ValueError):
            GossipProtocol(net, RngStreams(1).spawn("g"), max_rounds=0)

    def test_rounds_bounded(self, gossip_setup):
        sim, topo, net, gossip = gossip_setup
        gossip.start("n0", "r3", None)
        sim.run(until=1000.0)
        # After max_rounds everywhere, no gossip traffic remains.
        assert sim.pending == 0
