"""Discrete-event simulation kernel.

The :class:`Simulator` owns a virtual clock and an event queue.  Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.at` (absolute time) and the kernel executes them in
deterministic time order.  Generator-based processes are supported through
:meth:`Simulator.process`: the generator yields delays (floats) and is
resumed after each delay elapses.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.obs.flight import FlightRecorder, callback_identity
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SimProfiler
from repro.obs.spans import SpanTracer
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for the simulation's random streams (see
        :class:`repro.sim.rng.RngStreams`).
    trace:
        Optional trace recorder; a fresh one is created when omitted.
    tracer:
        Optional causal span tracer.  When attached, the kernel binds it
        to the virtual clock, captures the active span at every
        ``schedule``/``at`` call, and resumes that span around the
        callback's execution — so spans opened inside a callback parent
        onto whatever caused the callback, not onto the event loop.
        ``None`` (the default) keeps the hot loop branch-only: no
        per-event tracing work happens at all.
    profiler:
        Optional sim-time profiler.  When attached, the kernel reports
        every dispatched event's causal span id and the advanced clock
        to :meth:`repro.obs.profile.SimProfiler.record`, attributing
        elapsed sim time and event counts to span stacks.  ``None`` (the
        default) keeps the hot loop branch-only, mirroring ``tracer``.
    flight:
        Optional flight recorder.  When attached, the kernel binds the
        RNG draw-counter accessors and appends one record per dispatched
        event — *after* the callback runs, so a record's ``draws`` total
        reflects the randomness the event consumed — to
        :meth:`repro.obs.flight.FlightRecorder.record`.  ``None`` (the
        default) keeps the hot loop branch-only, mirroring ``tracer``.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        tracer: Optional[SpanTracer] = None,
        profiler: Optional[SimProfiler] = None,
        flight: Optional[FlightRecorder] = None,
    ):
        self.now: float = 0.0
        self.rng = RngStreams(seed)
        self.trace = trace if trace is not None else TraceRecorder()
        self.tracer = tracer
        self.profiler = profiler
        self.flight = flight
        if tracer is not None:
            tracer.bind_clock(lambda: self.now)
        if flight is not None:
            flight.bind_rng(
                draw_total=lambda: self.rng.draw_total,
                draw_counts=self.rng.draw_counts,
            )
        self._queue = EventQueue()
        self._running = False
        self._processed = 0

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry backing this simulator's trace recorder."""
        return self.trace.metrics

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        tag: str = "",
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        span_id = self.tracer.current_id if self.tracer is not None else None
        return self._queue.push(
            self.now + delay, action, priority=priority, tag=tag, span_id=span_id
        )

    def at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        tag: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        span_id = self.tracer.current_id if self.tracer is not None else None
        return self._queue.push(
            time, action, priority=priority, tag=tag, span_id=span_id
        )

    def process(self, generator: Generator[float, None, Any], tag: str = "") -> None:
        """Drive a generator-based process.

        The generator yields non-negative floats interpreted as delays; the
        kernel resumes the generator after each delay.  The process ends when
        the generator is exhausted.
        """

        def step() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            if delay < 0:
                raise SimulationError(f"process yielded negative delay {delay}")
            self.schedule(delay, step, tag=tag)

        step()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains or limits are reached.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            The clock is advanced to ``until`` when given.
        max_events:
            Stop after processing this many events.

        Returns
        -------
        int
            The number of events processed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        processed = 0
        tracer = self.tracer
        profiler = self.profiler
        flight = self.flight
        if flight is not None:
            # Baseline the RNG draw counters before the first dispatch so
            # the recording accounts the run, not construction.
            flight.start()
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None
                self.now = event.time
                if profiler is not None:
                    profiler.record(event.span_id, self.now)
                if tracer is not None and event.span_id is not None:
                    # Re-enter the causal context the event was scheduled
                    # under so spans opened by the callback parent onto
                    # their true cause across the queue boundary.
                    tracer.resume(event.span_id)
                    try:
                        event.action()
                    finally:
                        tracer.release()
                else:
                    event.action()
                if flight is not None:
                    flight.record(
                        event.seq,
                        self.now,
                        event.tag,
                        callback_identity(event.action),
                        event.span_id,
                    )
                if tracer is not None:
                    self.trace.count("sim.events")
                processed += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until
        self._processed += processed
        return processed

    def step(self) -> bool:
        """Process a single event; return ``False`` when the queue is empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Total number of events processed over the simulator's lifetime."""
        return self._processed

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending}, "
            f"processed={self._processed})"
        )
