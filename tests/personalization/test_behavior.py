"""Tests for behavioural learning (risk attitudes, negotiation styles)."""

import numpy as np
import pytest

from repro.negotiation import FirmStrategy, boulware, conceder, linear
from repro.personalization import (
    ObservedChoice,
    RiskAttitudeLearner,
    classify_negotiation_style,
    fit_concession_exponent,
    trace_from_strategy,
)
from repro.uncertainty import risk_averse, risk_neutral, risk_seeking

SAFE = ([0.6], [1.0])
RISKY = ([0.95, 0.25], [0.5, 0.5])  # EV = 0.6: separates attitudes cleanly


def _simulate_choices(profile, learner, n=40, seed=0):
    """A user choosing between SAFE and RISKY by certainty equivalent."""
    rng = np.random.default_rng(seed)
    for __ in range(n):
        safe_ce = profile.certainty_equivalent(*SAFE)
        risky_ce = profile.certainty_equivalent(*RISKY)
        # Small decision noise keeps the data realistic.
        noisy = [safe_ce + rng.normal(0, 0.01), risky_ce + rng.normal(0, 0.01)]
        learner.observe_choice([SAFE, RISKY], int(np.argmax(noisy)))


class TestRiskAttitudeLearner:
    def test_no_data_neutral(self):
        assert RiskAttitudeLearner().estimate().aversion == 0.0

    def test_recovers_aversion_sign(self):
        for truth, expected_name in [
            (risk_averse(5.0), "averse"),
            (risk_seeking(5.0), "seeking"),
        ]:
            learner = RiskAttitudeLearner()
            _simulate_choices(truth, learner)
            estimate = learner.estimate()
            assert estimate.name == expected_name
            assert np.sign(estimate.aversion) == np.sign(truth.aversion)

    def test_neutral_user_estimated_near_zero(self):
        learner = RiskAttitudeLearner()
        _simulate_choices(risk_neutral(), learner, n=60)
        assert abs(learner.estimate().aversion) <= 2.0

    def test_likelihood_peaks_near_truth(self):
        learner = RiskAttitudeLearner()
        _simulate_choices(risk_averse(5.0), learner)
        ll_true = learner.log_likelihood(5.0)
        ll_wrong = learner.log_likelihood(-5.0)
        assert ll_true > ll_wrong

    def test_observation_count(self):
        learner = RiskAttitudeLearner()
        learner.observe_choice([SAFE, RISKY], 0)
        assert learner.observations == 1

    def test_invalid_choice(self):
        with pytest.raises(ValueError):
            ObservedChoice((SAFE,), 0)  # needs two options
        with pytest.raises(ValueError):
            ObservedChoice((SAFE, RISKY), 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RiskAttitudeLearner(choice_sharpness=0.0)
        with pytest.raises(ValueError):
            RiskAttitudeLearner(grid=[])


FLOOR = 0.25


class TestStyleRecovery:
    @pytest.mark.parametrize("strategy,expected", [
        (boulware(), "boulware"),
        (conceder(), "conceder"),
        (linear(), "linear"),
        (FirmStrategy(), "firm"),
    ])
    def test_classifies_named_strategies(self, strategy, expected):
        trace = trace_from_strategy(strategy, FLOOR)
        assert classify_negotiation_style(trace, FLOOR) == expected

    def test_exponent_recovered_numerically(self):
        trace = trace_from_strategy(boulware(e=0.3), FLOOR)
        exponent = fit_concession_exponent(trace, FLOOR)
        assert exponent == pytest.approx(0.3, abs=0.05)

    def test_firm_trace_has_no_exponent(self):
        trace = trace_from_strategy(FirmStrategy(), FLOOR)
        assert fit_concession_exponent(trace, FLOOR) is None

    def test_empty_trace_is_firm(self):
        assert classify_negotiation_style([], FLOOR) == "firm"

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            fit_concession_exponent([], floor=0.95, start=0.95)

    def test_trace_sampler_validation(self):
        with pytest.raises(ValueError):
            trace_from_strategy(linear(), FLOOR, samples=0)
