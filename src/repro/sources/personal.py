"""Personal information bases.

"She stores documents and other objects of high interest as well as her
annotations in a personal information base that she maintains, which she
also shares with Jason" (§1).  A :class:`PersonalInformationBase` is a
small user-owned source: saved items and annotations, queryable with the
same machinery as public sources, access-controlled by an explicit share
list.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Set, Tuple

from repro.data.items import Annotation, InformationItem
from repro.sim.rng import ScopedStreams
from repro.sources.source import InformationSource, SourceQuality
from repro.uncertainty.matching import MatchingEngine

PERSONAL_DOMAIN = "personal-base"


class PersonalInformationBase(InformationSource):
    """A user's private, shareable collection.

    Inherits the full source behaviour (matching, answering, estimates)
    with perfect quality parameters — one's own shelf is complete, fresh
    and correct — and adds an explicit share list: only the owner and
    users the owner shared with may query it.
    """

    def __init__(
        self,
        owner_id: str,
        engine: MatchingEngine,
        streams: ScopedStreams,
        node_id: Optional[str] = None,
    ):
        super().__init__(
            source_id=f"personal-{owner_id}",
            node_id=node_id if node_id is not None else f"node-{owner_id}",
            domains=[PERSONAL_DOMAIN],
            quality=SourceQuality(
                coverage=1.0, freshness_lag=0.0, error_rate=0.0,
                trust_class="well-known", overpromise=0.0,
            ),
            engine=engine,
            streams=streams,
        )
        self.owner_id = owner_id
        self._shared_with: Set[str] = set()

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------
    def share_with(self, user_id: str) -> None:
        """Grant ``user_id`` read access (the owner always has access)."""
        if user_id == self.owner_id:
            return
        self._shared_with.add(user_id)

    def revoke(self, user_id: str) -> None:
        """Withdraw a previously granted share."""
        self._shared_with.discard(user_id)

    def shared_with(self) -> List[str]:
        """Sorted user ids with read access (excluding the owner)."""
        return sorted(self._shared_with)

    def has_access(self, user_id: str) -> bool:
        """Whether ``user_id`` may read the base."""
        return user_id == self.owner_id or user_id in self._shared_with

    def accepts(self, consumer_id: str, now: float) -> Tuple[bool, str]:
        """Access check: private to the owner and its share list."""
        if not self.has_access(consumer_id):
            return False, "private"
        return super().accepts(consumer_id, now)

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(self, item: InformationItem, now: float = 0.0) -> None:
        """Store one item in the base.

        Saved items keep their original domain in metadata so the owner
        can still browse by provenance, but they are served under the
        personal domain.
        """
        stored = item
        if item.domain != PERSONAL_DOMAIN:
            # Re-domain a shallow copy; the original object is not
            # mutated (other sources may still hold it).
            stored = copy.copy(item)
            stored.metadata = dict(item.metadata)
            stored.metadata["original_domain"] = item.domain
            stored.domain = PERSONAL_DOMAIN
        self.ingest([stored], now=now, immediate=True)

    def save_all(self, items: Sequence[InformationItem], now: float = 0.0) -> None:
        """Store several items (see :meth:`save`)."""
        for item in items:
            self.save(item, now=now)

    def annotations(self, now: float = 0.0) -> List[Annotation]:
        """The annotation items stored in the base."""
        return [
            item
            for item in self.visible_items(now)
            if isinstance(item, Annotation)
        ]
