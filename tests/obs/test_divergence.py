"""Tests for the first-divergence debugger."""

import json

import pytest

from repro.obs.divergence import (
    align_runs,
    discover_recordings,
    find_divergence,
    load_recording,
    render_alignment,
    render_report,
)
from repro.obs.export import write_spans_jsonl
from repro.obs.flight import FOOTER_FILE, FlightRecorder
from repro.obs.spans import SpanTracer


def _events(n, mutate=None):
    """A deterministic event script; ``mutate`` patches one event tuple."""
    script = [
        (index, float(index), "tick", "demo:proc", None) for index in range(n)
    ]
    if mutate is not None:
        position, patch = mutate
        script[position] = patch(script[position])
    return script


def _write(directory, script, interval=4, draws=None):
    """Record ``script`` into ``directory``; optional per-event draw script.

    ``draws[i]`` is ``(total, {stream: count})`` applied *before* event i
    is recorded, emulating the callback's RNG consumption.
    """
    recorder = FlightRecorder(checkpoint_interval=interval)
    state = {"total": 0, "streams": {}}
    recorder.bind_rng(
        draw_total=lambda: state["total"],
        draw_counts=lambda: dict(state["streams"]),
    )
    recorder.start()
    for index, event in enumerate(script):
        if draws is not None:
            state["total"], state["streams"] = draws[index]
        recorder.record(*event)
    recorder.finalize(directory)
    return recorder


class TestLoadRecording:
    def test_round_trip(self, tmp_path):
        _write(tmp_path, _events(10))
        recording = load_recording(tmp_path)
        assert recording.events == 10
        # 10 events + 2 checkpoint lines at interval 4
        assert len(recording.entries) == 12
        assert recording.checkpoint_positions == [4, 9]

    def test_corrupt_chunk_raises(self, tmp_path):
        _write(tmp_path, _events(6))
        chunk = tmp_path / "chunk-000000.jsonl"
        chunk.write_text(chunk.read_text().replace('"tick"', '"tock"'))
        with pytest.raises(ValueError, match="digest mismatch"):
            load_recording(tmp_path)

    def test_missing_footer_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no footer.json"):
            load_recording(tmp_path)

    def test_bad_version_raises(self, tmp_path):
        _write(tmp_path, _events(2))
        footer = json.loads((tmp_path / FOOTER_FILE).read_text())
        footer["version"] = "repro.flight/99"
        (tmp_path / FOOTER_FILE).write_text(json.dumps(footer))
        with pytest.raises(ValueError, match="unsupported"):
            load_recording(tmp_path)

    def test_attaches_sibling_spans(self, tmp_path):
        run = tmp_path / "run"
        flight = run / "flight"
        flight.mkdir(parents=True)
        _write(flight, _events(2))
        tracer = SpanTracer()
        with tracer.span("root"):
            pass
        write_spans_jsonl(tracer.spans(), run / "spans.jsonl")
        recording = load_recording(flight)
        assert recording.spans is not None
        assert recording.spans[0].name == "root"


class TestDiscoverRecordings:
    def test_recording_directory_itself(self, tmp_path):
        _write(tmp_path, _events(3))
        assert set(discover_recordings(tmp_path)) == {0}

    def test_run_directory_with_shards(self, tmp_path):
        coordinator = tmp_path / "flight"
        coordinator.mkdir()
        _write(coordinator, _events(3))
        for shard in (1, 2):
            shard_dir = tmp_path / f"shard-{shard}" / "flight"
            shard_dir.mkdir(parents=True)
            recorder = FlightRecorder(shard_id=shard)
            recorder.record(0, 0.0, "tick", "demo:proc", None)
            recorder.finalize(shard_dir)
        assert set(discover_recordings(tmp_path)) == {0, 1, 2}

    def test_duplicate_shard_ids_raise(self, tmp_path):
        coordinator = tmp_path / "flight"
        coordinator.mkdir()
        _write(coordinator, _events(1))
        clash = tmp_path / "shard-1" / "flight"
        clash.mkdir(parents=True)
        _write(clash, _events(1))  # shard_id defaults to 0 -> clash
        with pytest.raises(ValueError, match="duplicate shard id"):
            discover_recordings(tmp_path)

    def test_no_recordings_raise(self, tmp_path):
        with pytest.raises(ValueError, match="no flight recordings"):
            discover_recordings(tmp_path)


class TestFindDivergence:
    def test_identical(self, tmp_path):
        _write(tmp_path / "a", _events(20))
        _write(tmp_path / "b", _events(20))
        report = find_divergence(
            load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
        )
        assert report.identical
        assert "identical" in render_report(report)

    def _first_mismatch_by_linear_scan(self, left, right):
        """Ground truth: zip-scan every entry, no checkpoint shortcuts."""
        for position, (a, b) in enumerate(zip(left.entries, right.entries)):
            if a != b:
                return position
        return None

    @pytest.mark.parametrize("position", [0, 3, 17, 40, 61])
    def test_binary_search_matches_linear_scan(self, tmp_path, position):
        mutate = (position, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        _write(tmp_path / "a", _events(64), interval=4)
        _write(tmp_path / "b", _events(64, mutate=mutate), interval=4)
        left = load_recording(tmp_path / "a")
        right = load_recording(tmp_path / "b")
        report = find_divergence(left, right)
        assert report.kind == "event"
        assert report.index == self._first_mismatch_by_linear_scan(left, right)
        assert report.right_entry["kind"] == "MUTANT"
        assert report.fields == ["kind"]
        window_start, window_end = report.window
        assert window_start <= report.index < window_end

    def test_binary_search_probes_logarithmic(self, tmp_path):
        # 256 events / interval 4 = 64 checkpoints; probes ~ log2(64) + 1.
        mutate = (200, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        _write(tmp_path / "a", _events(256), interval=4)
        _write(tmp_path / "b", _events(256, mutate=mutate), interval=4)
        report = find_divergence(
            load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
        )
        assert report.index is not None
        assert 0 < report.probes <= 8

    def test_divergence_after_last_checkpoint(self, tmp_path):
        mutate = (9, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        _write(tmp_path / "a", _events(10), interval=4)
        _write(tmp_path / "b", _events(10, mutate=mutate), interval=4)
        left = load_recording(tmp_path / "a")
        right = load_recording(tmp_path / "b")
        report = find_divergence(left, right)
        assert report.kind == "event"
        assert report.index == self._first_mismatch_by_linear_scan(left, right)

    def test_context_echoes_last_matching_events(self, tmp_path):
        mutate = (8, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        _write(tmp_path / "a", _events(10), interval=100)
        _write(tmp_path / "b", _events(10, mutate=mutate), interval=100)
        report = find_divergence(
            load_recording(tmp_path / "a"),
            load_recording(tmp_path / "b"),
            context=3,
        )
        assert [entry["seq"] for entry in report.context] == [5, 6, 7]

    def test_truncated_prefix(self, tmp_path):
        _write(tmp_path / "a", _events(6), interval=100)
        _write(tmp_path / "b", _events(9), interval=100)
        report = find_divergence(
            load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
        )
        assert report.kind == "truncated"
        assert report.right_entry["seq"] == 6
        assert "prefix" in render_report(report)

    def test_rng_checkpoint_divergence_names_streams(self, tmp_path):
        # Identical event records (same draw totals), but two streams
        # traded draws one-for-one -> only the checkpoint line differs.
        script = _events(4)
        draws_a = [(i + 1, {"alpha": i + 1}) for i in range(4)]
        draws_b = [(i + 1, {"alpha": i, "beta": 1} if i >= 1 else {"alpha": i + 1})
                   for i in range(4)]
        _write(tmp_path / "a", script, interval=4, draws=draws_a)
        _write(tmp_path / "b", script, interval=4, draws=draws_b)
        report = find_divergence(
            load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
        )
        assert report.kind == "rng-checkpoint"
        deltas = {delta.stream: (delta.left, delta.right) for delta in report.streams}
        assert deltas == {"alpha": (4, 3), "beta": (0, 1)}
        assert "streams traded draws" in render_report(report)

    def test_event_divergence_reports_stream_deltas(self, tmp_path):
        mutate = (2, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        draws_a = [(i + 1, {"alpha": i + 1}) for i in range(4)]
        draws_b = [(i + 2, {"alpha": i + 1, "beta": 1}) for i in range(4)]
        _write(tmp_path / "a", _events(4), interval=4, draws=draws_a)
        _write(tmp_path / "b", _events(4, mutate=mutate), interval=4, draws=draws_b)
        report = find_divergence(
            load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
        )
        assert report.kind == "event"
        streams = {delta.stream for delta in report.streams}
        assert "beta" in streams

    def test_mismatched_intervals_raise(self, tmp_path):
        _write(tmp_path / "a", _events(4), interval=2)
        _write(tmp_path / "b", _events(5), interval=4)
        with pytest.raises(ValueError, match="checkpoint intervals"):
            find_divergence(
                load_recording(tmp_path / "a"), load_recording(tmp_path / "b")
            )

    def test_span_stack_rendered_when_spans_present(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("drive") as drive:
            span_id = drive.span_id
        for name in ("a", "b"):
            run = tmp_path / name
            flight = run / "flight"
            flight.mkdir(parents=True)
            kind = "tick" if name == "a" else "MUTANT"
            _write(flight, [(0, 0.0, kind, "demo:proc", span_id)], interval=100)
            write_spans_jsonl(tracer.spans(), run / "spans.jsonl")
        report = find_divergence(
            load_recording(tmp_path / "a" / "flight"),
            load_recording(tmp_path / "b" / "flight"),
        )
        assert report.left_stack == f"#{span_id} drive"
        assert "span stack" in render_report(report)


class TestAlignRuns:
    def _run_dir(self, tmp_path, name, shard_scripts):
        run = tmp_path / name
        for shard_id, script in shard_scripts.items():
            target = (
                run / "flight" if shard_id == 0
                else run / f"shard-{shard_id}" / "flight"
            )
            target.mkdir(parents=True)
            recorder = FlightRecorder(shard_id=shard_id)
            for event in script:
                recorder.record(*event)
            recorder.finalize(target)
        return run

    def test_identical_runs(self, tmp_path):
        a = self._run_dir(tmp_path, "a", {0: _events(5), 1: _events(5)})
        b = self._run_dir(tmp_path, "b", {0: _events(5), 1: _events(5)})
        alignment = align_runs(a, b)
        assert alignment.identical
        assert alignment.first_divergence() is None
        assert "bitwise-identical" in render_alignment(alignment)

    def test_divergent_shard_located(self, tmp_path):
        mutate = (2, lambda e: (e[0], e[1], "MUTANT", e[3], e[4]))
        a = self._run_dir(tmp_path, "a", {0: _events(5), 1: _events(5)})
        b = self._run_dir(
            tmp_path, "b", {0: _events(5), 1: _events(5, mutate=mutate)}
        )
        alignment = align_runs(a, b)
        assert not alignment.identical
        first = alignment.first_divergence()
        assert first.shard_id == 1
        assert first.kind == "event"

    def test_missing_shard_reported(self, tmp_path):
        a = self._run_dir(tmp_path, "a", {0: _events(3), 1: _events(3)})
        b = self._run_dir(tmp_path, "b", {0: _events(3)})
        alignment = align_runs(a, b)
        kinds = {report.shard_id: report.kind for report in alignment.reports}
        assert kinds == {0: "identical", 1: "missing-right"}
        assert "missing on the right" in render_alignment(alignment)

    def test_to_dict_round_trips_through_json(self, tmp_path):
        a = self._run_dir(tmp_path, "a", {0: _events(3)})
        b = self._run_dir(tmp_path, "b", {0: _events(3)})
        payload = json.loads(json.dumps(align_runs(a, b).to_dict()))
        assert payload["identical"] is True
        assert payload["reports"][0]["kind"] == "identical"
