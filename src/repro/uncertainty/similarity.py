"""Similarity primitives over vectors and term bags.

These are the low-level metrics the matching engines build on.  All of
them return values in [0, 1] where 1 means identical, so scores from
different metrics can be ensembled and later calibrated to probabilities.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of two vectors mapped to [0, 1] (0.5 = orthogonal)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float((1.0 + np.dot(a, b) / (na * nb)) / 2.0)


def nonnegative_cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine for non-negative vectors (already in [0, 1])."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.clip(np.dot(a, b) / (na * nb), 0.0, 1.0))


def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard index of two term sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def weighted_jaccard(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Weighted Jaccard (Ruzicka) similarity of two weighted bags."""
    keys = set(a) | set(b)
    if not keys:
        return 1.0
    minimum = sum(min(a.get(k, 0.0), b.get(k, 0.0)) for k in keys)
    maximum = sum(max(a.get(k, 0.0), b.get(k, 0.0)) for k in keys)
    if maximum == 0:
        return 1.0
    return minimum / maximum


def sublinear_tf(terms: Mapping[str, int]) -> Dict[str, float]:
    """Sublinear (1 + log) term-frequency weighting."""
    return {
        term: 1.0 + float(np.log(count)) if count > 0 else 0.0
        for term, count in terms.items()
        if count > 0
    }


def bag_cosine(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity of two sparse weighted bags, in [0, 1]."""
    if not a or not b:
        return 0.0
    shared = set(a) & set(b)
    dot = sum(a[k] * b[k] for k in shared)
    norm_a = float(np.sqrt(sum(v * v for v in a.values())))
    norm_b = float(np.sqrt(sum(v * v for v in b.values())))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return float(np.clip(dot / (norm_a * norm_b), 0.0, 1.0))


class EnsembleSimilarity:
    """A weighted combination of several score functions.

    Each member is a callable ``(query, candidate) -> float`` in [0, 1].
    """

    def __init__(self, members: Sequence, weights: Optional[Sequence[float]] = None):
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(members)
        if len(weights) != len(members):
            raise ValueError("weights must match members")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self.weights = [w / total for w in weights]

    def __call__(self, query, candidate) -> float:
        return sum(
            weight * member(query, candidate)
            for member, weight in zip(self.members, self.weights)
        )
