"""Message routing over the overlay.

The :class:`Network` binds a :class:`~repro.net.topology.Topology` to a
:class:`~repro.sim.Simulator`: applications register a handler per node and
call :meth:`Network.send`.  Delivery delay is the latency-weighted shortest
path plus transmission time (size / bottleneck bandwidth) plus optional
jitter.  Messages to or through down nodes are dropped (with an optional
failure callback), matching the paper's "system reaction may be
unpredictable".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.failures import NodeHealth
from repro.net.messages import Message
from repro.net.topology import Topology
from repro.obs.spans import NULL_TRACER
from repro.sim.kernel import Simulator
from repro.sim.rng import ScopedStreams

Handler = Callable[[Message], None]
FailureCallback = Callable[[Message, str], None]


class Network:
    """Simulated message-passing layer over an overlay topology.

    Parameters
    ----------
    simulator:
        The discrete-event kernel that carries delivery events.
    topology:
        The overlay graph.
    streams:
        RNG scope for jitter.
    health:
        Optional node up/down model; omitted means all nodes always up.
    jitter_fraction:
        Uniform multiplicative jitter applied to each delivery delay
        (0.1 means ±10%).
    hop_processing:
        Fixed per-hop forwarding delay.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        streams: ScopedStreams,
        health: Optional[NodeHealth] = None,
        jitter_fraction: float = 0.1,
        hop_processing: float = 0.002,
    ):
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = simulator
        self.topology = topology
        self.health = health
        self._rng = streams.stream("jitter")
        self._jitter = jitter_fraction
        self._hop_processing = hop_processing
        self._handlers: Dict[str, Handler] = {}
        self._path_cache: Dict[tuple, List[str]] = {}
        self.on_drop: Optional[FailureCallback] = None

    # ------------------------------------------------------------------
    def register(self, node: str, handler: Handler) -> None:
        """Install the message handler for ``node``."""
        if node not in self.topology.graph:
            raise KeyError(f"node {node!r} is not in the topology")
        self._handlers[node] = handler

    def unregister(self, node: str) -> None:
        """Remove the handler for ``node`` (idempotent)."""
        self._handlers.pop(node, None)

    def _path(self, source: str, target: str) -> List[str]:
        key = (source, target)
        if key not in self._path_cache:
            self._path_cache[key] = self.topology.shortest_path(source, target)
        return self._path_cache[key]

    def _node_up(self, node: str) -> bool:
        return self.health is None or self.health.is_up(node)

    # ------------------------------------------------------------------
    def delivery_delay(self, message: Message) -> float:
        """Compute the end-to-end delay for ``message`` (no drops)."""
        if message.sender == message.recipient:
            return self._hop_processing
        path = self._path(message.sender, message.recipient)
        propagation = self.topology.path_latency(path)
        bottleneck = min(
            self.topology.link(a, b).bandwidth for a, b in zip(path, path[1:])
        )
        transmission = message.size / bottleneck
        processing = self._hop_processing * (len(path) - 1)
        base = propagation + transmission + processing
        if self._jitter > 0:
            base *= 1.0 + float(self._rng.uniform(-self._jitter, self._jitter))
        return base

    def send(self, message: Message) -> bool:
        """Send ``message``; returns ``False`` if dropped immediately.

        Drops happen when the sender, the recipient, or any relay node on
        the path is down at send time.  (A real network would discover this
        later; collapsing it to send time keeps the simulation simple while
        preserving the observable effect: no reply.)
        """
        message.sent_at = self.sim.now
        tracer = self.sim.tracer or NULL_TRACER
        self.sim.trace.count("net.messages_sent")
        self.sim.trace.count("net.bytes_sent", message.size)
        path = (
            [message.sender]
            if message.sender == message.recipient
            else self._path(message.sender, message.recipient)
        )
        down = [node for node in path if not self._node_up(node)]
        if down:
            self.sim.trace.count("net.messages_dropped")
            tracer.event(
                "net.drop", kind=message.kind, node=down[0], at="send"
            )
            if self.on_drop is not None:
                self.on_drop(message, down[0])
            return False
        delay = self.delivery_delay(message)
        self.sim.trace.count("net.hops", max(0, len(path) - 1))

        def deliver() -> None:
            with tracer.span(
                "net.deliver", kind=message.kind, recipient=message.recipient
            ) as span:
                handler = self._handlers.get(message.recipient)
                if handler is None:
                    self.sim.trace.count("net.messages_unhandled")
                    span.annotate(outcome="unhandled")
                    return
                if not self._node_up(message.recipient):
                    self.sim.trace.count("net.messages_dropped")
                    span.annotate(outcome="dropped")
                    if self.on_drop is not None:
                        self.on_drop(message, message.recipient)
                    return
                self.sim.trace.count("net.messages_delivered")
                self.sim.trace.observe(
                    "net.delivery_delay", self.sim.now - message.sent_at
                )
                handler(message)

        with tracer.span(
            "net.send", kind=message.kind, sender=message.sender,
            recipient=message.recipient, hops=max(0, len(path) - 1),
        ):
            # Scheduling inside the span makes the eventual delivery a
            # child of the send, which is itself a child of whatever
            # triggered it (gossip round, feed push, ...).
            self.sim.schedule(delay, deliver, tag=f"deliver:{message.kind}")
        return True

    def broadcast(self, sender: str, kind: str, payload=None, size: float = 1.0) -> int:
        """Send a message to every other registered node; returns #sent."""
        sent = 0
        for node in sorted(self._handlers):
            if node == sender:
                continue
            if self.send(Message(sender, node, kind, payload, size)):
                sent += 1
        return sent
