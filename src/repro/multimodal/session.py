"""Multi-modal interaction sessions.

"Users should be able to interact with the Open Agora in multiple ways,
switching at will from one to the other, using the results of one action
as input to the next" (§9).  The :class:`InteractionSession` interleaves
querying, browsing and feed-checking according to the profile's mode
preference, pools everything discovered, and measures time-to-discovery —
the metric of experiment T10.

The session is decoupled from the agora through three mode callables so
it can be driven by the real facade or by test stubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.items import InformationItem
from repro.personalization.profile import INTERACTION_MODES, UserProfile
from repro.sim.rng import ScopedStreams

ModeAction = Callable[[], List[InformationItem]]


@dataclass
class Discovery:
    """One item found during a session, with attribution."""

    item: InformationItem
    mode: str
    step: int


class InteractionSession:
    """One user's interleaved multi-modal session.

    Parameters
    ----------
    profile:
        Drives the mode-selection distribution.
    actions:
        Mode name → zero-arg callable returning newly seen items.
    streams:
        RNG scope for mode sampling.
    enabled_modes:
        Restrict to a subset of modes (single-mode baselines in T10).
    """

    def __init__(
        self,
        profile: UserProfile,
        actions: Dict[str, ModeAction],
        streams: ScopedStreams,
        enabled_modes: Optional[Sequence[str]] = None,
    ):
        unknown = set(actions) - set(INTERACTION_MODES)
        if unknown:
            raise ValueError(f"unknown modes: {sorted(unknown)}")
        if enabled_modes is None:
            enabled_modes = sorted(actions)
        enabled = [m for m in enabled_modes if m in actions]
        if not enabled:
            raise ValueError("session needs at least one enabled mode with an action")
        self.profile = profile
        self.actions = dict(actions)
        self.enabled_modes = sorted(enabled)
        self._rng = streams.stream(f"session.{profile.user_id}")
        self.discoveries: List[Discovery] = []
        self._seen: set = set()
        self.steps_taken = 0
        self.mode_counts: Dict[str, int] = {mode: 0 for mode in self.enabled_modes}

    # ------------------------------------------------------------------
    def _choose_mode(self) -> str:
        weights = np.array(
            [self.profile.mode_preference.get(mode, 0.0) for mode in self.enabled_modes]
        )
        if weights.sum() <= 0:
            weights = np.ones(len(self.enabled_modes))
        weights = weights / weights.sum()
        index = int(self._rng.choice(len(self.enabled_modes), p=weights))
        return self.enabled_modes[index]

    def step(self, mode: Optional[str] = None) -> List[Discovery]:
        """Perform one interaction step; returns *new* discoveries."""
        if mode is None:
            mode = self._choose_mode()
        if mode not in self.actions:
            raise KeyError(f"no action bound for mode {mode!r}")
        self.steps_taken += 1
        self.mode_counts[mode] = self.mode_counts.get(mode, 0) + 1
        found = self.actions[mode]()
        new: List[Discovery] = []
        for item in found:
            if item.item_id in self._seen:
                continue
            self._seen.add(item.item_id)
            discovery = Discovery(item=item, mode=mode, step=self.steps_taken)
            self.discoveries.append(discovery)
            new.append(discovery)
        return new

    def run(self, steps: int) -> List[Discovery]:
        """Run ``steps`` interleaved interactions."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        for __ in range(steps):
            self.step()
        return list(self.discoveries)

    # ------------------------------------------------------------------
    def items(self) -> List[InformationItem]:
        """All discovered items in discovery order."""
        return [d.item for d in self.discoveries]

    def steps_to_find(
        self, predicate: Callable[[InformationItem], bool], count: int,
    ) -> Optional[int]:
        """The step at which the ``count``-th matching item was found.

        Returns ``None`` when fewer than ``count`` matching items were
        discovered (the time-to-discovery metric of T10).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        found = 0
        for discovery in self.discoveries:
            if predicate(discovery.item):
                found += 1
                if found >= count:
                    return discovery.step
        return None
