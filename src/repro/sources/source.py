"""Information sources: the independent systems of the agora.

Each source holds a collection, answers subqueries with its own matching
machinery, and exhibits the paper's §2 pathologies: partial coverage,
freshness lag, occasional wrong answers, load-dependent declines, and
blacklists.  Sources also *advertise* their quality — optimistically, per
their ``overpromise`` bias — which is exactly why consumers need SLAs,
reputation and negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple


from repro.data.items import InformationItem
from repro.net.failures import LoadModel, NodeHealth
from repro.qos.vector import QoSVector
from repro.query.model import PruneHint, Subquery
from repro.sim.rng import ScopedStreams
from repro.sources.index import CollectionIndex
from repro.trust.blacklist import Blacklist
from repro.uncertainty.estimates import UncertainEstimate
from repro.uncertainty.matching import CandidateBlock, MatchingEngine
from repro.uncertainty.pruning import BoundStats

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel.service import ParallelRankService

TRUST_CLASSES = ("well-known", "ordinary", "dubious")


@dataclass(frozen=True)
class SourceQuality:
    """Ground-truth quality parameters of one source.

    Attributes
    ----------
    coverage:
        Probability an item offered to the source is actually indexed.
    freshness_lag:
        Mean delay before an ingested item becomes visible to queries.
    error_rate:
        Probability a returned match is corrupted (its score is noise).
    trust_class:
        Coarse a-priori trust bucket (affects defaults, not behaviour).
    overpromise:
        How much the source inflates its advertised quality, >= 0.
        0 = honest; 0.3 = advertises 30% rosier than reality.
    """

    coverage: float = 0.9
    freshness_lag: float = 5.0
    error_rate: float = 0.05
    trust_class: str = "ordinary"
    overpromise: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if self.freshness_lag < 0:
            raise ValueError("freshness_lag must be non-negative")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if self.trust_class not in TRUST_CLASSES:
            raise ValueError(f"trust_class must be one of {TRUST_CLASSES}")
        if self.overpromise < 0:
            raise ValueError("overpromise must be non-negative")


@dataclass
class SourceAnswer:
    """A source's response to one subquery."""

    source_id: str
    subquery_id: str
    matches: List[Tuple[InformationItem, float]] = field(default_factory=list)
    service_time: float = 0.0
    declined: bool = False
    decline_reason: str = ""
    candidates_scanned: int = 0
    #: how many candidates were actually scored (== scanned unless the
    #: pruning path skipped provably hopeless chunks)
    candidates_scored: int = 0

    @property
    def size(self) -> int:
        """Number of matches returned."""
        return len(self.matches)


class InformationSource:
    """One independent information system in the agora.

    Parameters
    ----------
    source_id:
        Unique identifier (also used as the reputation subject).
    node_id:
        The overlay node this source lives on.
    domains:
        Content domains this source serves.
    quality:
        Ground-truth behaviour parameters.
    engine:
        The matching engine this source uses locally.  Different sources
        may use different feature sets — source heterogeneity is a §2
        uncertainty in its own right.
    streams:
        RNG scope (coverage drops, corruption, lag draws).
    pruning:
        Use the exactness-preserving bound-pruned rank path.  Answers are
        bitwise identical either way (the property suite proves it); off
        exists for the differential oracle and for A/B benchmarks.
    """

    #: base service time charged per answered subquery
    STARTUP_TIME = 0.05
    #: additional service time per candidate item scanned
    PER_CANDIDATE_TIME = 0.002

    def __init__(
        self,
        source_id: str,
        node_id: str,
        domains: Sequence[str],
        quality: SourceQuality,
        engine: MatchingEngine,
        streams: ScopedStreams,
        load: Optional[LoadModel] = None,
        health: Optional[NodeHealth] = None,
        metrics: Optional["MetricsRegistry"] = None,
        pruning: bool = True,
    ):
        if not domains:
            raise ValueError("source must serve at least one domain")
        self.source_id = source_id
        self.node_id = node_id
        self.domains = tuple(sorted(set(domains)))
        self.quality = quality
        self.engine = engine
        self.load = load
        self.health = health
        self.metrics = metrics
        self.pruning = pruning
        self.blacklist = Blacklist(source_id)
        self._rng = streams.stream(f"source.{source_id}")
        self._index = CollectionIndex()
        # Prepared batch-scoring state per domain bucket; kept coherent
        # with the index via its dirty_from/checkpoint protocol.
        self._blocks: Dict[Optional[str], CandidateBlock] = {}

    # ------------------------------------------------------------------
    # Collection management
    # ------------------------------------------------------------------
    def ingest(
        self,
        items: Sequence[InformationItem],
        now: float = 0.0,
        immediate: bool = False,
    ) -> int:
        """Offer items to the source; returns how many it indexed.

        Coverage decides whether each item is indexed at all; indexed
        items become visible after an exponential freshness lag.
        ``immediate`` skips the lag — used for historical corpora whose
        publication delay has already elapsed before the simulation start.
        """
        indexed = 0
        for item in items:
            if self._rng.random() >= self.quality.coverage:
                continue
            if immediate or self.quality.freshness_lag <= 0:
                lag = 0.0
            else:
                lag = float(self._rng.exponential(self.quality.freshness_lag))
            self._index.add(item, now + lag)
            indexed += 1
        return indexed

    def visible_items(self, now: float, domain: Optional[str] = None) -> List[InformationItem]:
        """Items queryable at virtual time ``now``."""
        return self._index.visible_items(now, domain)

    @property
    def collection_size(self) -> int:
        """Number of indexed (possibly not yet visible) items."""
        return self._index.size

    def _count_cache(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"source.block_cache.{event}").inc()

    def _block_for(self, domain: Optional[str]) -> CandidateBlock:
        """The prepared batch-scoring block for a domain bucket.

        The block's candidate order is the bucket's ``(visible_at, seq)``
        order, so "everything visible at ``now``" is always a prefix.
        Appends past the cached length extend the block in place; an
        insertion inside it (a late item becoming visible early) rebuilds.
        """
        cached = self._blocks.get(domain)
        dirty = self._index.dirty_from(domain)
        if cached is not None and (dirty is None or dirty >= len(cached)):
            bucket = self._index.bucket_items(domain)
            if len(bucket) > len(cached):
                cached.extend(bucket[len(cached):])
                self._count_cache("extends")
            else:
                self._count_cache("hits")
            self._index.checkpoint(domain)
            return cached
        self._count_cache("rebuilds" if cached is not None else "misses")
        block = self.engine.prepare(self._index.bucket_items(domain))
        self._blocks[domain] = block
        self._index.checkpoint(domain)
        return block

    # ------------------------------------------------------------------
    # Participation
    # ------------------------------------------------------------------
    def accepts(self, consumer_id: str, now: float) -> Tuple[bool, str]:
        """Whether the source will serve ``consumer_id`` right now."""
        if self.health is not None and not self.health.is_up(self.node_id):
            return False, "unavailable"
        if self.blacklist.is_banned(consumer_id, now):
            return False, "blacklisted"
        if self.load is not None and self.load.declines(self.node_id):
            return False, "overloaded"
        return True, ""

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def _domain_bounds(self, domain: Optional[str], block: CandidateBlock) -> BoundStats:
        """The bucket-wide score-ceiling stats, via the index stat cache.

        The index drops the cached stats on *any* write to the bucket, so
        a cache hit is guaranteed to describe the block's full contents
        (the bucket superset of every visible prefix — a superset ceiling
        is a valid, if looser, bound for the prefix).
        """
        cached = self._index.cached_stat("bound_aggregate", domain)
        if isinstance(cached, BoundStats):
            return cached
        aggregate = block.bounds().aggregate
        self._index.store_stat("bound_aggregate", aggregate, domain)
        return aggregate

    def answer(
        self,
        subquery: Subquery,
        now: float,
        consumer_id: str = "",
        prune: Optional[PruneHint] = None,
        parallel: Optional["ParallelRankService"] = None,
    ) -> SourceAnswer:
        """Evaluate ``subquery`` against the visible collection.

        Returns a declined answer when the source refuses to participate.
        Match scores are the source's local engine scores, except that a
        fraction ``error_rate`` of them are corrupted to uniform noise.

        A :class:`~repro.query.model.PruneHint` tightens the work the
        source does without changing what it returns: the surviving
        (item, score) pairs are exactly ``rank[:k]`` filtered by the
        floor.  The hint is honoured only for exact (``error_rate == 0``)
        sources — ranking happens *before* corruption, so a corrupted
        score could cross the floor in either direction and the floor
        filter must then stay on the consumer's side.

        When a :class:`~repro.parallel.service.ParallelRankService` is
        supplied, ranking fans out to the shard pool; the service's merge
        discipline guarantees the result is bitwise what the in-process
        path computes, and any unavailability (pool stopped, worker
        crash) silently falls back to local scoring.  The domain-skip
        shortcut stays on this side either way — it never scores, so
        there is nothing to fan out.  Simulated ``service_time`` is
        charged identically with or without sharding: the virtual-time
        cost model prices the logical scan, not the host's parallelism
        (see :class:`repro.parallel.model.ScanCostModel` for the shard
        latency story).
        """
        ok, reason = self.accepts(consumer_id, now)
        if not ok:
            return SourceAnswer(
                source_id=self.source_id,
                subquery_id=subquery.subquery_id,
                declined=True,
                decline_reason=reason,
            )
        n_candidates = self._index.visible_count(now, domain=subquery.domain)
        evidence = subquery.evidence_item()
        block = self._block_for(subquery.domain)
        k_returned = subquery.k
        floor = 0.0
        if prune is not None and self.quality.error_rate == 0.0:
            if prune.k_cap is not None:
                k_returned = min(k_returned, prune.k_cap)
            floor = prune.score_floor
        ranked: List[Tuple[InformationItem, float]]
        scored = n_candidates
        if self.pruning:
            bounds = block.bounds()
            state = bounds.query_state(evidence)
            if (
                floor > 0.0
                and n_candidates > 0
                and state is not None
                and self._domain_bounds(subquery.domain, block).ceiling(state) < floor
            ):
                # The whole bucket's ceiling is under the floor: nothing
                # visible can survive the plan, skip scoring entirely.
                prune_stats = self.engine.observe_domain_skip(n_candidates)
                ranked = []
            else:
                sharded = (
                    parallel.rank_block_topk(
                        self.source_id,
                        subquery.domain,
                        block,
                        evidence,
                        k_returned,
                        limit=n_candidates,
                        score_floor=floor,
                        now=now,
                    )
                    if parallel is not None
                    else None
                )
                if sharded is not None:
                    ranked, prune_stats = sharded
                else:
                    ranked, prune_stats = self.engine.rank_block_topk(
                        evidence,
                        block,
                        k_returned,
                        limit=n_candidates,
                        score_floor=floor,
                    )
            scored = prune_stats.candidates_scored
        else:
            sharded_rank = (
                parallel.rank_block(
                    self.source_id,
                    subquery.domain,
                    block,
                    evidence,
                    limit=n_candidates,
                    now=now,
                )
                if parallel is not None
                else None
            )
            if sharded_rank is not None:
                ranked = sharded_rank
            else:
                ranked = self.engine.rank_block(evidence, block, limit=n_candidates)
            ranked = ranked[:k_returned]
            if floor > 0.0:
                ranked = [(item, s) for item, s in ranked if s >= floor]
        matches: List[Tuple[InformationItem, float]] = []
        if self.quality.error_rate > 0.0:
            # Guarded so exact sources draw nothing here: the pruned and
            # exhaustive paths then consume identical RNG streams, which
            # the live-ingest parity suite depends on.
            for item, score in ranked:
                if self._rng.random() < self.quality.error_rate:
                    score = float(self._rng.random())
                matches.append((item, score))
        else:
            matches.extend(ranked)
        # Service time models the scan over *visible* candidates, not the
        # scorings pruning saved — simulated timing stays identical with
        # pruning on or off.
        service_time = self.STARTUP_TIME + self.PER_CANDIDATE_TIME * n_candidates
        if self.load is not None:
            service_time *= self.load.service_slowdown(self.node_id)
        return SourceAnswer(
            source_id=self.source_id,
            subquery_id=subquery.subquery_id,
            matches=matches,
            service_time=service_time,
            candidates_scanned=n_candidates,
            candidates_scored=scored,
        )

    # ------------------------------------------------------------------
    # Estimation and advertising
    # ------------------------------------------------------------------
    def true_quality_vector(self, now: float, domain: str) -> QoSVector:
        """The QoS this source would actually deliver on average."""
        visible = self._index.visible_count(now, domain)
        total = self._index.domain_size(domain)
        visibility = visible / total if total else 0.0
        return QoSVector(
            response_time=self.STARTUP_TIME + self.PER_CANDIDATE_TIME * visible,
            completeness=self.quality.coverage * visibility,
            freshness=1.0 / (1.0 + self.quality.freshness_lag / 10.0),
            correctness=1.0 - self.quality.error_rate,
            trust=1.0,  # trust is assigned by the consumer's reputation view
        )

    def cost_estimate(self, subquery: Subquery, now: float) -> UncertainEstimate:
        """Uncertain estimate of service time for ``subquery``."""
        candidates = self._index.visible_count(now, domain=subquery.domain)
        mean = self.STARTUP_TIME + self.PER_CANDIDATE_TIME * candidates
        if self.load is not None:
            mean *= self.load.service_slowdown(self.node_id)
        return UncertainEstimate(mean=mean, std=0.3 * mean, low=0.0, high=4.0 * mean)

    def advertised_quality(self, now: float, domain: str) -> QoSVector:
        """What the source *claims* it delivers (optimism applied)."""
        truth = self.true_quality_vector(now, domain)
        boost = 1.0 + self.quality.overpromise
        return QoSVector(
            response_time=truth.response_time / boost,
            completeness=min(1.0, truth.completeness * boost),
            freshness=min(1.0, truth.freshness * boost),
            correctness=min(1.0, truth.correctness * boost),
            trust=truth.trust,
        )

    def __repr__(self) -> str:
        return (
            f"InformationSource({self.source_id!r}, node={self.node_id!r}, "
            f"domains={self.domains}, items={self.collection_size})"
        )
