"""Contract-net protocol: call-for-proposals → bids → award.

"Query answers and query operator execution jobs (or parts of them) should
be traded in the network until deals are struck and contracts are 'signed'
with some information sources for specific levels of QoS" (§4).  The
contract net is the one-shot market mechanism: the consumer issues a CFP
for a job, providers bid (price + promised QoS), the consumer awards the
job to the bid with the highest consumer utility and signs an SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence

from repro.qos.pricing import Quote
from repro.qos.sla import SLAContract
from repro.qos.vector import QoSRequirement, QoSVector, QoSWeights, scalarize


@dataclass(frozen=True)
class CallForProposals:
    """An announcement of one job to be contracted."""

    job_id: str
    domain: str
    requirement: QoSRequirement
    consumer_id: str
    issued_at: float = 0.0


@dataclass
class Proposal:
    """One provider's bid for a CFP."""

    provider_id: str
    cfp: CallForProposals
    quote: Quote
    promised: QoSVector
    subcontracted: bool = False
    chain_depth: int = 0
    #: where the work will physically run (differs from provider_id when
    #: an intermediary resells a downstream source's capacity)
    execution_source_id: Optional[str] = None

    @property
    def total_price(self) -> float:
        """Base price plus premium."""
        return self.quote.total

    @property
    def executor_id(self) -> str:
        """The source that will physically run the job."""
        return self.execution_source_id or self.provider_id


class Bidder(Protocol):
    """Anything that can respond to a CFP (source adapters, intermediaries)."""

    def __call__(self, cfp: CallForProposals) -> Optional[Proposal]: ...


AwardHook = Callable[[Proposal, SLAContract], None]


def consumer_bid_score(
    weights: QoSWeights, price_sensitivity: float = 0.02
) -> Callable[[Proposal], float]:
    """Default bid scoring: promised-QoS utility minus a price term."""
    if price_sensitivity < 0:
        raise ValueError("price_sensitivity must be non-negative")

    def score(proposal: Proposal) -> float:
        return scalarize(proposal.promised, weights) - price_sensitivity * proposal.total_price

    return score


@dataclass
class ContractNetOutcome:
    """Result of one CFP round."""

    cfp: CallForProposals
    proposals: List[Proposal] = field(default_factory=list)
    awarded: Optional[Proposal] = None
    contract: Optional[SLAContract] = None

    @property
    def bidders(self) -> int:
        """How many proposals were received."""
        return len(self.proposals)


class ContractNetProtocol:
    """Runs CFP rounds and signs contracts with winners.

    Parameters
    ----------
    scorer:
        Consumer-side scoring of proposals; highest wins.
    min_score:
        Bids below this score are rejected even if they are the best
        (the consumer's outside option).
    """

    def __init__(
        self,
        scorer: Callable[[Proposal], float],
        min_score: float = 0.0,
    ):
        self.scorer = scorer
        self.min_score = min_score
        self._award_hooks: List[AwardHook] = []

    def on_award(self, hook: AwardHook) -> None:
        """Register ``hook(proposal, contract)`` fired when a bid wins."""
        self._award_hooks.append(hook)

    def run(
        self,
        cfp: CallForProposals,
        bidders: Sequence[Bidder],
        now: float = 0.0,
    ) -> ContractNetOutcome:
        """Collect proposals from ``bidders`` and award the best one."""
        proposals = []
        for bidder in bidders:
            proposal = bidder(cfp)
            if proposal is not None:
                proposals.append(proposal)
        outcome = ContractNetOutcome(cfp=cfp, proposals=proposals)
        if not proposals:
            return outcome
        scored = sorted(
            proposals,
            key=lambda p: (-self.scorer(p), p.total_price, p.provider_id),
        )
        best = scored[0]
        if self.scorer(best) < self.min_score:
            return outcome
        contract = SLAContract(
            provider_id=best.provider_id,
            consumer_id=cfp.consumer_id,
            requirement=cfp.requirement,
            base_price=best.quote.base_price,
            premium=best.quote.premium,
            compensation=best.quote.compensation,
            signed_at=now,
            job_id=cfp.job_id,
        )
        outcome.awarded = best
        outcome.contract = contract
        for hook in self._award_hooks:
            hook(best, contract)
        return outcome
