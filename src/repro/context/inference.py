"""Context inference from observed activity.

"Context identification will also be needed at run time so that the
appropriate parts of the user's profile become activated" (§8).  The
inferencer is a small naive-Bayes-style frequency model: it observes
(evidence, true context) pairs during a calibration phase and then
predicts the most likely value per context dimension from run-time
evidence (interaction mode, dominant item domain, companion count).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.context.model import Context

Evidence = Tuple[str, str]  # (interaction mode, dominant item domain)


@dataclass(frozen=True)
class ActivityObservation:
    """One run-time evidence sample."""

    mode: str
    dominant_domain: str

    @property
    def key(self) -> Evidence:
        """Hashable evidence key."""
        return (self.mode, self.dominant_domain)


class ContextInferencer:
    """Frequency-based context predictor.

    Laplace-smoothed per-dimension value counts conditioned on evidence.
    Unseen evidence falls back to the marginal distribution; a completely
    untrained model predicts the default context.
    """

    INFERRED_DIMENSIONS = ("time_of_day", "task", "previous_activity")

    def __init__(self, smoothing: float = 1.0):
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = smoothing
        # dimension -> evidence -> value -> count
        self._counts: Dict[str, Dict[Evidence, Dict[str, float]]] = {
            dim: defaultdict(lambda: defaultdict(float))
            for dim in self.INFERRED_DIMENSIONS
        }
        self._marginals: Dict[str, Dict[str, float]] = {
            dim: defaultdict(float) for dim in self.INFERRED_DIMENSIONS
        }
        self._observations = 0

    # ------------------------------------------------------------------
    def observe(self, evidence: ActivityObservation, true_context: Context) -> None:
        """Record one labelled calibration sample."""
        for dimension in self.INFERRED_DIMENSIONS:
            value = str(true_context.value(dimension))
            self._counts[dimension][evidence.key][value] += 1.0
            self._marginals[dimension][value] += 1.0
        self._observations += 1

    @property
    def observations(self) -> int:
        """Number of calibration samples recorded."""
        return self._observations

    # ------------------------------------------------------------------
    def _predict_dimension(self, dimension: str, evidence: ActivityObservation) -> Optional[str]:
        conditioned = self._counts[dimension].get(evidence.key)
        table = conditioned if conditioned else self._marginals[dimension]
        if not table:
            return None
        # Laplace smoothing over observed values; deterministic tie-break.
        scored = sorted(
            table.items(), key=lambda pair: (-(pair[1] + self.smoothing), pair[0])
        )
        return scored[0][0]

    def infer(
        self,
        evidence: ActivityObservation,
        default: Optional[Context] = None,
    ) -> Context:
        """Predict the current context from run-time evidence."""
        base = default if default is not None else Context()
        changes: Dict[str, str] = {}
        for dimension in self.INFERRED_DIMENSIONS:
            predicted = self._predict_dimension(dimension, evidence)
            if predicted is not None:
                changes[dimension] = predicted
        return base.with_(**changes)

    def accuracy(
        self, samples: Sequence[Tuple[ActivityObservation, Context]]
    ) -> float:
        """Mean per-dimension accuracy over labelled test samples."""
        if not samples:
            return 0.0
        correct = 0
        total = 0
        for evidence, truth in samples:
            predicted = self.infer(evidence)
            for dimension in self.INFERRED_DIMENSIONS:
                total += 1
                if predicted.value(dimension) == truth.value(dimension):
                    correct += 1
        return correct / total
