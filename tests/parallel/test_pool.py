"""Integration tests for the spawn-based shard pool.

Everything here runs real worker processes (spawn context, shared-memory
block exports), so the suite keeps one module-scoped pool for the happy
paths and builds throwaway pools only where the scenario consumes them
(crash degradation).  Bitwise parity with the in-process engine is the
contract under test; the logic-level property suite lives in
``test_shard_parity.py``.
"""

import pickle

import pytest

from repro.data import (
    CorpusGenerator,
    DomainSpec,
    FeatureExtractor,
    TopicSpace,
    Vocabulary,
)
from repro.obs.aggregate import merge_snapshots, snapshot_shard
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ShardPool,
    ShardSafetyError,
    ShmArena,
    attach_segment,
    leaked_segments,
)
from repro.parallel.safety import default_manifest_path
from repro.sim import RngStreams
from repro.uncertainty import build_matching_engine

pytestmark = pytest.mark.slow

POOL_SIZE = 30


def _build_world():
    streams = RngStreams(seed=4242).spawn("pool-test")
    space = TopicSpace(8)
    vocabulary = Vocabulary(
        space, streams.spawn("v"), vocabulary_size=400, terms_per_topic=50
    )
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=16
    )
    extractor = FeatureExtractor(16, streams.spawn("f"))

    def spec(name, mix):
        return DomainSpec(
            name=name,
            topic_prior={"folk-jewelry": 0.6, "dance-forms": 0.4},
            type_mix=mix,
            concentration=0.4,
        )

    sample = corpus.generate(
        spec("sample", {"text": 0.0, "media": 1.0, "compound": 0.0}), 40
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    pool_items = corpus.generate(
        spec("pool", {"text": 0.4, "media": 0.4, "compound": 0.2}), POOL_SIZE
    )
    extra = corpus.generate(
        spec("pool", {"text": 0.5, "media": 0.5, "compound": 0.0}), 8
    )
    queries = corpus.generate(
        spec("query", {"text": 0.5, "media": 0.3, "compound": 0.2}), 4
    )
    return engine, pool_items, extra, queries


@pytest.fixture(scope="module")
def world():
    return _build_world()


@pytest.fixture(scope="module")
def pool(world):
    engine, items, extra, __ = world
    shard_pool = ShardPool(engine, n_shards=2, seed=7).start()
    shard_pool.register("pool", items)
    shard_pool.register("domain", extra, worker=1)
    yield shard_pool
    shard_pool.stop()


def _assert_bitwise(actual, expected):
    assert [i.item_id for i, __ in actual] == [i.item_id for i, __ in expected]
    assert [s for __, s in actual] == [s for __, s in expected]  # bitwise


class TestRankParity:
    def test_full_rank_matches_in_process(self, pool, world):
        engine, items, __, queries = world
        block = engine.prepare(items)
        for query in queries:
            _assert_bitwise(
                pool.rank("pool", query), engine.rank_block(query, block)
            )

    def test_limited_rank_matches_in_process(self, pool, world):
        engine, items, __, queries = world
        block = engine.prepare(items)
        for limit in (0, 1, 7, POOL_SIZE, POOL_SIZE + 5):
            _assert_bitwise(
                pool.rank("pool", queries[0], limit=limit),
                engine.rank_block(queries[0], block, limit=min(limit, POOL_SIZE)),
            )

    def test_topk_matches_in_process(self, pool, world):
        engine, items, __, queries = world
        block = engine.prepare(items)
        for query in queries:
            for k, floor in ((1, 0.0), (5, 0.0), (5, 0.5), (POOL_SIZE, 0.9)):
                expected, est = engine.rank_block_topk(
                    query, block, k, limit=POOL_SIZE, score_floor=floor
                )
                actual, stats = pool.rank_topk(
                    "pool", query, k, score_floor=floor
                )
                _assert_bitwise(actual, expected)
                assert stats.candidates_total == est.candidates_total

    def test_zero_limit_topk(self, pool, world):
        __, __, __, queries = world
        ranked, stats = pool.rank_topk("pool", queries[0], 5, limit=0)
        assert ranked == []
        assert stats.candidates_total == 0

    def test_score_many_matches_in_process(self, pool, world):
        engine, items, __, queries = world
        block = engine.prepare(items)
        expected = block.score(queries[1], limit=POOL_SIZE)
        actual = pool.score_many("pool", queries[1])
        assert actual.tolist() == expected.tolist()  # bitwise

    def test_domain_mode_matches_in_process(self, pool, world):
        engine, __, extra, queries = world
        block = engine.prepare(extra)
        expected, __ = engine.rank_block_topk(
            queries[2], block, 4, limit=len(extra)
        )
        actual, __ = pool.rank_topk("domain", queries[2], 4)
        _assert_bitwise(actual, expected)

    def test_extend_keeps_parity(self, pool, world):
        engine, items, extra, queries = world
        pool.register("growing", items[:10])
        pool.extend("growing", extra[:5])
        assert pool.pool_size("growing") == 15
        block = engine.prepare(items[:10] + extra[:5])
        _assert_bitwise(
            pool.rank("growing", queries[3]),
            engine.rank_block(queries[3], block),
        )
        merged, __ = pool.rank_topk("growing", queries[3], 6)
        expected, __ = engine.rank_block_topk(queries[3], block, 6, limit=15)
        _assert_bitwise(merged, expected)

    def test_reregister_replaces_pool(self, pool, world):
        engine, items, extra, queries = world
        pool.register("swap", items[:8])
        pool.register("swap", extra)  # replaces, old segments retired
        block = engine.prepare(extra)
        _assert_bitwise(
            pool.rank("swap", queries[0]), engine.rank_block(queries[0], block)
        )


class TestLifecycle:
    def test_unstarted_pool_refuses_requests(self, world):
        engine, items, __, queries = world
        idle = ShardPool(engine, n_shards=2)
        with pytest.raises(RuntimeError, match="not started"):
            idle.rank("pool", queries[0])
        with pytest.raises(RuntimeError, match="not started"):
            idle.register("pool", items)

    def test_engine_pickles_without_metrics(self, world):
        engine, items, __, queries = world
        engine.attach_metrics(MetricsRegistry())
        try:
            shard_pool = ShardPool(engine, n_shards=1)
            clone = pickle.loads(shard_pool._pickle_engine())
        finally:
            engine.attach_metrics(None)
        assert clone._metrics is None
        # The clone scores bitwise like the original.
        assert clone.score(queries[0], items[0]) == engine.score(
            queries[0], items[0]
        )

    def test_stop_unlinks_all_segments(self, world):
        engine, items, __, queries = world
        before = set(leaked_segments())  # the module pool's live segments
        with ShardPool(engine, n_shards=2, seed=11) as throwaway:
            throwaway.register("pool", items)
            throwaway.rank("pool", queries[0])
            assert set(leaked_segments()) > before
        assert set(leaked_segments()) == before

    def test_invalid_shard_count(self, world):
        engine, *_ = world
        with pytest.raises(ValueError):
            ShardPool(engine, n_shards=0)

    def test_invalid_worker_index(self, pool, world):
        __, items, *_ = world
        with pytest.raises(ValueError, match="out of range"):
            pool.register("bad", items, worker=9)


class TestCrashDegradation:
    def test_crash_falls_back_bitwise_and_degrades_permanently(self, world):
        engine, items, __, queries = world
        block = engine.prepare(items)
        before = set(leaked_segments())  # the module pool's live segments
        with ShardPool(engine, n_shards=2, seed=23) as crashing:
            crashing.register("pool", items)
            # Kill one worker out from under the pool.
            victim = crashing._workers[0].process
            victim.terminate()
            victim.join(timeout=10)

            ranked = crashing.rank("pool", queries[0])
            _assert_bitwise(ranked, engine.rank_block(queries[0], block))
            assert crashing.degraded
            assert crashing.fallbacks == 1

            # Degradation is permanent and deterministic: every later
            # call takes the in-process path, still bitwise correct.
            merged, stats = crashing.rank_topk("pool", queries[1], 5)
            expected, est = engine.rank_block_topk(
                queries[1], block, 5, limit=POOL_SIZE
            )
            _assert_bitwise(merged, expected)
            assert stats.candidates_scored == est.candidates_scored
            assert crashing.fallbacks == 2
            assert crashing.snapshots() == []

            # Registration and ingest still work (coordinator-side only).
            crashing.register("late", items[:5])
            crashing.extend("late", items[5:7])
            assert crashing.pool_size("late") == 7
        assert set(leaked_segments()) == before


class TestTelemetry:
    def test_worker_snapshots_merge_with_coordinator(self, pool, world):
        __, __, __, queries = world
        pool.rank_topk("pool", queries[0], 5, now=2.5)
        snapshots = pool.snapshots()
        assert [s.shard_id for s in snapshots] == [1, 2]
        assert all(s.event_count > 0 for s in snapshots)
        spans = [span for s in snapshots for span in s.spans]
        assert any(span.name == "shard-rank" for span in spans)
        # Span ids are namespaced per shard: no collisions across workers.
        span_ids = [span.span_id for span in spans]
        assert len(span_ids) == len(set(span_ids))
        coordinator = snapshot_shard(0, MetricsRegistry(), sim_time=2.5)
        merged = merge_snapshots([coordinator] + snapshots)
        assert merged.shard_ids == [0, 1, 2]
        assert merged.sim_time == 2.5


class TestSafetyGate:
    def test_tampered_manifest_blocks_construction(self, tmp_path, world):
        engine, *_ = world
        manifest = default_manifest_path().read_text()
        tampered = manifest.replace(
            '"repro.uncertainty.matching.MatchingEngine.rank_block_topk": "READS_SHARED"',
            '"repro.uncertainty.matching.MatchingEngine.rank_block_topk": "MUTATES_SHARED"',
        )
        assert tampered != manifest  # the entry we expect is present
        path = tmp_path / "shard_safety.json"
        path.write_text(tampered)
        with pytest.raises(ShardSafetyError, match="rank_block_topk"):
            ShardPool(engine, n_shards=2, manifest_path=path)

    def test_missing_manifest_blocks_construction(self, tmp_path, world):
        engine, *_ = world
        with pytest.raises(ShardSafetyError, match="not found"):
            ShardPool(engine, n_shards=2, manifest_path=tmp_path / "nope.json")


class TestShmArena:
    def test_share_attach_release_roundtrip(self):
        import numpy as np

        before = set(leaked_segments())
        arena = ShmArena()
        spec = arena.share(np.arange(12, dtype=float).reshape(3, 4))
        assert spec is not None and spec.n_bytes == 96
        segment = attach_segment(spec.name)
        view = np.ndarray(spec.shape, dtype="<f8", buffer=segment.buf)
        assert view.tolist() == np.arange(12, dtype=float).reshape(3, 4).tolist()
        segment.close()
        arena.release([spec])
        assert spec.name not in leaked_segments()
        arena.close_and_unlink()
        arena.close_and_unlink()  # idempotent
        assert set(leaked_segments()) == before

    def test_empty_array_is_not_shared(self):
        import numpy as np

        arena = ShmArena()
        assert arena.share(np.zeros((0, 4))) is None
        arena.close_and_unlink()

    def test_attached_views_are_read_only(self):
        import numpy as np

        arena = ShmArena()
        spec = arena.share(np.ones(5))
        try:
            from repro.parallel import AttachedArray

            attached = AttachedArray(spec)
            with pytest.raises(ValueError):
                attached.array[0] = 2.0
            attached.close()
            attached.close()  # idempotent
        finally:
            arena.close_and_unlink()
