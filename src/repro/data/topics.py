"""Latent topic space underlying all synthetic information objects.

The paper's Open Agora trades heterogeneous objects — images of jewels,
auction catalogs, magazine articles — whose *meaning* must be comparable
across types.  We model meaning as a shared latent topic space: every item,
query and user interest is a point on the probability simplex over
``n_topics`` topics.  Ground-truth relevance between any two entities is a
function of their latent vectors, which gives experiments an oracle to
score against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

DEFAULT_TOPIC_NAMES = [
    "folk-jewelry",
    "traditional-costume",
    "dance-forms",
    "museum-exhibitions",
    "auction-market",
    "fashion-trends",
    "regional-history",
    "tourism",
    "craft-techniques",
    "academic-theses",
]


class TopicSpace:
    """A fixed latent topic space shared by the whole agora.

    Parameters
    ----------
    n_topics:
        Dimensionality of the simplex.
    names:
        Optional human-readable topic names; generated when omitted.
    """

    def __init__(self, n_topics: int = 10, names: Optional[Sequence[str]] = None):
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        self.n_topics = n_topics
        if names is None:
            base = DEFAULT_TOPIC_NAMES
            names = [
                base[i] if i < len(base) else f"topic-{i}" for i in range(n_topics)
            ]
        if len(names) != n_topics:
            raise ValueError("names length must equal n_topics")
        self.names: List[str] = list(names)

    # ------------------------------------------------------------------
    def validate(self, vector: np.ndarray) -> np.ndarray:
        """Check that ``vector`` is a valid point of this space."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.n_topics,):
            raise ValueError(
                f"expected shape ({self.n_topics},), got {vector.shape}"
            )
        if np.any(vector < -1e-12):
            raise ValueError("topic vector has negative components")
        return np.clip(vector, 0.0, None)

    def normalize(self, vector: np.ndarray) -> np.ndarray:
        """Project ``vector`` onto the simplex (L1-normalise, clip at 0)."""
        vector = self.validate(vector)
        total = vector.sum()
        if total <= 0:
            return np.full(self.n_topics, 1.0 / self.n_topics)
        return vector / total

    def sample(
        self,
        rng: np.random.Generator,
        concentration: float = 0.3,
        prior: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw a topic vector from a Dirichlet distribution.

        ``concentration`` < 1 yields peaked (specialised) vectors;
        larger values yield diffuse ones.  ``prior`` biases the draw
        towards a given mixture.
        """
        if prior is None:
            alpha = np.full(self.n_topics, concentration)
        else:
            prior = self.normalize(prior)
            alpha = concentration * self.n_topics * prior + 1e-3
        return rng.dirichlet(alpha)

    def relevance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Ground-truth relevance between two latent vectors in [0, 1].

        Cosine similarity of simplex points; both arguments are validated.
        """
        a = self.validate(a)
        b = self.validate(b)
        na = np.linalg.norm(a)
        nb = np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    def peak_topic(self, vector: np.ndarray) -> str:
        """Name of the dominant topic of ``vector``."""
        vector = self.validate(vector)
        return self.names[int(np.argmax(vector))]

    def basis(self, topic: str, weight: float = 1.0) -> np.ndarray:
        """Return a vector concentrated on ``topic``.

        The remaining mass (``1 - weight``) is spread uniformly.
        """
        if topic not in self.names:
            raise KeyError(f"unknown topic {topic!r}")
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        index = self.names.index(topic)
        vector = np.full(self.n_topics, (1.0 - weight) / self.n_topics)
        vector[index] += weight
        return vector / vector.sum()

    def __repr__(self) -> str:
        return f"TopicSpace(n_topics={self.n_topics})"
