"""AGR001 — wall-clock reads inside the library.

Simulation code must tell time through ``Simulator.now`` (virtual time);
reading the host clock makes a run depend on machine speed and breaks the
same-seed-same-run contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    """Ban host-clock reads in favour of the kernel's virtual clock."""

    rule_id = "AGR001"
    title = "wall-clock read"
    rationale = (
        "Host-clock reads make runs machine-dependent; use Simulator.now "
        "(virtual time) instead."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "benchmarks", "examples"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            resolved = ctx.resolve(node)
            if resolved in _BANNED:
                # Only report the outermost matching chain, not `time` inside
                # `time.time` — Name nodes resolving to a bare module never
                # hit _BANNED, so no dedup pass is needed.
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read `{resolved}`; use the simulator's "
                    "virtual clock (Simulator.now) instead",
                )
