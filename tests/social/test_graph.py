"""Tests for the social graph."""

import pytest

from repro.social import SocialGraph


@pytest.fixture
def graph():
    g = SocialGraph()
    g.befriend("iris", "jason", strength=1.0)
    g.befriend("jason", "maria", strength=0.5)
    g.add_user("hermit")
    return g


class TestTies:
    def test_befriend_symmetric(self, graph):
        assert graph.are_friends("iris", "jason")
        assert graph.are_friends("jason", "iris")

    def test_self_friendship_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.befriend("iris", "iris")

    def test_invalid_strength(self, graph):
        with pytest.raises(ValueError):
            graph.befriend("a", "b", strength=0.0)

    def test_unfriend(self, graph):
        graph.unfriend("iris", "jason")
        assert not graph.are_friends("iris", "jason")

    def test_tie_strength(self, graph):
        assert graph.tie_strength("jason", "maria") == 0.5
        assert graph.tie_strength("iris", "maria") == 0.0

    def test_friends_listing(self, graph):
        assert graph.friends("jason") == ["iris", "maria"]
        assert graph.friends("nobody") == []


class TestDistance:
    def test_self_distance_zero(self, graph):
        assert graph.distance("iris", "iris") == 0.0

    def test_direct_distance(self, graph):
        assert graph.distance("iris", "jason") == pytest.approx(1.0)

    def test_weak_ties_are_longer(self, graph):
        assert graph.distance("jason", "maria") == pytest.approx(2.0)

    def test_path_distance_sums(self, graph):
        assert graph.distance("iris", "maria") == pytest.approx(3.0)

    def test_disconnected_infinite(self, graph):
        assert graph.distance("iris", "hermit") == float("inf")

    def test_proximity_bounds(self, graph):
        assert graph.proximity("iris", "iris") == 1.0
        assert graph.proximity("iris", "hermit") == 0.0
        assert 0.0 < graph.proximity("iris", "maria") < 1.0


class TestNeighbourhood:
    def test_within_hops(self, graph):
        assert graph.within_hops("iris", 1) == ["jason"]
        assert graph.within_hops("iris", 2) == ["jason", "maria"]

    def test_within_hops_negative(self, graph):
        with pytest.raises(ValueError):
            graph.within_hops("iris", -1)

    def test_len_contains(self, graph):
        assert len(graph) == 4
        assert "hermit" in graph
        assert "stranger" not in graph
