"""Tests for negotiation utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.negotiation import (
    AdditiveUtility,
    NegotiationPreferences,
    buyer_utility,
    seller_utility,
    standard_qos_issue_space,
)

SPACE = standard_qos_issue_space(max_price=10.0, max_response_time=10.0)


def _random_offer(price, rt, quality):
    return {
        "price": price,
        "response_time": rt,
        "completeness": quality,
        "freshness": quality,
        "correctness": quality,
    }


class TestAdditiveUtility:
    def test_buyer_likes_cheap_and_good(self):
        buyer = buyer_utility(SPACE)
        great = _random_offer(price=0.0, rt=0.01, quality=1.0)
        awful = _random_offer(price=10.0, rt=10.0, quality=0.0)
        assert buyer(great) > 0.99
        assert buyer(awful) < 0.01

    def test_seller_preferences_opposed(self):
        buyer = buyer_utility(SPACE)
        seller = seller_utility(SPACE)
        offer = _random_offer(price=8.0, rt=8.0, quality=0.2)
        assert seller(offer) > 0.5 > buyer(offer)

    def test_weights_must_cover_space(self):
        with pytest.raises(ValueError):
            AdditiveUtility(SPACE, {"price": 1.0}, {name: True for name in SPACE.names})

    def test_negative_weight_rejected(self):
        weights = {name: 1.0 for name in SPACE.names}
        weights["price"] = -1.0
        with pytest.raises(ValueError):
            AdditiveUtility(SPACE, weights, {name: True for name in SPACE.names})

    def test_ideal_and_worst_are_extremes(self):
        buyer = buyer_utility(SPACE)
        assert buyer(buyer.ideal()) == pytest.approx(1.0)
        assert buyer(buyer.worst()) == pytest.approx(0.0)

    @given(st.floats(min_value=0, max_value=1))
    def test_iso_utility_hits_target(self, target):
        buyer = buyer_utility(SPACE)
        offer = buyer.iso_utility_offer(target)
        assert buyer(offer) == pytest.approx(target, abs=1e-3)

    def test_iso_utility_toward_opponent(self):
        buyer = buyer_utility(SPACE)
        seller = seller_utility(SPACE)
        toward_seller = buyer.iso_utility_offer(0.6, toward=seller.ideal())
        neutral = buyer.iso_utility_offer(0.6)
        # Steering toward the seller should make the seller (weakly) happier.
        assert seller(toward_seller) >= seller(neutral) - 1e-6

    def test_iso_utility_invalid_target(self):
        with pytest.raises(ValueError):
            buyer_utility(SPACE).iso_utility_offer(1.5)


class TestPreferences:
    def test_acceptable(self):
        prefs = NegotiationPreferences(buyer_utility(SPACE), reservation=0.5)
        assert prefs.acceptable(_random_offer(0.0, 0.01, 1.0))
        assert not prefs.acceptable(_random_offer(10.0, 10.0, 0.0))

    def test_invalid_reservation(self):
        with pytest.raises(ValueError):
            NegotiationPreferences(buyer_utility(SPACE), reservation=2.0)
