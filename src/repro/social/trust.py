"""Socialized trust: borrowing your circle's experience with sources.

§6's socialization applies to *every* aspect of personalization —
including which sources to trust ("they trust different information
sources", §5).  When a consumer has little first-hand experience with a
source, it can blend in the affinity-weighted opinions of neighbours who
shared their reputation views (privacy permitting).

Blend rule: own evidence counts in full; the neighbourhood vote is
discounted by each neighbour's affinity, and the two are combined in
proportion to their evidence masses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.social.affinity import AffineNeighbour
from repro.trust.reputation import ReputationSystem


@dataclass
class TrustOpinion:
    """One neighbour's shared view of a source."""

    neighbour_id: str
    affinity: float
    score: float
    evidence: float


class SocialTrustView:
    """A consumer's trust view augmented by neighbours' reputations.

    Parameters
    ----------
    own:
        The consumer's first-hand reputation system.
    neighbour_systems:
        Each affine neighbour's reputation system (only neighbours whose
        view the consumer may read — privacy filtering happens upstream,
        in the AffinityIndex).
    """

    def __init__(
        self,
        own: ReputationSystem,
        neighbour_systems: Dict[str, ReputationSystem],
        neighbours: Sequence[AffineNeighbour],
    ):
        self.own = own
        self._systems = dict(neighbour_systems)
        self._neighbours = {n.user_id: n for n in neighbours}

    # ------------------------------------------------------------------
    def opinions(self, source_id: str) -> List[TrustOpinion]:
        """Neighbours' (affinity-weighted) opinions about ``source_id``."""
        collected = []
        for user_id in sorted(self._neighbours):
            system = self._systems.get(user_id)
            if system is None:
                continue
            evidence = system.evidence(source_id)
            if evidence <= 0:
                continue
            collected.append(TrustOpinion(
                neighbour_id=user_id,
                affinity=self._neighbours[user_id].affinity,
                score=system.score(source_id),
                evidence=evidence,
            ))
        return collected

    def score(self, source_id: str) -> float:
        """Blended trust score for ``source_id``.

        Own evidence mass vs affinity-discounted neighbour evidence mass
        decide the mix; with no evidence anywhere, the neutral prior 0.5.
        """
        own_evidence = self.own.evidence(source_id)
        own_score = self.own.score(source_id)
        opinions = self.opinions(source_id)
        social_mass = sum(o.affinity * o.evidence for o in opinions)
        if social_mass <= 0:
            return own_score
        social_score = (
            sum(o.affinity * o.evidence * o.score for o in opinions) / social_mass
        )
        total = own_evidence + social_mass
        if total <= 0:
            return 0.5
        return (own_evidence * own_score + social_mass * social_score) / total

    def informed_sources(self) -> List[str]:
        """Sources anyone in the view has evidence about."""
        known = set(self.own.known_subjects())
        for system in self._systems.values():
            known.update(system.known_subjects())
        return sorted(known)
