# module: repro.core.fixture_suppressed
"""Fixture: inline suppressions — one used, one unused."""

import time


def calibrate(sim):
    # The suppression below is USED: it silences a real AGR001 hit.
    wall = time.time()  # agora: ignore[AGR001] host-clock calibration harness
    # The suppression below is UNUSED: nothing on the line violates AGR002.
    virtual = sim.now  # agora: ignore[AGR002] nothing to silence
    return wall, virtual
