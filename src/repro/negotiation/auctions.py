"""Sealed-bid auctions over service proposals.

Besides bilateral bargaining and the contract net, market mechanisms in
the agora include classic sealed-bid auctions (the paper's commercial-
exchange framing; mechanisms from Rosenschein & Zlotkin's *Rules of
Encounter*).  The consumer auctions a job; providers submit one sealed
quote each; the winner is the cheapest *qualified* bid and pays either its
own price (first-price) or the runner-up's (second-price / Vickrey, which
makes truthful cost revelation a dominant strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

from repro.negotiation.contract_net import CallForProposals, Proposal
from repro.qos.sla import SLAContract


class AuctionKind(Enum):
    """Clearing rules for sealed-bid auctions."""
    FIRST_PRICE = "first-price"
    SECOND_PRICE = "second-price"


@dataclass
class AuctionOutcome:
    """Result of one sealed-bid auction."""

    cfp: CallForProposals
    kind: AuctionKind
    bids: List[Proposal] = field(default_factory=list)
    winner: Optional[Proposal] = None
    clearing_price: float = 0.0
    contract: Optional[SLAContract] = None

    @property
    def sold(self) -> bool:
        """Whether a winner was awarded."""
        return self.winner is not None


Qualifier = Callable[[Proposal], bool]


class SealedBidAuction:
    """Runs sealed-bid reverse auctions (consumer buys a service).

    Parameters
    ----------
    kind:
        First-price (winner pays its bid) or second-price (winner pays
        the runner-up's total; with one bidder, the reserve).
    reserve_price:
        Maximum total price the consumer accepts; bids above it are
        rejected outright.
    qualifier:
        Optional predicate a bid must pass (e.g. promised QoS screening).
    """

    def __init__(
        self,
        kind: AuctionKind = AuctionKind.SECOND_PRICE,
        reserve_price: float = float("inf"),
        qualifier: Optional[Qualifier] = None,
    ):
        if reserve_price <= 0:
            raise ValueError("reserve_price must be positive")
        self.kind = kind
        self.reserve_price = reserve_price
        self.qualifier = qualifier

    def run(
        self,
        cfp: CallForProposals,
        bidders: Sequence,
        now: float = 0.0,
    ) -> AuctionOutcome:
        """Collect one sealed bid per bidder and clear the auction."""
        bids = []
        for bidder in bidders:
            proposal = bidder(cfp)
            if proposal is None:
                continue
            if self.qualifier is not None and not self.qualifier(proposal):
                continue
            if proposal.total_price > self.reserve_price:
                continue
            bids.append(proposal)
        outcome = AuctionOutcome(cfp=cfp, kind=self.kind, bids=bids)
        if not bids:
            return outcome
        ordered = sorted(bids, key=lambda p: (p.total_price, p.provider_id))
        winner = ordered[0]
        if self.kind is AuctionKind.FIRST_PRICE:
            clearing = winner.total_price
        else:
            if len(ordered) > 1:
                clearing = ordered[1].total_price
            else:
                clearing = min(self.reserve_price, winner.total_price * 2)
        # Split the clearing total back into base/premium proportionally.
        total = winner.total_price
        scale = clearing / total if total > 0 else 1.0
        contract = SLAContract(
            provider_id=winner.provider_id,
            consumer_id=cfp.consumer_id,
            requirement=cfp.requirement,
            base_price=winner.quote.base_price * scale,
            premium=winner.quote.premium * scale,
            compensation=winner.quote.compensation,
            signed_at=now,
            job_id=cfp.job_id,
        )
        outcome.winner = winner
        outcome.clearing_price = clearing
        outcome.contract = contract
        return outcome
