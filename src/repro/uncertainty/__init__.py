"""Uncertainty: matching, calibration, risk, uncertain results (paper §2).

Public API:

- Similarity primitives: :func:`cosine_similarity`,
  :func:`jaccard_similarity`, :func:`weighted_jaccard`, :func:`bag_cosine`,
  :class:`EnsembleSimilarity`.
- Matching: :class:`MatchingEngine`, :class:`TextMatcher`,
  :class:`MediaMatcher`, :class:`CrossTypeMatcher`,
  :class:`CompoundMatcher`, :class:`ConceptLifter`,
  :func:`build_matching_engine`.
- Calibration: :class:`BinnedCalibrator`,
  :func:`expected_calibration_error`, :func:`ranking_auc`,
  :func:`pool_adjacent_violators`.
- Pruning: :class:`BlockBounds`, :class:`BoundStats`,
  :class:`QueryBoundState`, :class:`PruneStats` — exactness-preserving
  score upper bounds behind the pruned top-k rank path.
- Results: :class:`UncertainMatch`, :class:`UncertainResultSet`,
  :func:`merge_all`.
- Risk: :class:`RiskProfile`, :func:`risk_averse`, :func:`risk_neutral`,
  :func:`risk_seeking`.
- Estimates: :class:`UncertainEstimate`.
"""

from repro.uncertainty.calibration import (
    BinnedCalibrator,
    CalibrationReport,
    expected_calibration_error,
    pool_adjacent_violators,
    ranking_auc,
)
from repro.uncertainty.estimates import UncertainEstimate
from repro.uncertainty.matching import (
    CandidateBlock,
    CompoundMatcher,
    ConceptLifter,
    CrossTypeMatcher,
    LruCache,
    MatchingEngine,
    MediaMatcher,
    TextMatcher,
    build_matching_engine,
)
from repro.uncertainty.pruning import (
    BlockBounds,
    BoundStats,
    PruneStats,
    QueryBoundState,
)
from repro.uncertainty.results import UncertainMatch, UncertainResultSet, merge_all
from repro.uncertainty.risk import (
    RiskProfile,
    risk_averse,
    risk_neutral,
    risk_seeking,
)
from repro.uncertainty.salience import (
    SalientPart,
    concept_peakedness,
    salient_parts,
)
from repro.uncertainty.similarity import (
    EnsembleSimilarity,
    bag_cosine,
    bag_norm,
    batch_bag_cosine,
    batch_dot_kernel,
    batch_nonnegative_cosine,
    cosine_similarity,
    dot_kernel,
    jaccard_similarity,
    nonnegative_cosine,
    sublinear_tf,
    weighted_jaccard,
)

__all__ = [
    "BinnedCalibrator",
    "BlockBounds",
    "BoundStats",
    "CalibrationReport",
    "CandidateBlock",
    "CompoundMatcher",
    "LruCache",
    "ConceptLifter",
    "CrossTypeMatcher",
    "EnsembleSimilarity",
    "MatchingEngine",
    "MediaMatcher",
    "PruneStats",
    "QueryBoundState",
    "RiskProfile",
    "SalientPart",
    "TextMatcher",
    "UncertainEstimate",
    "UncertainMatch",
    "UncertainResultSet",
    "bag_cosine",
    "bag_norm",
    "batch_bag_cosine",
    "batch_dot_kernel",
    "batch_nonnegative_cosine",
    "build_matching_engine",
    "dot_kernel",
    "concept_peakedness",
    "cosine_similarity",
    "expected_calibration_error",
    "jaccard_similarity",
    "merge_all",
    "nonnegative_cosine",
    "pool_adjacent_violators",
    "ranking_auc",
    "risk_averse",
    "salient_parts",
    "risk_neutral",
    "risk_seeking",
    "sublinear_tf",
    "weighted_jaccard",
]
