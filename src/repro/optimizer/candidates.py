"""Candidate assignments: which source could serve which job.

A *job* is one domain-restricted subquery.  For each job, the enumerator
lists candidate (source, expected QoS, cost, breach risk) tuples, built
from *advertised* descriptors tempered by the consumer's trust view — the
consumer never sees ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.qos.breach import breach_probability
from repro.qos.vector import QoSRequirement, QoSVector
from repro.query.model import Query, Subquery, decompose
from repro.sources.registry import SourceRegistry
from repro.trust.reputation import ReputationSystem
from repro.uncertainty.estimates import UncertainEstimate


@dataclass(frozen=True)
class CandidateAssignment:
    """One (job, source) option with the consumer's beliefs about it."""

    subquery: Subquery
    source_id: str
    expected: QoSVector
    cost: UncertainEstimate
    breach_risk: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.breach_risk <= 1.0:
            raise ValueError("breach_risk must be in [0, 1]")

    @property
    def job_id(self) -> str:
        """The subquery's stable job identifier."""
        return self.subquery.subquery_id


def discount_by_trust(advertised: QoSVector, trust: float, skepticism: float = 0.6) -> QoSVector:
    """Shrink advertised quality towards zero for untrusted sources.

    ``trust`` is the consumer's reputation score for the source.  A fully
    trusted source's claims are taken at face value; an untrusted one's
    are discounted by up to ``skepticism``.
    """
    if not 0.0 <= trust <= 1.0:
        raise ValueError("trust must be in [0, 1]")
    if not 0.0 <= skepticism <= 1.0:
        raise ValueError("skepticism must be in [0, 1]")
    factor = 1.0 - skepticism * (1.0 - trust)
    return QoSVector(
        response_time=advertised.response_time / max(factor, 1e-6),
        completeness=advertised.completeness * factor,
        freshness=advertised.freshness * factor,
        correctness=advertised.correctness * factor,
        trust=trust,
    )


class CandidateEnumerator:
    """Builds the candidate table for a query from the registry.

    Parameters
    ----------
    registry:
        Advertised source descriptors.
    reputation:
        The consumer's trust view (neutral prior for unknown sources).
    skepticism:
        How hard untrusted advertisements are discounted.
    """

    def __init__(
        self,
        registry: SourceRegistry,
        reputation: Optional[ReputationSystem] = None,
        skepticism: float = 0.6,
    ):
        self.registry = registry
        self.reputation = reputation if reputation is not None else ReputationSystem()
        self.skepticism = skepticism

    def candidates_for_job(
        self, subquery: Subquery, requirement: Optional[QoSRequirement] = None
    ) -> List[CandidateAssignment]:
        """Candidate assignments for one job, sorted by source id."""
        if requirement is None:
            requirement = subquery.parent.requirement
        candidates = []
        for descriptor in self.registry.candidates_for(subquery.domain):
            advertised = descriptor.advertised.get(subquery.domain)
            if advertised is None:
                continue
            trust = self.reputation.score(descriptor.source_id)
            expected = discount_by_trust(advertised, trust, self.skepticism)
            cost = UncertainEstimate(
                mean=expected.response_time,
                std=0.3 * expected.response_time,
                low=0.0,
                high=4.0 * expected.response_time if expected.response_time > 0 else 1.0,
            )
            candidates.append(
                CandidateAssignment(
                    subquery=subquery,
                    source_id=descriptor.source_id,
                    expected=expected,
                    cost=cost,
                    breach_risk=breach_probability(expected, requirement),
                )
            )
        return candidates

    def candidate_table(self, query: Query) -> Dict[str, List[CandidateAssignment]]:
        """Candidates per job id for every decomposed piece of ``query``.

        Jobs with no candidates are omitted (those domains are unreachable).
        """
        table: Dict[str, List[CandidateAssignment]] = {}
        for subquery in decompose(query, self.registry.domains()):
            candidates = self.candidates_for_job(subquery)
            if candidates:
                table[subquery.subquery_id] = candidates
        return table
