"""Typed information objects traded in the agora.

The paper's scenario mixes text documents, images, and compound objects
(web pages, catalogs) whose parts have their own matching semantics.  We
model the type hierarchy explicitly:

- :class:`InformationItem` — common base: identity, domain, latent topic
  vector, creation time, provenance.
- :class:`TextDocument` — adds a term-frequency vector.
- :class:`MediaObject` — adds a true perceptual feature vector (images,
  audio) from which noisy observable feature sets are derived.
- :class:`CompoundObject` — a weighted composition of heterogeneous parts
  (e.g. a magazine page containing images and text).
- :class:`Annotation` — a user note attached to an item.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

_ITEM_COUNTER = itertools.count()


def _next_item_id(prefix: str) -> str:
    return f"{prefix}-{next(_ITEM_COUNTER):08d}"


def reset_item_ids() -> None:
    """Reset the global item-id counter (used by tests for determinism)."""
    global _ITEM_COUNTER
    _ITEM_COUNTER = itertools.count()


@dataclass
class InformationItem:
    """Base class for all objects stored at information sources.

    Attributes
    ----------
    item_id:
        Globally unique identifier.
    domain:
        The collection domain (e.g. ``"museum"``, ``"auction"``).
    latent:
        Ground-truth topic vector (hidden from matching algorithms;
        used only by generators and by experiment oracles).
    created_at:
        Virtual creation time, used to score freshness.
    metadata:
        Open key/value bag (title, region, etc.).
    """

    item_id: str
    domain: str
    latent: np.ndarray
    created_at: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def item_type(self) -> str:
        """The concrete class name (used for matcher dispatch)."""
        return type(self).__name__

    def age(self, now: float) -> float:
        """Item age at virtual time ``now`` (never negative)."""
        return max(0.0, now - self.created_at)

    def __hash__(self) -> int:
        return hash(self.item_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InformationItem) and other.item_id == self.item_id


@dataclass(eq=False)
class TextDocument(InformationItem):
    """A textual object: thesis, article, catalog entry text."""

    terms: Dict[str, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Total term count of the document."""
        return sum(self.terms.values())


@dataclass(eq=False)
class MediaObject(InformationItem):
    """An image-like object with a true perceptual feature vector.

    Matching algorithms never see ``true_features`` directly; they see
    noisy projections produced by a
    :class:`repro.data.features.FeatureExtractor`.
    """

    true_features: np.ndarray = field(default_factory=lambda: np.zeros(1))
    media_kind: str = "image"


@dataclass(eq=False)
class CompoundObject(InformationItem):
    """A heterogeneous composition, e.g. a web page or auction catalog.

    ``parts`` is a sequence of ``(item, weight)`` pairs; weights express the
    part's importance for matching and need not sum to one.
    """

    parts: List[Tuple[InformationItem, float]] = field(default_factory=list)
    layout: str = "article"

    def __post_init__(self) -> None:
        for __, weight in self.parts:
            if weight < 0:
                raise ValueError("part weights must be non-negative")

    def flat_parts(self) -> List[Tuple[InformationItem, float]]:
        """Recursively flatten nested compounds into (leaf, weight) pairs."""
        flattened: List[Tuple[InformationItem, float]] = []
        for part, weight in self.parts:
            if isinstance(part, CompoundObject):
                for leaf, inner_weight in part.flat_parts():
                    flattened.append((leaf, weight * inner_weight))
            else:
                flattened.append((part, weight))
        return flattened


@dataclass(eq=False)
class Annotation(InformationItem):
    """A user annotation attached to another item."""

    author_id: str = ""
    target_item_id: str = ""
    text: str = ""


def make_item_id(prefix: str = "item") -> str:
    """Public helper to mint a fresh item id."""
    return _next_item_id(prefix)


def combined_latent(
    parts: Sequence[Tuple[InformationItem, float]],
) -> np.ndarray:
    """Weighted average of part latents (for building compound objects)."""
    if not parts:
        raise ValueError("compound object needs at least one part")
    total = sum(weight for __, weight in parts)
    if total <= 0:
        raise ValueError("total part weight must be positive")
    vectors = np.stack([part.latent * weight for part, weight in parts])
    return vectors.sum(axis=0) / total


def item_census(items: Sequence[InformationItem]) -> Mapping[str, int]:
    """Count items by concrete type name (diagnostic helper)."""
    census: Dict[str, int] = {}
    for item in items:
        census[item.item_type] = census.get(item.item_type, 0) + 1
    return census
