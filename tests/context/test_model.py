"""Tests for the context model."""

import pytest

from repro.context import Context, context_similarity


class TestContext:
    def test_defaults_valid(self):
        context = Context()
        assert context.alone

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            Context(time_of_day="midnight")

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            Context(task="procrastinating")

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            Context(previous_activity="sleeping")

    def test_companions_sorted(self):
        context = Context(companions=("zoe", "adam"))
        assert context.companions == ("adam", "zoe")
        assert not context.alone

    def test_value_lookup(self):
        context = Context(location="Paris")
        assert context.value("location") == "Paris"
        with pytest.raises(KeyError):
            context.value("mood")

    def test_with_changes(self):
        context = Context().with_(task="leisure")
        assert context.task == "leisure"
        assert Context().task != "leisure"

    def test_as_dict(self):
        d = Context().as_dict()
        assert set(d) == {
            "time_of_day", "location", "task", "companions", "previous_activity",
        }


class TestSimilarity:
    def test_identical_contexts(self):
        assert context_similarity(Context(), Context()) == 1.0

    def test_completely_different(self):
        a = Context(time_of_day="morning", location="office",
                    task="paper-writing", companions=(), previous_activity="query")
        b = Context(time_of_day="evening", location="home",
                    task="leisure", companions=("jason",), previous_activity="browse")
        assert context_similarity(a, b) == 0.0

    def test_partial_overlap(self):
        a = Context(task="leisure")
        b = Context(task="paper-writing")
        assert context_similarity(a, b) == pytest.approx(4 / 5)

    def test_companion_overlap_graded(self):
        a = Context(companions=("jason", "maria"))
        b = Context(companions=("jason",))
        similarity = context_similarity(a, b)
        assert 4 / 5 < similarity < 1.0

    def test_symmetric(self):
        a = Context(task="leisure", location="Paris")
        b = Context(time_of_day="evening")
        assert context_similarity(a, b) == context_similarity(b, a)
