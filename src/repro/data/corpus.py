"""Synthetic corpus generator for the Iris scenario.

Substitutes for the paper's real-world federation of museums, auction
houses, magazines and institutional repositories.  Each *domain* has a
topic-mixture prior and a characteristic mix of item types; the generator
draws items whose latent topic vectors cluster around the domain prior,
with per-item specialisation.  Media objects get true perceptual features
derived from their latent vector through a fixed linear "rendering" map, so
perceptual similarity correlates with semantic relevance — the property the
paper's uncertain-matching discussion relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.data.items import (
    CompoundObject,
    InformationItem,
    MediaObject,
    TextDocument,
    combined_latent,
    make_item_id,
)
from repro.data.topics import TopicSpace
from repro.data.vocabulary import Vocabulary
from repro.sim.rng import ScopedStreams


@dataclass(frozen=True)
class DomainSpec:
    """Static description of a content domain.

    Attributes
    ----------
    name:
        Domain identifier (also used as item id prefix).
    topic_prior:
        Mixture the domain's items concentrate around (keyed by topic name).
    type_mix:
        Probabilities of generating text / media / compound items.
    concentration:
        Dirichlet concentration of per-item draws around the prior;
        smaller = more specialised items.
    update_rate:
        Mean new items per unit of virtual time (drives feeds).
    """

    name: str
    topic_prior: Mapping[str, float]
    type_mix: Mapping[str, float] = field(
        default_factory=lambda: {"text": 0.5, "media": 0.3, "compound": 0.2}
    )
    concentration: float = 0.5
    update_rate: float = 0.1

    def __post_init__(self) -> None:
        total = sum(self.type_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"type_mix must sum to 1, got {total}")


def iris_domains() -> List[DomainSpec]:
    """The five content domains of the paper's running scenario."""
    return [
        DomainSpec(
            name="museum",
            topic_prior={"folk-jewelry": 0.4, "museum-exhibitions": 0.3, "craft-techniques": 0.3},
            type_mix={"text": 0.3, "media": 0.5, "compound": 0.2},
            update_rate=0.05,
        ),
        DomainSpec(
            name="auction",
            topic_prior={"auction-market": 0.45, "folk-jewelry": 0.35, "fashion-trends": 0.2},
            type_mix={"text": 0.2, "media": 0.3, "compound": 0.5},
            update_rate=0.2,
        ),
        DomainSpec(
            name="magazine",
            topic_prior={"fashion-trends": 0.4, "tourism": 0.3, "regional-history": 0.3},
            type_mix={"text": 0.4, "media": 0.2, "compound": 0.4},
            update_rate=0.3,
        ),
        DomainSpec(
            name="thesis",
            topic_prior={"academic-theses": 0.5, "dance-forms": 0.25, "regional-history": 0.25},
            type_mix={"text": 0.9, "media": 0.05, "compound": 0.05},
            update_rate=0.02,
        ),
        DomainSpec(
            name="cultural-org",
            topic_prior={"traditional-costume": 0.35, "dance-forms": 0.35, "regional-history": 0.3},
            type_mix={"text": 0.5, "media": 0.3, "compound": 0.2},
            update_rate=0.08,
        ),
    ]


class CorpusGenerator:
    """Generates typed information items for a set of domains.

    Parameters
    ----------
    topic_space:
        Shared latent topic space.
    vocabulary:
        Term vocabulary used for text documents.
    streams:
        RNG scope; child streams are keyed per domain.
    feature_dimensions:
        Dimensionality of media objects' true perceptual features.
    """

    def __init__(
        self,
        topic_space: TopicSpace,
        vocabulary: Vocabulary,
        streams: ScopedStreams,
        feature_dimensions: int = 32,
    ):
        self.topic_space = topic_space
        self.vocabulary = vocabulary
        self.feature_dimensions = feature_dimensions
        self._streams = streams
        rng = streams.stream("rendering-map")
        # Fixed linear map from topic space to perceptual feature space.
        self._render_map = rng.normal(size=(feature_dimensions, topic_space.n_topics))
        self._render_map /= np.linalg.norm(self._render_map, axis=0, keepdims=True)

    # ------------------------------------------------------------------
    def _prior_vector(self, spec: DomainSpec) -> np.ndarray:
        prior = np.zeros(self.topic_space.n_topics)
        for topic, weight in spec.topic_prior.items():
            if topic not in self.topic_space.names:
                raise KeyError(f"domain {spec.name!r} references unknown topic {topic!r}")
            prior[self.topic_space.names.index(topic)] = weight
        return self.topic_space.normalize(prior)

    def sample_latent(self, spec: DomainSpec, rng: np.random.Generator) -> np.ndarray:
        """Draw an item latent around the domain prior."""
        prior = self._prior_vector(spec)
        return self.topic_space.sample(rng, concentration=spec.concentration, prior=prior)

    def render_features(self, latent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """True perceptual features for a media object with ``latent``."""
        base = self._render_map @ self.topic_space.normalize(latent)
        variation = rng.normal(scale=0.15, size=self.feature_dimensions)
        features = base + variation
        norm = np.linalg.norm(features)
        return features / norm if norm > 0 else features

    # ------------------------------------------------------------------
    def generate_item(
        self,
        spec: DomainSpec,
        created_at: float = 0.0,
        latent: Optional[np.ndarray] = None,
    ) -> InformationItem:
        """Generate one item of a type drawn from the domain's mix."""
        rng = self._streams.stream(f"domain.{spec.name}")
        if latent is None:
            latent = self.sample_latent(spec, rng)
        kinds = sorted(spec.type_mix)
        probs = np.array([spec.type_mix[k] for k in kinds])
        kind = kinds[int(rng.choice(len(kinds), p=probs / probs.sum()))]
        if kind == "text":
            return self._make_text(spec, latent, created_at, rng)
        if kind == "media":
            return self._make_media(spec, latent, created_at, rng)
        return self._make_compound(spec, latent, created_at, rng)

    def generate(
        self, spec: DomainSpec, count: int, created_at: float = 0.0
    ) -> List[InformationItem]:
        """Generate ``count`` items for a domain at time ``created_at``."""
        return [self.generate_item(spec, created_at) for __ in range(count)]

    def generate_collection(
        self,
        specs: Sequence[DomainSpec],
        items_per_domain: int,
        created_at: float = 0.0,
    ) -> Dict[str, List[InformationItem]]:
        """Generate a full multi-domain corpus keyed by domain name."""
        return {
            spec.name: self.generate(spec, items_per_domain, created_at)
            for spec in specs
        }

    # ------------------------------------------------------------------
    def _make_text(
        self,
        spec: DomainSpec,
        latent: np.ndarray,
        created_at: float,
        rng: np.random.Generator,
    ) -> TextDocument:
        length = int(rng.integers(60, 240))
        return TextDocument(
            item_id=make_item_id(spec.name),
            domain=spec.name,
            latent=latent,
            created_at=created_at,
            terms=self.vocabulary.sample_terms(latent, rng, length=length),
            metadata={"kind": "text"},
        )

    def _make_media(
        self,
        spec: DomainSpec,
        latent: np.ndarray,
        created_at: float,
        rng: np.random.Generator,
    ) -> MediaObject:
        return MediaObject(
            item_id=make_item_id(spec.name),
            domain=spec.name,
            latent=latent,
            created_at=created_at,
            true_features=self.render_features(latent, rng),
            media_kind="image",
            metadata={"kind": "media"},
        )

    def _make_compound(
        self,
        spec: DomainSpec,
        latent: np.ndarray,
        created_at: float,
        rng: np.random.Generator,
    ) -> CompoundObject:
        n_parts = int(rng.integers(2, 5))
        parts = []
        for __ in range(n_parts):
            # Part latents are perturbations of the compound's latent.
            part_latent = self.topic_space.sample(
                rng, concentration=2.0, prior=latent
            )
            if rng.random() < 0.5:
                part: InformationItem = self._make_text(spec, part_latent, created_at, rng)
            else:
                part = self._make_media(spec, part_latent, created_at, rng)
            weight = float(rng.uniform(0.5, 1.5))
            parts.append((part, weight))
        return CompoundObject(
            item_id=make_item_id(spec.name),
            domain=spec.name,
            latent=combined_latent(parts),
            created_at=created_at,
            parts=parts,
            layout="catalog" if spec.name == "auction" else "article",
            metadata={"kind": "compound"},
        )
