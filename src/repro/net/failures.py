"""Failure and load models for overlay nodes.

Section 2 of the paper lists the ways a source may silently drop out of a
request: *overloading, unavailability, or black-listing*.  This module
models the first two; blacklists live in :mod:`repro.trust.blacklist`.

- :class:`NodeHealth` — per-node up/down state driven by an alternating
  renewal (churn) process.
- :class:`LoadModel` — per-node concurrent-request load with a capacity;
  the probability of declining a request grows with utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.sim.kernel import Simulator
from repro.sim.rng import ScopedStreams


@dataclass
class ChurnSpec:
    """Parameters of the alternating up/down renewal process."""

    mean_uptime: float = 500.0
    mean_downtime: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")


class NodeHealth:
    """Tracks and evolves up/down state for a set of nodes.

    Downtime/uptime durations are exponential with the configured means;
    transitions are scheduled on the simulator.  Nodes start up.
    """

    def __init__(
        self,
        simulator: Simulator,
        nodes: Iterable[str],
        streams: ScopedStreams,
        spec: Optional[ChurnSpec] = None,
        enabled: bool = True,
    ):
        self._sim = simulator
        self._rng = streams.stream("churn")
        self.spec = spec if spec is not None else ChurnSpec()
        self._up: Dict[str, bool] = {node: True for node in nodes}
        self._listeners: List[Callable[[str, bool], None]] = []
        if enabled:
            for node in sorted(self._up):
                self._schedule_transition(node)

    # ------------------------------------------------------------------
    def is_up(self, node: str) -> bool:
        """Whether ``node`` is currently up (unknown nodes are down)."""
        return self._up.get(node, False)

    def up_nodes(self) -> List[str]:
        """Sorted ids of nodes currently up."""
        return sorted(node for node, up in self._up.items() if up)

    def nodes(self) -> List[str]:
        """Sorted ids of all tracked nodes."""
        return sorted(self._up)

    def set_state(self, node: str, up: bool) -> None:
        """Force a node's state (used by tests and failure injection)."""
        if node not in self._up:
            raise KeyError(f"unknown node {node!r}")
        if self._up[node] != up:
            self._up[node] = up
            for listener in self._listeners:
                listener(node, up)

    def on_change(self, listener: Callable[[str, bool], None]) -> None:
        """Register a callback invoked as ``listener(node, is_up)``."""
        self._listeners.append(listener)

    def availability(self) -> float:
        """Fraction of nodes currently up."""
        if not self._up:
            return 0.0
        return sum(self._up.values()) / len(self._up)

    # ------------------------------------------------------------------
    def _schedule_transition(self, node: str) -> None:
        mean = self.spec.mean_uptime if self._up[node] else self.spec.mean_downtime
        delay = float(self._rng.exponential(mean))

        def flip() -> None:
            self.set_state(node, not self._up[node])
            self._sim.trace.count("net.churn_transitions")
            self._schedule_transition(node)

        self._sim.schedule(delay, flip, tag=f"churn:{node}")


@dataclass
class LoadSpec:
    """Capacity model parameters."""

    capacity: float = 10.0  # concurrent requests a node handles comfortably
    decline_sharpness: float = 4.0  # how steeply decline prob. rises with load

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.decline_sharpness < 0:
            raise ValueError("decline_sharpness must be non-negative")


class LoadModel:
    """Concurrent load per node, with load-dependent decline probability.

    The decline probability is a logistic function of utilisation
    ``u = load / capacity`` centred at ``u = 1``: nodes under capacity almost
    never decline, saturated nodes usually do — the paper's "declined to
    participate because of overloading".
    """

    def __init__(
        self,
        nodes: Iterable[str],
        streams: ScopedStreams,
        spec: Optional[LoadSpec] = None,
    ):
        self._rng = streams.stream("load")
        self.spec = spec if spec is not None else LoadSpec()
        self._load: Dict[str, float] = {node: 0.0 for node in nodes}

    def load(self, node: str) -> float:
        """Current concurrent load at ``node``."""
        return self._load.get(node, 0.0)

    def nodes(self) -> List[str]:
        """Sorted ids of all tracked nodes."""
        return sorted(self._load)

    def utilisation(self, node: str) -> float:
        """Load relative to capacity at ``node``."""
        return self.load(node) / self.spec.capacity

    def begin(self, node: str, amount: float = 1.0) -> None:
        """Account for a request starting at ``node``."""
        if node not in self._load:
            raise KeyError(f"unknown node {node!r}")
        self._load[node] += amount

    def end(self, node: str, amount: float = 1.0) -> None:
        """Account for a request finishing at ``node``."""
        if node not in self._load:
            raise KeyError(f"unknown node {node!r}")
        self._load[node] = max(0.0, self._load[node] - amount)

    def decline_probability(self, node: str) -> float:
        """Probability that ``node`` declines a new request right now."""
        utilisation = self.utilisation(node)
        z = self.spec.decline_sharpness * (utilisation - 1.0)
        return float(1.0 / (1.0 + np.exp(-z)))

    def declines(self, node: str) -> bool:
        """Sample the decline decision for a new request at ``node``."""
        return bool(self._rng.random() < self.decline_probability(node))

    def service_slowdown(self, node: str) -> float:
        """Multiplier on service time due to load (>= 1)."""
        return 1.0 + max(0.0, self.utilisation(node) - 0.5)
