"""Sharded execution of the matching plane (DESIGN.md §2h).

Public surface:

- :class:`~repro.parallel.pool.ShardPool` — persistent spawn-based
  worker pool with shared-memory candidate matrices and deterministic
  in-process fallback.
- :class:`~repro.parallel.service.ParallelRankService` — domain-sharded
  bridge the retrieve path talks to.
- :mod:`~repro.parallel.shards` / :mod:`~repro.parallel.merge` — pure
  partitioning and bitwise-deterministic merge logic.
- :class:`~repro.parallel.model.ScanCostModel` — virtual-time shard
  scaling model used by the benchmarks.
- :mod:`~repro.parallel.safety` — the certified-roots gate over
  ``shard_safety.json``.
"""

from repro.parallel.merge import (
    RankPartial,
    merge_prune_stats,
    merge_ranked,
    merge_scores,
)
from repro.parallel.model import ScanCostModel
from repro.parallel.pool import ShardPool
from repro.parallel.safety import (
    SHARD_SAFE_VERDICTS,
    WORKER_ROOTS,
    ShardSafetyError,
    verify_worker_roots,
)
from repro.parallel.service import ParallelRankService
from repro.parallel.shards import (
    Placement,
    partition_domains,
    single_placement,
    slice_placements,
    slice_ranges,
    stable_worker_for,
)
from repro.parallel.shm import (
    AttachedArray,
    SharedArraySpec,
    ShmArena,
    attach_segment,
    leaked_segments,
)

__all__ = [
    "AttachedArray",
    "Placement",
    "RankPartial",
    "ParallelRankService",
    "ScanCostModel",
    "SHARD_SAFE_VERDICTS",
    "ShardPool",
    "ShardSafetyError",
    "SharedArraySpec",
    "ShmArena",
    "WORKER_ROOTS",
    "attach_segment",
    "leaked_segments",
    "merge_prune_stats",
    "merge_ranked",
    "merge_scores",
    "partition_domains",
    "single_placement",
    "slice_placements",
    "slice_ranges",
    "stable_worker_for",
    "verify_worker_roots",
]
