"""SLA pricing policies.

The premium of an SLA should reflect "the risk/uncertainty of the requested
service" (§3, citing Gravelle & Rees).  We provide three policies so the
T3 experiment can compare them:

- :class:`FlatPricing` — a fixed premium regardless of risk (naive baseline).
- :class:`RiskPricedPremium` — premium = expected compensation payout times
  a risk loading, the actuarially fair price plus margin.
- :class:`CompetitivePricing` — risk-priced, then discounted by market
  pressure (number of competing providers).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.qos.vector import QoSRequirement


@dataclass(frozen=True)
class Quote:
    """A priced offer for serving one job under an SLA."""

    base_price: float
    premium: float
    compensation: float

    @property
    def total(self) -> float:
        """Base price plus premium."""
        return self.base_price + self.premium

    def __post_init__(self) -> None:
        if self.base_price < 0 or self.premium < 0 or self.compensation < 0:
            raise ValueError("quote components must be non-negative")


class PricingPolicy(ABC):
    """Maps (requirement, cost estimate, breach probability) to a quote."""

    @abstractmethod
    def quote(
        self,
        requirement: QoSRequirement,
        base_cost: float,
        breach_probability: float,
    ) -> Quote:
        """Return the quote for one job."""

    @staticmethod
    def _check(base_cost: float, breach_probability: float) -> None:
        if base_cost < 0:
            raise ValueError("base_cost must be non-negative")
        if not 0.0 <= breach_probability <= 1.0:
            raise ValueError("breach_probability must be in [0, 1]")


@dataclass
class FlatPricing(PricingPolicy):
    """Charge cost × margin plus a constant premium, ignore risk."""

    margin: float = 1.2
    flat_premium: float = 0.5
    compensation_multiple: float = 2.0

    def quote(
        self,
        requirement: QoSRequirement,
        base_cost: float,
        breach_probability: float,
    ) -> Quote:
        """Price one job under this policy."""
        self._check(base_cost, breach_probability)
        base_price = base_cost * self.margin
        return Quote(
            base_price=base_price,
            premium=self.flat_premium,
            compensation=self.compensation_multiple * base_price,
        )


@dataclass
class RiskPricedPremium(PricingPolicy):
    """Actuarially fair premium plus a risk loading.

    premium = breach_probability × compensation × (1 + loading)

    A provider using this policy breaks even in expectation on the
    guarantee itself and earns ``loading`` as its risk margin — the
    textbook treatment of insurance premiums the paper cites.
    """

    margin: float = 1.2
    loading: float = 0.25
    compensation_multiple: float = 2.0

    def quote(
        self,
        requirement: QoSRequirement,
        base_cost: float,
        breach_probability: float,
    ) -> Quote:
        """Price one job under this policy."""
        self._check(base_cost, breach_probability)
        base_price = base_cost * self.margin
        compensation = self.compensation_multiple * base_price
        premium = breach_probability * compensation * (1.0 + self.loading)
        return Quote(base_price=base_price, premium=premium, compensation=compensation)


@dataclass
class CompetitivePricing(PricingPolicy):
    """Risk-priced, then discounted when many providers compete.

    The discount is ``1 / (1 + competition_pressure × (competitors - 1))``
    applied to the margin portion of the price, never below cost.
    """

    margin: float = 1.3
    loading: float = 0.25
    compensation_multiple: float = 2.0
    competition_pressure: float = 0.1
    competitors: int = 1

    def quote(
        self,
        requirement: QoSRequirement,
        base_cost: float,
        breach_probability: float,
    ) -> Quote:
        """Price one job under this policy."""
        self._check(base_cost, breach_probability)
        if self.competitors < 1:
            raise ValueError("competitors must be >= 1")
        discount = 1.0 / (1.0 + self.competition_pressure * (self.competitors - 1))
        effective_margin = 1.0 + (self.margin - 1.0) * discount
        base_price = base_cost * effective_margin
        compensation = self.compensation_multiple * base_price
        premium = breach_probability * compensation * (1.0 + self.loading * discount)
        return Quote(base_price=base_price, premium=premium, compensation=compensation)
