"""Causal span tracing over the virtual clock.

A :class:`Span` is one named, timed step of a run (a query, a retrieval
leaf, a retry, a message delivery) with a parent pointer; together the
spans of a run form a forest of cause→effect trees.  The
:class:`SpanTracer` owns the spans and the *active-span stack*: code
wraps its work in ``with tracer.span("name"):`` and every span opened
inside the block becomes a child of it.

The tracer is deliberately kernel-friendly: the simulation kernel
captures :attr:`SpanTracer.current_id` when a callback is scheduled and
calls :meth:`resume`/:meth:`release` around its execution, so causality
survives the trip through the event queue — a retry fired three virtual
seconds later is still a descendant of the query that caused it.

Determinism contract: span ids come from a local sequence counter and
all timestamps are read from the bound virtual clock, so two same-seed
runs produce byte-identical span trees.

For multi-process runs the tracer is *shard-aware*: each tracer
allocates span ids inside its own :data:`~repro.obs.context.SHARD_SPAN_STRIDE`
namespace block, a coordinator mints :class:`~repro.obs.context.TraceContext`
capsules with :meth:`SpanTracer.context_for`, and a worker continues the
coordinator's trace by calling :meth:`SpanTracer.attach` before
recording anything — merged traces are collision-free and bitwise
reproducible (see :mod:`repro.obs.aggregate`).
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.obs.context import SHARD_SPAN_STRIDE, TraceContext

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


@dataclass
class Span:
    """One timed, attributed step in a run's causal tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Virtual-time width of the span (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(
                int(payload["parent_id"]) if payload["parent_id"] is not None else None
            ),
            name=str(payload["name"]),
            start=float(payload["start"]),
            end=(float(payload["end"]) if payload["end"] is not None else None),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes", {})),
        )


class _NullSpan(Span):
    """Inert span handed out when tracing is disabled or capped."""

    def annotate(self, **attributes: Any) -> None:  # noqa: ARG002 - deliberate no-op
        return None


#: Shared inert span: annotating it is a no-op, recording never happens.
NULL_SPAN = _NullSpan(span_id=-1, parent_id=None, name="", start=0.0, end=0.0)


class SpanTracer:
    """Collects the span forest of one run.

    Parameters
    ----------
    enabled:
        A disabled tracer hands out :data:`NULL_SPAN` everywhere and
        records nothing; call sites can therefore instrument
        unconditionally.
    clock:
        Virtual-time source; the kernel rebinds it via
        :meth:`bind_clock` so spans carry simulation timestamps.
    max_spans:
        Recording cap mirroring :class:`~repro.sim.trace.TraceRecorder`'s
        record cap: spans beyond it are dropped (children of a dropped
        span attach to the nearest *recorded* ancestor) and counted in
        :attr:`dropped_spans`.
    shard_id:
        Id-namespace block this tracer allocates span ids in (see
        :mod:`repro.obs.context`).  Defaults to 0 — the coordinator /
        single-process namespace.  Worker processes normally leave this
        at 0 and call :meth:`attach` instead.
    trace_id:
        Identifier shared by every shard of one logical run; usually set
        by :func:`~repro.obs.context.derive_trace_id` or via
        :meth:`attach`.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Clock] = None,
        max_spans: int = 200_000,
        shard_id: int = 0,
        trace_id: str = "",
    ):
        if shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        self._enabled = enabled
        self._clock: Clock = clock if clock is not None else _zero_clock
        self._max_spans = max_spans
        self._spans: List[Span] = []
        self._stack: List[int] = []
        self._frames: List[List[int]] = []
        self._seq = itertools.count()
        self._dropped = 0
        self._shard_id = shard_id
        self._trace_id = trace_id
        self._attached: Optional[TraceContext] = None

    # -- wiring ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything."""
        return self._enabled

    @property
    def shard_id(self) -> int:
        """Id-namespace block this tracer allocates in."""
        return self._shard_id

    @property
    def trace_id(self) -> str:
        """Trace identifier shared across this run's shards."""
        return self._trace_id

    def bind_clock(self, clock: Clock) -> None:
        """Install the virtual-time source (the kernel calls this)."""
        self._clock = clock

    # -- cross-process propagation ---------------------------------------
    def context_for(self, shard_id: int) -> TraceContext:
        """Mint the capsule a worker shard attaches to continue this trace.

        The capsule carries the trace id, the worker's id-namespace
        block, and the currently active span as the worker's causal
        parent — so spans the worker records are descendants of whatever
        this tracer was doing when the shard was dispatched.
        """
        return TraceContext(
            trace_id=self._trace_id,
            shard_id=shard_id,
            parent_span_id=self.current_id,
        )

    def attach(self, context: TraceContext) -> None:
        """Continue ``context``'s trace in this (fresh) tracer.

        Must be called before any span is recorded: the tracer moves
        into the context's shard id-namespace, adopts its trace id, and
        seeds the active stack with the coordinator's parent span so
        every root span recorded here parents onto its true cross-process
        cause.  Balance with :meth:`detach` (or just export and discard
        the tracer).
        """
        if self._attached is not None:
            raise ValueError("tracer already has an attached context")
        if self._spans or self._stack or self._frames:
            raise ValueError(
                "attach() requires a fresh tracer (spans already recorded "
                "or a span is active)"
            )
        self._shard_id = context.shard_id
        self._trace_id = context.trace_id
        self._attached = context
        if context.parent_span_id is not None:
            self._stack = [context.parent_span_id]

    def detach(self) -> TraceContext:
        """Leave the attached context; returns it for symmetry/logging."""
        if self._attached is None:
            raise ValueError("no context attached")
        if self._frames or len(self._stack) > 1:
            raise ValueError("cannot detach while spans are still open")
        context = self._attached
        self._attached = None
        self._stack = []
        return context

    # -- recording -------------------------------------------------------
    def _begin(self, name: str, attributes: Dict[str, Any]) -> Span:
        if len(self._spans) >= self._max_spans:
            self._dropped += 1
            return NULL_SPAN
        span = Span(
            span_id=self._shard_id * SHARD_SPAN_STRIDE + next(self._seq),
            parent_id=self.current_id,
            name=name,
            start=self._clock(),
            attributes=attributes,
        )
        self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        if not self._enabled:
            yield NULL_SPAN
            return
        span = self._begin(name, attributes)
        if span is NULL_SPAN:
            yield span
            return
        self._stack.append(span.span_id)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self._stack.pop()
            span.end = self._clock()

    def event(self, name: str, **attributes: Any) -> Span:
        """Record an instantaneous (zero-width) span."""
        if not self._enabled:
            return NULL_SPAN
        span = self._begin(name, attributes)
        if span is not NULL_SPAN:
            span.end = span.start
        return span

    # -- causal context --------------------------------------------------
    @property
    def current_id(self) -> Optional[int]:
        """Id of the innermost active span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def resume(self, span_id: int) -> None:
        """Re-enter ``span_id``'s causal context (kernel callback entry).

        The current stack is saved as a frame and replaced, so spans the
        callback opens parent onto the *scheduling* span rather than onto
        whatever the kernel happened to be doing.  Balance every call
        with :meth:`release`.
        """
        self._frames.append(self._stack)
        self._stack = [span_id]

    def release(self) -> None:
        """Leave a :meth:`resume`'d context (kernel callback exit)."""
        self._stack = self._frames.pop()

    # -- reading ---------------------------------------------------------
    def spans(self) -> List[Span]:
        """All recorded spans in start order (a copied list)."""
        return list(self._spans)

    @property
    def span_count(self) -> int:
        """Number of recorded spans."""
        return len(self._spans)

    @property
    def dropped_spans(self) -> int:
        """Spans dropped after the recording cap was hit."""
        return self._dropped


#: Shared disabled tracer: call sites do ``tracer = ctx.tracer or NULL_TRACER``
#: once and instrument unconditionally.
NULL_TRACER = SpanTracer(enabled=False)


# ----------------------------------------------------------------------
# Tree helpers (used by the CLI renderer and tests)
# ----------------------------------------------------------------------
def span_index(spans: Sequence[Span]) -> Dict[int, Span]:
    """Map span id → span."""
    return {span.span_id: span for span in spans}


def child_map(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    """Map parent id (``None`` for roots) → children in id order."""
    children: Dict[Optional[int], List[Span]] = {}
    index = span_index(spans)
    for span in sorted(spans, key=lambda s: s.span_id):
        parent = span.parent_id if span.parent_id in index else None
        children.setdefault(parent, []).append(span)
    return children


def ancestors(span: Span, index: Dict[int, Span]) -> List[Span]:
    """Chain of ancestors from ``span``'s parent up to its root."""
    chain: List[Span] = []
    current = span
    while current.parent_id is not None:
        parent = index.get(current.parent_id)
        if parent is None:
            break
        chain.append(parent)
        current = parent
    return chain


def descendants_of(root_id: int, spans: Sequence[Span]) -> List[Span]:
    """Every span whose ancestor chain passes through ``root_id``."""
    index = span_index(spans)
    found: List[Span] = []
    for span in spans:
        if span.span_id == root_id:
            continue
        if any(a.span_id == root_id for a in ancestors(span, index)):
            found.append(span)
    return found
