"""Tests for experiment metrics helpers."""

import pytest

from repro.experiments import (
    mann_whitney_p,
    relative_improvement,
    summarize,
    win_rate,
)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.mean == 0.0
        assert summary.n == 0

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.ci == 0.0

    def test_mean_and_ci(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.ci > 0
        assert summary.n == 3

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))

    def test_tighter_ci_with_more_data(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0])
        assert narrow.ci < wide.ci


class TestImprovement:
    def test_positive(self):
        assert relative_improvement(1.5, 1.0) == pytest.approx(0.5)

    def test_negative(self):
        assert relative_improvement(0.5, 1.0) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert relative_improvement(1.0, 0.0) == 0.0


class TestMannWhitney:
    def test_clear_separation_significant(self):
        treatment = [0.9, 0.85, 0.95, 0.88, 0.92] * 4
        baseline = [0.5, 0.45, 0.55, 0.48, 0.52] * 4
        assert mann_whitney_p(treatment, baseline) < 0.01

    def test_identical_distributions_not_significant(self):
        import numpy as np

        rng = np.random.default_rng(0)
        a = rng.random(50)
        b = rng.random(50)
        assert mann_whitney_p(list(a), list(b)) > 0.05

    def test_wrong_direction_not_significant(self):
        assert mann_whitney_p([0.1, 0.2], [0.8, 0.9]) > 0.5

    def test_empty_degenerate(self):
        assert mann_whitney_p([], [1.0]) == 1.0


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([2, 3], [1, 1]) == 1.0

    def test_ties_not_wins(self):
        assert win_rate([1, 1], [1, 1]) == 0.0

    def test_mixed(self):
        assert win_rate([2, 0, 3, 0], [1, 1, 1, 1]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            win_rate([1], [1, 2])

    def test_empty(self):
        assert win_rate([], []) == 0.0
