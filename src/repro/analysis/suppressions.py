"""Parsing of inline ``# agora: ignore[AGR00x] reason`` comments.

The syntax mirrors mypy/ruff inline ignores so reviewers only learn one
shape::

    sim.schedule(delay, cb)  # agora: ignore[AGR003] order fixed upstream
    value = draw()           # agora: ignore[AGR002,AGR004] seeded by caller

A suppression silences the listed rules *on its own line only*.  The
engine tracks which suppressions actually matched a violation so unused
ones can be reported and removed.
"""

from __future__ import annotations

import re
from typing import List

from repro.analysis.violations import Suppression

_SUPPRESSION_RE = re.compile(
    r"#\s*agora:\s*ignore\[(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]"
    r"\s*(?P<reason>.*)$"
)


def parse_suppressions(source: str, path: str) -> List[Suppression]:
    """Extract every suppression comment from ``source``.

    Comments are matched textually per line; a suppression inside a string
    literal would be a false positive, but the marker is unusual enough
    that this has not mattered in practice and keeps parsing independent
    of tokenisation errors.
    """
    found: List[Suppression] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        found.append(
            Suppression(
                path=path,
                line=lineno,
                rule_ids=rule_ids,
                reason=match.group("reason").strip(),
            )
        )
    return found
