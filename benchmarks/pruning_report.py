"""Produce a pruning-effectiveness report as JSON (CI artifact).

Runs the skewed retrieval workload from ``bench_micro.py`` — an on-topic
minority buried in an off-topic majority — through the bound-pruned rank
path with a metrics registry attached, then dumps the
``matching.prune.*`` counters plus derived ratios.  CI uploads the file
so pruning effectiveness is visible per commit without re-running
benchmarks locally.

Usage::

    python benchmarks/pruning_report.py [OUTPUT.json]

Exits non-zero if pruning skipped less than half of the candidate
scoring on this workload (the acceptance bar the property and bench
suites also enforce).
"""

from __future__ import annotations

import json
import sys

import numpy as np

from repro.data import CorpusGenerator, DomainSpec, FeatureExtractor, TopicSpace, Vocabulary
from repro.obs import MetricsRegistry
from repro.query import PruneHint, Query, QueryKind
from repro.sim import RngStreams
from repro.sources import InformationSource, SourceQuality
from repro.uncertainty import build_matching_engine

SEED = 79
MIN_SKIP_FRACTION = 0.5


def build_workload():
    """The bench_micro pruning pool: 80 on-topic among 320 off-topic."""
    streams = RngStreams(SEED).spawn("report")
    space = TopicSpace(10)
    vocabulary = Vocabulary(space, streams.spawn("v"), vocabulary_size=800)
    corpus = CorpusGenerator(
        space, vocabulary, streams.spawn("c"), feature_dimensions=32
    )
    extractor = FeatureExtractor(32, streams.spawn("f"))
    sample = corpus.generate(
        DomainSpec(
            name="gallery",
            topic_prior={"folk-jewelry": 1.0},
            type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
        ),
        60,
    )
    engine = build_matching_engine(vocabulary, extractor, lifter_sample=sample)
    text_only = {"text": 1.0, "media": 0.0, "compound": 0.0}
    on_topic = corpus.generate(
        DomainSpec(
            name="museum", topic_prior={"folk-jewelry": 1.0},
            type_mix=text_only, concentration=0.3,
        ),
        80,
    )
    off_topic = corpus.generate(
        DomainSpec(
            name="museum",
            topic_prior={"academic-theses": 0.7, "dance-forms": 0.3},
            type_mix=text_only, concentration=0.3,
        ),
        320,
    )
    pool = [x for pair in zip(off_topic[:80], on_topic) for x in pair]
    pool.extend(off_topic[80:])
    rng = np.random.default_rng(SEED)
    intent = space.basis("folk-jewelry", weight=0.9)
    query = Query(
        kind=QueryKind.TOPIC,
        terms=vocabulary.sample_terms(intent, rng, length=60),
        intent_latent=intent,
        k=10,
        threshold=0.5,
    )
    return engine, pool, query


def main(argv: list) -> int:
    output = argv[1] if len(argv) > 1 else "pruning_report.json"
    metrics = MetricsRegistry()
    engine, pool, query = build_workload()
    engine.attach_metrics(metrics)
    source = InformationSource(
        source_id="report-src",
        node_id="n0",
        domains=["museum"],
        quality=SourceQuality(coverage=1.0, freshness_lag=0.0, error_rate=0.0),
        engine=engine,
        streams=RngStreams(SEED).spawn("report-src"),
        metrics=metrics,
    )
    source.ingest(pool, now=0.0, immediate=True)
    subquery = query.restricted_to("museum")
    hint = PruneHint(score_floor=query.threshold, k_cap=query.k)
    rounds = 20
    for __ in range(rounds):
        answer = source.answer(subquery, now=0.0, prune=hint)
    assert not answer.declined

    counters = metrics.counters()
    total = counters.get("matching.prune.candidates_total", 0.0)
    scored = counters.get("matching.prune.candidates_scored", 0.0)
    skip_fraction = 1.0 - (scored / total) if total else 0.0
    scored_hist = metrics.histogram_or_none("matching.prune.scored_fraction")
    report = {
        "workload": {
            "pool_size": len(pool),
            "on_topic": 80,
            "off_topic": 320,
            "k": query.k,
            "score_floor": query.threshold,
            "rounds": rounds,
        },
        "counters": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("matching.prune.")
        },
        "derived": {
            "skip_fraction": skip_fraction,
            "scored_fraction_mean": scored_hist.mean if scored_hist else None,
        },
        "acceptance": {
            "min_skip_fraction": MIN_SKIP_FRACTION,
            "passed": skip_fraction >= MIN_SKIP_FRACTION,
        },
    }
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"pruning skip fraction: {skip_fraction:.3f} (report -> {output})")
    if skip_fraction < MIN_SKIP_FRACTION:
        print(
            f"FAIL: pruning skipped {skip_fraction:.0%} of candidate scoring, "
            f"below the {MIN_SKIP_FRACTION:.0%} bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
