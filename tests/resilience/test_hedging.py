"""Tests for alternate-source selection (hedging/failover targets)."""

import pytest

from repro.resilience import BreakerBoard, BreakerPolicy, HedgeSelector
from repro.sources import SourceRegistry

from tests.conftest import make_source, make_topic_query


@pytest.fixture
def museum_registry(corpus_generator, matching_engine, streams):
    registry = SourceRegistry()
    for source_id in ("m1", "m2", "m3"):
        registry.register(
            make_source(source_id, corpus_generator, matching_engine, streams,
                        n_items=10)
        )
    return registry


@pytest.fixture
def museum_subquery(topic_space, vocabulary):
    query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
    return query.restricted_to("museum")


class TestHedgeSelector:
    def test_excludes_tried_sources(self, museum_registry, museum_subquery):
        selector = HedgeSelector(museum_registry)
        alternates = selector.alternates(museum_subquery, exclude={"m1"})
        assert "m1" not in alternates
        assert set(alternates) == {"m2", "m3"}

    def test_order_is_deterministic(self, museum_registry, museum_subquery):
        selector = HedgeSelector(museum_registry)
        first = selector.alternates(museum_subquery)
        second = selector.alternates(museum_subquery)
        assert first == second
        assert len(first) == 3

    def test_breaker_open_sources_are_skipped(
        self, museum_registry, museum_subquery
    ):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1))
        board.record_failure("m2")
        selector = HedgeSelector(museum_registry, board)
        alternates = selector.alternates(museum_subquery, exclude={"m1"})
        assert alternates == ["m3"]

    def test_best_alternate_none_when_domain_uncovered(
        self, museum_registry, topic_space, vocabulary
    ):
        query = make_topic_query(topic_space, vocabulary, "folk-jewelry", k=5)
        selector = HedgeSelector(museum_registry)
        assert selector.best_alternate(query.restricted_to("atlantis")) is None

    def test_best_alternate_prefers_fastest_advertised(
        self, museum_registry, museum_subquery
    ):
        selector = HedgeSelector(museum_registry)
        best = selector.best_alternate(museum_subquery)
        descriptors = {
            d.source_id: d.advertised["museum"].response_time
            for d in museum_registry.candidates_for("museum")
        }
        assert descriptors[best] == min(descriptors.values())
