"""Deterministic merge of per-shard telemetry snapshots.

A multi-process run produces one :class:`ShardSnapshot` per worker (plus
one for the coordinator): the shard's final metric state — with *exact*
histogram bucket counts, not lossy summaries — its span forest, and its
terminal sim time / event count.  :func:`merge_snapshots` folds any
number of them into one :class:`MergedRun` under a fixed, order-free
merge law:

- **counters** sum across shards;
- **gauges** resolve last-write-wins, where "last" is the shard with the
  greatest ``(sim_time, shard_id)`` among shards that wrote the gauge —
  a total order, so the merge is independent of input ordering;
- **histograms** merge bucket-wise (identical ladders required), so
  merged quantiles are a pure function of the union of observations;
- **spans** interleave on ``(start, shard_id, seq)`` — globally
  time-ordered, with the shard namespace breaking simultaneity ties.

Because every shard's snapshot is deterministic and the merge law is
order-free, two same-seed multi-process runs export byte-identical
merged JSONL artifacts and equal merged-manifest digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.context import seq_of, shard_of
from repro.obs.manifest import RunManifest, canonical_json
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer

PathLike = Union[str, Path]

#: Conventional artifact filenames for sharded runs.
SHARD_SNAPSHOT_FILE = "shard.json"
MERGED_SPANS_FILE = "merged_spans.jsonl"
MERGED_METRICS_FILE = "merged_metrics.jsonl"


@dataclass
class ShardSnapshot:
    """One shard's complete, serializable telemetry state."""

    shard_id: int
    sim_time: float
    event_count: int
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: histogram name → :meth:`repro.obs.metrics.Histogram.state_dict`
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    dropped_spans: int = 0
    trace_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable field names, spans by id)."""
        return {
            "shard_id": self.shard_id,
            "sim_time": self.sim_time,
            "event_count": self.event_count,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(state) for name, state in self.histograms.items()},
            "spans": [span.to_dict() for span in sorted(self.spans, key=lambda s: s.span_id)],
            "dropped_spans": self.dropped_spans,
            "trace_id": self.trace_id,
        }

    def to_json(self) -> str:
        """Canonical JSON rendering."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ShardSnapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(
            shard_id=int(payload["shard_id"]),
            sim_time=float(payload["sim_time"]),
            event_count=int(payload["event_count"]),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms=dict(payload.get("histograms", {})),
            spans=[Span.from_dict(entry) for entry in payload.get("spans", [])],
            dropped_spans=int(payload.get("dropped_spans", 0)),
            trace_id=str(payload.get("trace_id", "")),
        )

    def manifest_section(self) -> Dict[str, Any]:
        """The per-shard section embedded in a merged manifest."""
        return {
            "sim_time": self.sim_time,
            "event_count": self.event_count,
            "span_count": len(self.spans),
            "dropped_spans": self.dropped_spans,
        }


# agora: shard-safe
def snapshot_shard(
    shard_id: int,
    registry: MetricsRegistry,
    tracer: Optional[SpanTracer] = None,
    sim_time: float = 0.0,
    event_count: int = 0,
) -> ShardSnapshot:
    """Capture one shard's telemetry into a serializable snapshot."""
    return ShardSnapshot(
        shard_id=shard_id,
        sim_time=sim_time,
        event_count=event_count,
        counters=registry.counters(),
        gauges=registry.gauges(),
        histograms={
            name: histogram.state_dict()
            for name, histogram in registry.histograms().items()
        },
        spans=tracer.spans() if tracer is not None else [],
        dropped_spans=tracer.dropped_spans if tracer is not None else 0,
        trace_id=tracer.trace_id if tracer is not None else "",
    )


def write_shard_snapshot(snapshot: ShardSnapshot, path: PathLike) -> None:
    """Write a shard snapshot as canonical JSON (parent dirs created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(snapshot.to_json() + "\n")


def load_shard_snapshot(path: PathLike) -> ShardSnapshot:
    """Read a snapshot written by :func:`write_shard_snapshot`."""
    import json

    return ShardSnapshot.from_dict(json.loads(Path(path).read_text()))


@dataclass
class MergedRun:
    """The deterministic fold of N shard snapshots."""

    registry: MetricsRegistry
    spans: List[Span]
    sim_time: float
    event_count: int
    shard_ids: List[int]
    dropped_spans: int

    @property
    def span_count(self) -> int:
        """Number of spans across all shards."""
        return len(self.spans)


def merge_snapshots(snapshots: Sequence[ShardSnapshot]) -> MergedRun:
    """Merge shard snapshots under the order-free merge law.

    Raises ``ValueError`` on an empty input, duplicate shard ids, or
    histogram bucket-ladder mismatches — every one of those would make
    the merged artifact ambiguous rather than reproducible.
    """
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one shard snapshot")
    ordered = sorted(snapshots, key=lambda snap: snap.shard_id)
    shard_ids = [snap.shard_id for snap in ordered]
    if len(set(shard_ids)) != len(shard_ids):
        raise ValueError(f"duplicate shard ids in merge: {shard_ids}")

    registry = MetricsRegistry()
    # Counters: plain sums, accumulated in shard order (addition is
    # commutative; the order only matters for float rounding, which the
    # shard_id sort pins down).
    for snap in ordered:
        for name in sorted(snap.counters):
            registry.counter(name).inc(snap.counters[name])
    # Gauges: last-write-wins by (sim_time, shard_id) — the shard-level
    # terminal time is the write timestamp proxy, and shard_id breaks
    # exact ties totally.
    gauge_names = sorted({name for snap in ordered for name in snap.gauges})
    for name in gauge_names:
        writers = [snap for snap in ordered if name in snap.gauges]
        winner = max(writers, key=lambda snap: (snap.sim_time, snap.shard_id))
        registry.gauge(name).set(winner.gauges[name])
    # Histograms: bucket-wise exact merge.
    histogram_names = sorted({name for snap in ordered for name in snap.histograms})
    for name in histogram_names:
        merged: Optional[Histogram] = None
        for snap in ordered:
            state = snap.histograms.get(name)
            if state is None:
                continue
            shard_histogram = Histogram.from_state(name, state)
            if merged is None:
                merged = shard_histogram
            else:
                merged.merge_from(shard_histogram)
        assert merged is not None
        target = registry.histogram(name, merged.buckets)
        target.merge_from(merged)

    spans = sorted(
        (span for snap in ordered for span in snap.spans),
        key=lambda span: (span.start, shard_of(span.span_id), seq_of(span.span_id)),
    )
    return MergedRun(
        registry=registry,
        spans=spans,
        sim_time=max(snap.sim_time for snap in ordered),
        event_count=sum(snap.event_count for snap in ordered),
        shard_ids=shard_ids,
        dropped_spans=sum(snap.dropped_spans for snap in ordered),
    )


def merged_manifest(
    snapshots: Sequence[ShardSnapshot],
    seed: int,
    config_digest: str,
    merged: Optional[MergedRun] = None,
    **labels: str,
) -> RunManifest:
    """Build the merged-run manifest: global fields + per-shard sections.

    The manifest's ``metrics`` are the *merged* snapshot and its
    ``shards`` sections carry each shard's terminal provenance, so the
    manifest digest attests both the fold and its inputs.  Pass an
    already-computed ``merged`` run to avoid folding twice.
    """
    if merged is None:
        merged = merge_snapshots(snapshots)
    return RunManifest(
        seed=seed,
        config_digest=config_digest,
        event_count=merged.event_count,
        span_count=merged.span_count,
        metrics=merged.registry.snapshot(),
        shards={
            str(snap.shard_id): snap.manifest_section()
            for snap in sorted(snapshots, key=lambda snap: snap.shard_id)
        },
        labels=dict(labels),
    )


def write_merged_spans_jsonl(spans: Sequence[Span], path: PathLike) -> int:
    """Write merged spans in interleaved ``(start, shard, seq)`` order.

    Unlike :func:`repro.obs.export.write_spans_jsonl` (single-shard, id
    order) this preserves the global timeline ordering of the merge;
    the output is byte-stable for same-seed runs.  Returns #lines.
    """
    ordered = sorted(
        spans,
        key=lambda span: (span.start, shard_of(span.span_id), seq_of(span.span_id)),
    )
    lines = [canonical_json(span.to_dict()) for span in ordered]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def export_merged_run(
    directory: PathLike,
    merged: MergedRun,
    manifest: RunManifest,
) -> Dict[str, str]:
    """Write a merged run's artifact set (manifest + merged JSONL files)."""
    from repro.obs.export import MANIFEST_FILE, write_manifest, write_metrics_jsonl

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    manifest_path = target / MANIFEST_FILE
    write_manifest(manifest, manifest_path)
    written["manifest"] = str(manifest_path)
    spans_path = target / MERGED_SPANS_FILE
    write_merged_spans_jsonl(merged.spans, spans_path)
    written["merged_spans"] = str(spans_path)
    metrics_path = target / MERGED_METRICS_FILE
    write_metrics_jsonl(merged.registry, metrics_path)
    written["merged_metrics"] = str(metrics_path)
    return written
