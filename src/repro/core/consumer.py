"""The consumer agent: a user's query-side representative.

"Users (or underlying query agents) negotiate with the information
resources they deal with" (§3) — the :class:`Consumer` is that agent.  One
``ask()`` call runs the paper's full loop:

1. activate the context-appropriate profile (§8),
2. complete the query with the profile's QoS weights and risk attitude (§5),
3. plan — by trading (contract-net + SLAs, §3-4) or by multi-objective
   search over advertised candidates (§4),
4. execute against live sources over the simulated overlay (§2's
   unavailability/overload/blacklist pathologies apply),
5. settle contracts and update trust (§3 + reputation),
6. personalize (and optionally socialize) the final ranking (§5-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.context.conditional import ConditionalProfile
from repro.context.model import Context
from repro.core.agora import Agora
from repro.obs.spans import NULL_TRACER
from repro.optimizer.candidates import CandidateEnumerator
from repro.optimizer.search import (
    ExhaustiveSearch,
    GreedySearch,
    LocalSearch,
    make_evaluator,
)
from repro.optimizer.trading import SourceBidder, TradingOptimizer
from repro.personalization.profile import UserProfile
from repro.personalization.ranking import PersonalizedRanker
from repro.qos.sla import SLAContract, SLAOutcome
from repro.qos.vector import QoSVector, scalarize
from repro.query.execution import ExecutionContext, ExecutionResult, QueryExecutor
from repro.query.model import Query
from repro.resilience.policy import ResilienceConfig
from repro.social.fusion import SocialRanker
from repro.trust.reputation import ReputationSystem
from repro.uncertainty.results import UncertainResultSet


@dataclass
class ConsumerResult:
    """Everything one ``ask()`` produced."""

    query: Query
    ranked_items: List
    results: UncertainResultSet
    delivered: QoSVector
    contracts: List[SLAContract] = field(default_factory=list)
    settlements: List[SLAOutcome] = field(default_factory=list)
    unserved_jobs: List[str] = field(default_factory=list)
    response_time: float = 0.0
    total_price: float = 0.0
    utility: float = 0.0
    declined_sources: List[str] = field(default_factory=list)
    resilience_events: Dict[str, float] = field(default_factory=dict)

    @property
    def breached_contracts(self) -> int:
        """How many of this ask's contracts breached."""
        return sum(1 for outcome in self.settlements if outcome.breached)

    @property
    def net_cost(self) -> float:
        """Total paid net of compensation across settlements."""
        return sum(outcome.consumer_net_cost for outcome in self.settlements)


class Consumer:
    """One user's agent inside an agora.

    Parameters
    ----------
    agora:
        The market to operate in.
    profile:
        A static :class:`UserProfile` or a context-sensitive
        :class:`ConditionalProfile`.
    node_id:
        Overlay attachment point; defaults to the agora's consumer node.
    planner:
        Overrides the agora config's planner kind.
    personalization_weight:
        α of the personalized re-ranking blend (0 disables).
    resilience:
        Per-consumer resilience policies (retry/hedge/breaker); defaults
        to the agora config's.  Pass
        :meth:`ResilienceConfig.default_enabled` to turn the defences on.
    """

    def __init__(
        self,
        agora: Agora,
        profile: Union[UserProfile, ConditionalProfile],
        node_id: Optional[str] = None,
        planner: Optional[str] = None,
        personalization_weight: float = 0.4,
        trust_view=None,
        resilience: Optional[ResilienceConfig] = None,
    ):
        self.agora = agora
        self._profile = profile
        self.node_id = node_id if node_id is not None else agora.consumer_node()
        self.planner = planner if planner is not None else agora.config.planner
        self.personalization_weight = personalization_weight
        #: the consumer's *personal* trust view (distinct from global ledger)
        self.reputation = ReputationSystem()
        #: optional socialized trust (anything with ``score(source_id)``,
        #: e.g. :class:`repro.social.SocialTrustView`); used for candidate
        #: discounting and QoS trust annotation in place of bare reputation
        self.trust_view = trust_view
        self.resilience_config = (
            resilience if resilience is not None else agora.config.resilience
        )
        #: shared-breaker resilience runtime; ``None`` when policies are off
        self.resilience = (
            agora.resilience_runtime(self.resilience_config)
            if self.resilience_config.enabled
            else None
        )
        self.history: List[ConsumerResult] = []

    def trust_in(self, source_id: str) -> float:
        """Current trust in a source (socialized view when configured)."""
        if self.trust_view is not None:
            return self.trust_view.score(source_id)
        return self.reputation.score(source_id)

    # ------------------------------------------------------------------
    @property
    def user_id(self) -> str:
        """The underlying (base) profile's user id."""
        if isinstance(self._profile, ConditionalProfile):
            return self._profile.base.user_id
        return self._profile.user_id

    def active_profile(self, context: Optional[Context] = None) -> UserProfile:
        """The profile in force under ``context`` (§8 activation)."""
        if isinstance(self._profile, ConditionalProfile):
            return self._profile.active_profile(context if context is not None else Context())
        return self._profile

    def concept_of(self, item) -> np.ndarray:
        """Estimated concept vector of an item (via the shared lifter)."""
        return self.agora.engine.cross.lifter.lift(item)

    # ------------------------------------------------------------------
    def ask(
        self,
        query: Query,
        context: Optional[Context] = None,
        social_ranker: Optional[SocialRanker] = None,
        personalize: bool = True,
    ) -> ConsumerResult:
        """Run the full shopping loop for one query."""
        tracer = self.agora.tracer if self.agora.tracer is not None else NULL_TRACER
        profile = self.active_profile(context)
        query = self._complete_query(query, profile)
        with tracer.span(
            "query", query_id=query.query_id, user=self.user_id
        ) as root:
            with tracer.span("plan", planner=self.planner) as plan_span:
                plan, contracts, unserved = self._plan(query, profile)
                plan_span.annotate(
                    contracts=len(contracts), unserved=len(unserved)
                )
            if plan is None:
                root.annotate(outcome="unserved")
                empty = ConsumerResult(
                    query=query, ranked_items=[], results=UncertainResultSet(),
                    delivered=QoSVector(response_time=0.0, completeness=0.0,
                                        freshness=0.0, correctness=0.0, trust=0.0),
                    unserved_jobs=unserved,
                )
                self.history.append(empty)
                return empty
            execution = self._execute(plan, query)
            with tracer.span("settle", contracts=len(contracts)) as settle_span:
                settlements = self._settle(contracts, execution)
                settle_span.annotate(
                    breached=sum(1 for s in settlements if s.breached)
                )
            with tracer.span("rank") as rank_span:
                ranked = self._rank(
                    execution.results, profile, social_ranker, personalize
                )
                rank_span.annotate(items=len(ranked))
            total_price = sum(contract.total_price for contract in contracts)
            utility = max(
                0.0,
                scalarize(execution.delivered, profile.qos_weights)
                - profile.price_sensitivity * total_price,
            )
            root.annotate(
                outcome="served",
                utility=utility,
                response_time=execution.response_time,
            )
        result = ConsumerResult(
            query=query,
            ranked_items=ranked,
            results=execution.results,
            delivered=execution.delivered,
            contracts=contracts,
            settlements=settlements,
            unserved_jobs=unserved,
            response_time=execution.response_time,
            total_price=total_price,
            utility=utility,
            declined_sources=execution.declined_sources,
            resilience_events=execution.resilience_events,
        )
        self.history.append(result)
        return result

    def ask_with_relaxation(
        self,
        query: Query,
        context: Optional[Context] = None,
        relaxation_step: float = 0.3,
        max_relaxations: int = 3,
        **ask_kwargs,
    ) -> ConsumerResult:
        """Ask, progressively relaxing the QoS requirement if unserved.

        "At any point, users need to make tradeoffs among these
        parameters" (§3): when the market declines the original terms,
        the consumer loosens every bound by ``relaxation_step`` and tries
        again, up to ``max_relaxations`` times.  The returned result's
        query carries the requirement that finally got served.
        """
        if not 0.0 < relaxation_step < 1.0:
            raise ValueError("relaxation_step must be in (0, 1)")
        if max_relaxations < 0:
            raise ValueError("max_relaxations must be non-negative")
        result = self.ask(query, context=context, **ask_kwargs)
        relaxations = 0
        while result.unserved_jobs and relaxations < max_relaxations:
            relaxations += 1
            query = query.with_requirement(
                query.requirement.relaxed(relaxation_step)
            )
            result = self.ask(query, context=context, **ask_kwargs)
        return result

    def plan_query(self, query: Query, context: Optional[Context] = None):
        """Plan without executing.

        Returns ``(plan_tree, contracts, unserved_jobs)`` — used by the
        collaborative multi-query optimizer, which executes plans itself.
        """
        profile = self.active_profile(context)
        return self._plan(self._complete_query(query, profile), profile)

    # ------------------------------------------------------------------
    def _complete_query(self, query: Query, profile: UserProfile) -> Query:
        """Query completion from the profile (§5): weights follow the user."""
        return replace(
            query,
            weights=profile.qos_weights,
            issuer_id=self.user_id,
            query_id=query.query_id,
        )

    def _plan(self, query: Query, profile: UserProfile):
        agora = self.agora
        if self.planner == "trading":
            bidders = [
                SourceBidder(source, now=agora.now)
                for __, source in sorted(agora.sources.items())
            ]
            optimizer = TradingOptimizer(
                bidders, profile.qos_weights,
                price_sensitivity=profile.price_sensitivity,
            )
            negotiated = optimizer.negotiate(
                query, agora.available_domains(), now=agora.now
            )
            return negotiated.plan, negotiated.contracts, negotiated.unserved_jobs
        enumerator = CandidateEnumerator(
            agora.registry,
            self.trust_view if self.trust_view is not None else self.reputation,
        )
        table = enumerator.candidate_table(query)
        if not table:
            return None, [], ["<no-candidates>"]
        evaluator = make_evaluator(
            profile.qos_weights,
            price_sensitivity=profile.price_sensitivity,
            risk_profile=profile.risk,
        )
        searchers = {
            "exhaustive": ExhaustiveSearch(),
            "greedy": GreedySearch(),
            "local": LocalSearch(),
        }
        result = searchers[self.planner].search(table, evaluator)
        return result.best.plan.to_plan_tree(query), [], []

    def _execute(self, plan, query: Query) -> ExecutionResult:
        agora = self.agora
        context = ExecutionContext(
            registry=agora.registry,
            oracle=agora.oracle,
            calibrator=agora.calibrator if agora.calibrator.is_fitted else None,
            now=agora.now,
            consumer_id=self.user_id,
            latency=lambda source_id: agora.latency_to_source(self.node_id, source_id),
            trust=self.trust_in,
            resilience=self.resilience,
            tracer=agora.tracer,
            parallel=agora.parallel,
        )
        return QueryExecutor(context).execute(plan, query)

    def _settle(
        self, contracts: Sequence[SLAContract], execution: ExecutionResult
    ) -> List[SLAOutcome]:
        """Settle every signed contract against the audited delivery.

        Providers that signed but declined at execution time unilaterally
        cancelled; the rest settle against the overall delivered vector
        (a documented simplification — auditing is per-query, not per-job).
        """
        settlements = []
        declined = set(execution.declined_sources)
        for contract in contracts:
            if contract.provider_id in declined:
                outcome = self.agora.monitor.record_cancellation(
                    contract, by_provider=True
                )
            else:
                outcome = self.agora.monitor.settle(contract, execution.delivered)
            self.reputation.observe(contract.provider_id, outcome.compliance)
            settlements.append(outcome)
        return settlements

    def _rank(
        self,
        results: UncertainResultSet,
        profile: UserProfile,
        social_ranker: Optional[SocialRanker],
        personalize: bool,
    ):
        if social_ranker is not None:
            return social_ranker.rerank_items(results)
        if personalize and self.personalization_weight > 0:
            ranker = PersonalizedRanker(
                profile, self.concept_of,
                personalization_weight=self.personalization_weight,
            )
            return ranker.rerank_items(results)
        return results.items()

    # ------------------------------------------------------------------
    def personalized_ranker(
        self, context: Optional[Context] = None
    ) -> PersonalizedRanker:
        """A ranker bound to the currently active profile."""
        return PersonalizedRanker(
            self.active_profile(context), self.concept_of,
            personalization_weight=self.personalization_weight,
        )

    def subscribe(self, query: Query, threshold: Optional[float] = None) -> int:
        """Register a standing query on the agora's feed service (§9)."""
        from repro.multimodal.feeds import StandingQuery

        standing = StandingQuery.from_query(
            replace(query, issuer_id=self.user_id, query_id=query.query_id),
            threshold=threshold,
        )
        return self.agora.feeds.register(standing)

    def feed_inbox(self):
        """Take and clear this user's feed hits."""
        return self.agora.feeds.drain(self.user_id)
