"""Asynchronous marketplace: trading as messages over the overlay.

The synchronous :class:`~repro.optimizer.trading.TradingOptimizer` calls
bidders directly; this module runs the same contract-net rounds as actual
*network messages* in virtual time — CFPs travel to source nodes, sources
think and reply, the consumer awards when the bid deadline passes.  The
paper's "system reaction may be unpredictable" becomes literal: bids from
distant or slow nodes can miss the deadline, and down nodes never answer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.agora import Agora
from repro.negotiation.contract_net import (
    CallForProposals,
    Proposal,
    consumer_bid_score,
)
from repro.net.messages import Message
from repro.optimizer.trading import NegotiatedPlan, SourceBidder
from repro.qos.pricing import PricingPolicy
from repro.qos.sla import SLAContract
from repro.qos.vector import QoSWeights
from repro.query.algebra import Retrieve, standard_plan
from repro.query.model import Query, decompose

MarketCallback = Callable[[NegotiatedPlan], None]


@dataclass
class _PendingAuction:
    """One open CFP awaiting proposals at the consumer."""

    cfp: CallForProposals
    proposals: List[Proposal] = field(default_factory=list)
    closed: bool = False


class AsyncMarketplace:
    """Event-driven contract-net over the simulated network.

    Parameters
    ----------
    agora:
        The agora whose network, sources and clock to use.
    consumer_node:
        The overlay node the consumer sits on.
    pricing / risk_tolerance:
        Bidder-side parameters (see :class:`SourceBidder`).
    thinking_time:
        Virtual time a source spends preparing a bid before replying.
    """

    def __init__(
        self,
        agora: Agora,
        consumer_node: Optional[str] = None,
        pricing: Optional[PricingPolicy] = None,
        risk_tolerance: float = 0.9,
        thinking_time: float = 0.05,
    ):
        if thinking_time < 0:
            raise ValueError("thinking_time must be non-negative")
        self.agora = agora
        self.consumer_node = (
            consumer_node if consumer_node is not None else agora.consumer_node()
        )
        self.pricing = pricing
        self.risk_tolerance = risk_tolerance
        self.thinking_time = thinking_time
        self._pending: Dict[str, _PendingAuction] = {}
        self._sources_by_node: Dict[str, List] = defaultdict(list)
        for __, source in sorted(agora.sources.items()):
            self._sources_by_node[source.node_id].append(source)
        for node, sources in sorted(self._sources_by_node.items()):
            agora.network.register(node, self._source_handler(sources))
        agora.network.register(self.consumer_node, self._consumer_handler)
        self.bids_received = 0
        self.bids_late = 0

    # ------------------------------------------------------------------
    # Node handlers
    # ------------------------------------------------------------------
    def _source_handler(self, sources: List) -> Callable[[Message], None]:
        def handle(message: Message) -> None:
            if message.kind != "cfp":
                return
            cfp: CallForProposals = message.payload
            for source in sources:
                if cfp.domain not in source.domains:
                    continue
                bidder = SourceBidder(
                    source,
                    pricing=self.pricing,
                    risk_tolerance=self.risk_tolerance,
                    now=self.agora.now,
                )
                proposal = bidder(cfp)
                if proposal is None:
                    continue

                def reply(proposal=proposal, message=message) -> None:
                    self.agora.network.send(
                        message.reply("proposal", payload=proposal, size=0.5)
                    )

                self.agora.sim.schedule(
                    self.thinking_time, reply, tag=f"bid:{source.source_id}"
                )

        return handle

    def _consumer_handler(self, message: Message) -> None:
        if message.kind != "proposal":
            return
        proposal: Proposal = message.payload
        pending = self._pending.get(proposal.cfp.job_id)
        if pending is None:
            return
        if pending.closed:
            self.bids_late += 1
            self.agora.sim.trace.count("market.bids_late")
            return
        self.bids_received += 1
        pending.proposals.append(proposal)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def negotiate(
        self,
        query: Query,
        weights: QoSWeights,
        callback: MarketCallback,
        bid_deadline: float = 2.0,
        price_sensitivity: float = 0.02,
        min_score: float = 0.0,
    ) -> None:
        """Open one auction per job; invoke ``callback`` when all close.

        The callback fires in virtual time, ``bid_deadline`` after the
        last CFP went out, with the assembled :class:`NegotiatedPlan`.
        """
        if bid_deadline <= 0:
            raise ValueError("bid_deadline must be positive")
        jobs = decompose(query, self.agora.available_domains())
        outcome = NegotiatedPlan(query=query, plan=None)
        retrieves: List[Retrieve] = []
        state = {"open": len(jobs)}
        if not jobs:
            callback(outcome)
            return
        scorer = consumer_bid_score(weights, price_sensitivity)
        for subquery in jobs:
            cfp = CallForProposals(
                job_id=subquery.subquery_id,
                domain=subquery.domain,
                requirement=query.requirement,
                consumer_id=query.issuer_id,
                issued_at=self.agora.now,
            )
            pending = _PendingAuction(cfp=cfp)
            self._pending[cfp.job_id] = pending
            for node in sorted(self._sources_by_node):
                self.agora.network.send(
                    Message(self.consumer_node, node, "cfp", payload=cfp, size=0.3)
                )

            def close(pending=pending, subquery=subquery) -> None:
                pending.closed = True
                best = None
                if pending.proposals:
                    ranked = sorted(
                        pending.proposals,
                        key=lambda p: (-scorer(p), p.total_price, p.provider_id),
                    )
                    if scorer(ranked[0]) >= min_score:
                        best = ranked[0]
                if best is None:
                    outcome.unserved_jobs.append(subquery.subquery_id)
                else:
                    contract = SLAContract(
                        provider_id=best.provider_id,
                        consumer_id=query.issuer_id,
                        requirement=query.requirement,
                        base_price=best.quote.base_price,
                        premium=best.quote.premium,
                        compensation=best.quote.compensation,
                        signed_at=self.agora.now,
                        job_id=pending.cfp.job_id,
                    )
                    outcome.contracts.append(contract)
                    retrieves.append(Retrieve(subquery, best.executor_id))
                    # Notify the winner (accounting only; no reply needed).
                    winner_node = self.agora.registry.source(
                        best.executor_id
                    ).node_id
                    self.agora.network.send(Message(
                        self.consumer_node, winner_node, "award",
                        payload=pending.cfp.job_id, size=0.1,
                    ))
                state["open"] -= 1
                if state["open"] == 0:
                    if retrieves:
                        outcome.plan = standard_plan(
                            retrieves, k=query.k, tau=query.threshold,
                        )
                    callback(outcome)

            self.agora.sim.schedule(bid_deadline, close, tag=f"close:{cfp.job_id}")
