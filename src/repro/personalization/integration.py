"""Multi-source profile integration.

"Generating a single, cohesive profile from local ones collected for the
same user at multiple information sources presents the usual difficulties
of data integration as well as some specific ones ... e.g., dealing with
inconsistent behavior at different sources with respect to likes and
dislikes" (§5).

Each source holds a :class:`LocalProfile` (its partial observation of the
user).  Integration is confidence- and recency-weighted averaging, with an
explicit inconsistency report for topic dimensions where local profiles
disagree beyond a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.personalization.profile import UserProfile


@dataclass
class LocalProfile:
    """One source's partial view of a user.

    Attributes
    ----------
    source_id:
        Which source observed this.
    user_id:
        Who it describes.
    interests:
        Local interest estimate (normalised on construction).
    confidence:
        Evidence mass (e.g. number of interactions behind the estimate).
    observed_at:
        Virtual time of the last contributing observation.
    """

    source_id: str
    user_id: str
    interests: np.ndarray
    confidence: float = 1.0
    observed_at: float = 0.0

    def __post_init__(self) -> None:
        self.interests = np.asarray(self.interests, dtype=float)
        if np.any(self.interests < -1e-12):
            raise ValueError("interests must be non-negative")
        total = self.interests.sum()
        if total <= 0:
            raise ValueError("interests must have positive mass")
        self.interests = np.clip(self.interests, 0.0, None) / total
        if self.confidence <= 0:
            raise ValueError("confidence must be positive")


@dataclass
class IntegrationReport:
    """Outcome of merging local profiles."""

    merged_interests: np.ndarray
    total_confidence: float
    inconsistent_topics: List[int] = field(default_factory=list)
    sources_used: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """Whether no topic was flagged inconsistent."""
        return not self.inconsistent_topics


def integrate_profiles(
    locals_: Sequence[LocalProfile],
    recency_half_life: float = 200.0,
    now: float = 0.0,
    inconsistency_tolerance: float = 0.25,
) -> IntegrationReport:
    """Merge local profiles of one user into a global interest vector.

    Weights combine confidence with exponential recency decay.  A topic is
    flagged inconsistent when the confidence-weighted spread of local
    values exceeds ``inconsistency_tolerance``; for those topics the most
    *recent* local profile wins outright (recency resolves contradiction,
    the "likes changed" interpretation).
    """
    if not locals_:
        raise ValueError("need at least one local profile")
    user_ids = {lp.user_id for lp in locals_}
    if len(user_ids) != 1:
        raise ValueError(f"local profiles describe different users: {sorted(user_ids)}")
    n_topics = locals_[0].interests.shape[0]
    if any(lp.interests.shape != (n_topics,) for lp in locals_):
        raise ValueError("local profiles disagree on topic dimensionality")
    if recency_half_life <= 0:
        raise ValueError("recency_half_life must be positive")

    weights = np.array(
        [
            lp.confidence * 0.5 ** (max(0.0, now - lp.observed_at) / recency_half_life)
            for lp in locals_
        ]
    )
    weights = weights / weights.sum()
    stacked = np.stack([lp.interests for lp in locals_])
    merged = weights @ stacked

    # Inconsistency detection: weighted std per topic, relative to mean.
    deviations = stacked - merged
    spread = np.sqrt(weights @ (deviations**2))
    inconsistent = [
        int(i)
        for i in range(n_topics)
        if spread[i] > inconsistency_tolerance * max(merged[i], 1.0 / n_topics)
    ]
    if inconsistent:
        freshest = max(locals_, key=lambda lp: (lp.observed_at, lp.confidence))
        for topic_index in inconsistent:
            merged[topic_index] = freshest.interests[topic_index]
    merged = np.clip(merged, 1e-12, None)
    merged = merged / merged.sum()
    return IntegrationReport(
        merged_interests=merged,
        total_confidence=float(sum(lp.confidence for lp in locals_)),
        inconsistent_topics=inconsistent,
        sources_used=sorted({lp.source_id for lp in locals_}),
    )


def integrated_profile(
    base: UserProfile,
    locals_: Sequence[LocalProfile],
    now: float = 0.0,
) -> UserProfile:
    """Convenience: apply integration to a full profile."""
    report = integrate_profiles(locals_, now=now)
    merged = base.with_interests(report.merged_interests)
    merged.confidence = report.total_confidence
    return merged
