# module: repro.core.fixture_floats
"""Fixture: exact float comparisons on timestamps that AGR004 must flag."""


def compare_times(event, other, deadline):
    same = event.now == other.now  # expect: AGR004
    distinct = event.arrival_time != deadline  # expect: AGR004
    unset = deadline == None  # noqa: E711  # fine: sentinel check, not arithmetic
    counted = event.count == 3  # fine: not time-like
    return same, distinct, unset, counted
