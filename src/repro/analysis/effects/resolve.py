"""Conservative call resolution for the effect pass.

Resolution order for a call expression:

1. dotted path through the module's import-alias table → project
   function/class registry, else the stdlib/numpy whitelist tables;
2. ``self.method()`` → precise class resolution (own def, project
   ancestors, plus every project subclass override — method dispatch
   may land in any of them);
3. other ``obj.method()`` → join of every project class defining that
   method name, unioned with the generic method tables (the receiver
   might equally be a plain dict/list);
4. anything else → :data:`~.model.UNRESOLVED_CALL` poison.

The tables are allow-lists: an unknown name is never assumed pure.
"""

from __future__ import annotations

# -- dotted-path tables ------------------------------------------------------

#: call of these builtins/dotted names has no effect of its own
PURE_CALLS = frozenset(
    {
        "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
        "divmod", "enumerate", "filter", "float", "format", "frozenset",
        "getattr", "hasattr", "hash", "id", "int", "isinstance",
        "issubclass", "iter", "len", "list", "map", "max", "min", "object",
        "ord", "pow", "range", "repr", "reversed", "round", "set", "slice",
        "sorted", "str", "sum", "tuple", "type", "vars", "zip",
        "ValueError", "TypeError", "KeyError", "IndexError", "RuntimeError",
        "StopIteration", "NotImplementedError", "AttributeError",
        "ArithmeticError", "ZeroDivisionError", "OverflowError", "Exception",
        "AssertionError", "LookupError", "FloatingPointError",
        "super",
    }
)

#: dotted prefixes whose calls are effect-free (or return fresh values)
PURE_PREFIXES = (
    "math.",
    "cmath.",
    "json.",
    "re.",
    "operator.",
    "statistics.",
    "string.",
    "textwrap.",
    "itertools.",
    "collections.",
    "dataclasses.",
    "fractions.",
    "decimal.",
    "hashlib.",
    "struct.",
    "uuid.UUID",
    "enum.",
    "abc.",
    "typing.",
    "contextlib.",
    "functools.partial",
    "functools.reduce",
    "functools.cmp_to_key",
    "copy.copy",
    "copy.deepcopy",
    "heapq.nlargest",
    "heapq.nsmallest",
    "heapq.merge",
    "bisect.bisect",
    "bisect.bisect_left",
    "bisect.bisect_right",
    "warnings.warn",
    "os.path.",
    "posixpath.",
    "difflib.",
    "unicodedata.",
)

#: numpy namespaces that are effect-free value constructors/kernels.
#: This blanket is only sound because every impure numpy entry point is
#: carved out *before* it in :meth:`FunctionScanner._resolve_dotted_call`
#: resolution order: ``numpy.random.*`` defaults to RNG_DRAW (only
#: :data:`FRESH_NUMPY_RANDOM` constructors escape), numpy file I/O lives
#: in :data:`IO_PREFIXES`, argument-mutating helpers in
#: :data:`ARG0_MUTATORS`, and interpreter-global knobs in
#: :data:`GLOBAL_STATE_CALLS`.
PURE_NUMPY_PREFIXES = (
    "numpy.",
)

#: numpy.random names that construct seeded generators (fresh values)
FRESH_NUMPY_RANDOM = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.SeedSequence",
        "numpy.random.BitGenerator",
    }
)

#: dotted names whose call mutates their first argument
ARG0_MUTATORS = frozenset(
    {
        "bisect.insort",
        "bisect.insort_left",
        "bisect.insort_right",
        "heapq.heappush",
        "heapq.heappop",
        "heapq.heapreplace",
        "heapq.heappushpop",
        "heapq.heapify",
        "setattr",
        "delattr",
        "next",
        # numpy helpers that write into their first (array) argument
        "numpy.fill_diagonal",
        "numpy.copyto",
        "numpy.put",
        "numpy.place",
        "numpy.putmask",
        "numpy.put_along_axis",
    }
)

#: dotted names whose call mutates interpreter-/library-global settings
GLOBAL_STATE_CALLS = frozenset(
    {
        "numpy.seterr",
        "numpy.seterrcall",
        "numpy.setbufsize",
        "numpy.set_printoptions",
        "numpy.set_string_function",
        "warnings.filterwarnings",
        "warnings.simplefilter",
        "warnings.resetwarnings",
    }
)

#: dotted prefixes that perform process-external I/O
IO_PREFIXES = (
    "print",
    "input",
    "open",
    "os.",
    "sys.",
    "subprocess.",
    "shutil.",
    "socket.",
    "logging.",
    "io.",
    "tempfile.",
    "pickle.dump",
    "pickle.load",
    "csv.",
    "sqlite3.",
    "urllib.",
    "http.",
    # numpy file I/O (checked before the blanket numpy pure prefix)
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.savetxt",
    "numpy.load",
    "numpy.loadtxt",
    "numpy.genfromtxt",
    "numpy.fromregex",
    "numpy.fromfile",
    "numpy.memmap",
    "numpy.lib.format.",
    "numpy.DataSource",
)

#: module-level RNG draws (unseedable shared global state).  The whole
#: ``numpy.random`` namespace defaults to RNG_DRAW: anything not in
#: :data:`FRESH_NUMPY_RANDOM` either draws from or mutates the shared
#: legacy global generator.
RNG_PREFIXES = (
    "random.",
    "numpy.random.",
    "secrets.",
)

#: host wall-clock reads (nondeterministic under sharding)
WALL_PREFIXES = (
    "time.",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: dynamic dispatch the analysis refuses to bound
UNKNOWN_CALLS = frozenset({"eval", "exec", "__import__", "globals", "locals", "compile"})

# -- method-name tables ------------------------------------------------------

#: receiver-preserving reads on builtin containers / numpy arrays / str
PURE_METHODS = frozenset(
    {
        # mapping/sequence reads
        "get", "keys", "values", "items", "copy", "count", "index",
        "most_common", "elements", "total",
        # str reads
        "split", "rsplit", "splitlines", "strip", "lstrip", "rstrip",
        "join", "startswith", "endswith", "lower", "upper", "title",
        "casefold", "format", "format_map", "replace", "find", "rfind",
        "partition", "rpartition", "encode", "decode", "zfill", "ljust",
        "rjust", "center", "isdigit", "isalpha", "isalnum", "isspace",
        "isidentifier", "capitalize", "translate", "maketrans",
        # numpy array reads (fresh results)
        "sum", "max", "min", "argmax", "argmin", "mean", "std", "var",
        "dot", "astype", "reshape", "flatten", "ravel", "nonzero",
        "cumsum", "cumprod", "item", "tolist", "squeeze", "transpose",
        "clip", "round", "repeat", "take", "searchsorted", "argsort",
        "tobytes", "view", "any", "all", "prod", "conj", "trace",
        # hashes / misc value types
        "digest", "hexdigest", "hex", "bit_length", "to_bytes", "from_bytes",
        "as_integer_ratio", "is_integer", "total_seconds", "isoformat",
        "union", "intersection", "difference", "symmetric_difference",
        "issubset", "issuperset", "isdisjoint",
        # dataclass/typing helpers
        "mro",
    }
)

#: methods that mutate their receiver
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "sort", "reverse", "setdefault",
        "move_to_end", "appendleft", "popleft", "extendleft", "rotate",
        "fill", "sort_values", "put", "subtract", "intersection_update",
        "difference_update", "symmetric_difference_update",
        "__setitem__", "__delitem__",
    }
)

#: RNG draw methods on generator objects; receiver provenance decides
#: whether the draw is threaded (parameter) or shared
RNG_METHODS = frozenset(
    {
        "normal", "uniform", "random", "integers", "choice", "shuffle",
        "permutation", "standard_normal", "exponential", "poisson",
        "binomial", "multinomial", "beta", "gamma", "lognormal",
        "laplace", "geometric", "spawn",
    }
)

#: I/O methods (file-like receivers)
IO_METHODS = frozenset(
    {
        "write", "writelines", "read", "readline", "readlines", "flush",
        "close", "seek", "truncate", "write_text", "read_text",
        "write_bytes", "read_bytes", "mkdir", "rmdir", "unlink", "touch",
        "rename", "symlink_to", "open",
    }
)

#: stdlib module roots we recognise; dotted calls rooted elsewhere that
#: match no table resolve to UNKNOWN rather than silently passing
KNOWN_STDLIB_ROOTS = frozenset(
    {
        "math", "cmath", "json", "re", "operator", "statistics", "string",
        "textwrap", "itertools", "collections", "dataclasses", "functools",
        "fractions", "decimal", "hashlib", "struct", "uuid", "enum", "abc",
        "typing", "contextlib", "copy", "heapq", "bisect", "warnings",
        "numpy", "random", "secrets", "time", "datetime", "os", "sys",
        "subprocess", "shutil", "socket", "logging", "io", "tempfile",
        "pickle", "csv", "sqlite3", "urllib", "http", "pathlib", "difflib",
        "unicodedata", "posixpath", "argparse", "ast", "inspect",
    }
)


def matches_prefix(dotted: str, prefixes: "tuple[str, ...]") -> bool:
    """Whether ``dotted`` equals or extends any entry in ``prefixes``."""
    for prefix in prefixes:
        if prefix.endswith("."):
            if dotted.startswith(prefix) or dotted == prefix[:-1]:
                return True
        elif dotted == prefix or dotted.startswith(prefix + "."):
            return True
    return False
