"""Breach-probability estimation.

Given a provider's (expected) delivered QoS and a requirement it is asked
to promise, estimate the probability it will breach the contract.  Each
constrained dimension contributes a logistic term in the margin between
expectation and bound; the dimension-wise risks combine as independent
events.  Both providers (to price premiums) and consumers (to discount
promises) use this.
"""

from __future__ import annotations

import numpy as np

from repro.qos.vector import QoSRequirement, QoSVector


def dimension_breach_probability(margin: float, sharpness: float = 8.0) -> float:
    """Probability of breaching one dimension given its safety ``margin``.

    ``margin`` > 0 means the expectation clears the bound; at margin 0 the
    breach probability is 0.5, approaching 0/1 for large |margin|.
    """
    if sharpness <= 0:
        raise ValueError("sharpness must be positive")
    return float(1.0 / (1.0 + np.exp(sharpness * margin)))


def breach_probability(
    expected: QoSVector,
    requirement: QoSRequirement,
    sharpness: float = 8.0,
    time_scale: float = 10.0,
) -> float:
    """Probability that a delivery distributed around ``expected`` breaches.

    Response-time margins are normalised by ``time_scale`` so they are
    comparable with the unit-interval quality margins.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    survival = 1.0
    if requirement.max_response_time is not None:
        margin = (requirement.max_response_time - expected.response_time) / time_scale
        survival *= 1.0 - dimension_breach_probability(margin, sharpness)
    for bound_name, dim in (
        ("min_completeness", "completeness"),
        ("min_freshness", "freshness"),
        ("min_correctness", "correctness"),
        ("min_trust", "trust"),
    ):
        bound = getattr(requirement, bound_name)
        if bound is None:
            continue
        margin = getattr(expected, dim) - bound
        survival *= 1.0 - dimension_breach_probability(margin, sharpness)
    return float(np.clip(1.0 - survival, 0.0, 1.0))
