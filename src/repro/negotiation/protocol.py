"""Alternating-offers bilateral negotiation.

The buyer and the seller exchange offers in rounds until one accepts, a
deadline passes, or both would rather walk away.  Acceptance rule: accept
the standing offer when it is at least as good (for me) as the counter I
am about to send — the standard monotonic-concession acceptance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.negotiation.offers import Offer
from repro.negotiation.strategies import ConcessionStrategy
from repro.negotiation.utility import NegotiationPreferences


@dataclass
class Negotiator:
    """One party in a bilateral negotiation."""

    name: str
    preferences: NegotiationPreferences
    strategy: ConcessionStrategy

    def target(self, t: float, opponent_history: List[float]) -> float:
        """Demanded own-utility at time ``t`` (never below reservation)."""
        return max(
            self.preferences.reservation,
            self.strategy.target(t, self.preferences.reservation, opponent_history),
        )

    def propose(self, t: float, opponent_history: List[float],
                opponent_last: Optional[Offer]) -> Offer:
        """Generate the counter-offer for time ``t``."""
        target = self.target(t, opponent_history)
        return self.preferences.utility.iso_utility_offer(target, toward=opponent_last)

    def accepts(self, offer: Offer, own_next: Offer) -> bool:
        """Accept when the standing offer beats our own next proposal."""
        utility = self.preferences.utility
        if utility(offer) < self.preferences.reservation:
            return False
        return utility(offer) >= utility(own_next) - 1e-9


@dataclass
class NegotiationOutcome:
    """Result of one bilateral encounter."""

    agreed: bool
    deal: Optional[Offer]
    rounds: int
    buyer_utility: float
    seller_utility: float
    transcript: List[Offer] = field(default_factory=list)

    @property
    def joint_utility(self) -> float:
        """Buyer + seller utility of the deal (0 if no deal)."""
        return self.buyer_utility + self.seller_utility if self.agreed else 0.0

    @property
    def nash_product(self) -> float:
        """Buyer × seller utility of the deal (0 if no deal)."""
        return self.buyer_utility * self.seller_utility if self.agreed else 0.0


class AlternatingOffersProtocol:
    """Runs bilateral alternating-offers negotiations.

    Parameters
    ----------
    max_rounds:
        Deadline: total number of offers that may be exchanged.
        Normalised time ``t`` for strategies is round / max_rounds.
    """

    def __init__(self, max_rounds: int = 20):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds

    def run(self, buyer: Negotiator, seller: Negotiator) -> NegotiationOutcome:
        """Negotiate; the buyer opens."""
        transcript: List[Offer] = []
        # Histories of the opponent's offers valued in each party's utility.
        buyer_view_of_seller: List[float] = []
        seller_view_of_buyer: List[float] = []
        standing: Optional[Offer] = None
        proposer, responder = buyer, seller
        for round_index in range(self.max_rounds):
            t = round_index / self.max_rounds
            if proposer is buyer:
                history = buyer_view_of_seller
            else:
                history = seller_view_of_buyer
            proposal = proposer.propose(t, history, standing)
            transcript.append(dict(proposal))
            # Record how the responder values the new proposal.
            if responder is buyer:
                buyer_view_of_seller.append(responder.preferences.utility(proposal))
            else:
                seller_view_of_buyer.append(responder.preferences.utility(proposal))
            # Responder decides: accept or plan a counter.
            t_next = (round_index + 1) / self.max_rounds
            responder_history = (
                buyer_view_of_seller if responder is buyer else seller_view_of_buyer
            )
            counter = responder.propose(min(t_next, 1.0), responder_history, proposal)
            if responder.accepts(proposal, counter):
                return NegotiationOutcome(
                    agreed=True,
                    deal=proposal,
                    rounds=round_index + 1,
                    buyer_utility=buyer.preferences.utility(proposal),
                    seller_utility=seller.preferences.utility(proposal),
                    transcript=transcript,
                )
            standing = proposal
            proposer, responder = responder, proposer
        return NegotiationOutcome(
            agreed=False,
            deal=None,
            rounds=self.max_rounds,
            buyer_utility=0.0,
            seller_utility=0.0,
            transcript=transcript,
        )
