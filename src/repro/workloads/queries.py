"""Query workload generation.

Builds topic and similarity queries whose latent intent is known, either
from a user's ground-truth interests (personalized workloads) or from a
fixed topic (controlled sweeps).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


from repro.data.corpus import CorpusGenerator, DomainSpec
from repro.data.topics import TopicSpace
from repro.data.vocabulary import Vocabulary
from repro.personalization.profile import UserProfile
from repro.qos.vector import QoSRequirement
from repro.query.model import Query, QueryKind
from repro.sim.rng import ScopedStreams


class QueryWorkloadGenerator:
    """Draws queries with known latent intent."""

    def __init__(
        self,
        topic_space: TopicSpace,
        vocabulary: Vocabulary,
        streams: ScopedStreams,
        corpus: Optional[CorpusGenerator] = None,
    ):
        self.topic_space = topic_space
        self.vocabulary = vocabulary
        self.corpus = corpus
        self._rng = streams.stream("queries")

    # ------------------------------------------------------------------
    def topic_query(
        self,
        topic: str,
        k: int = 10,
        term_count: int = 60,
        weight: float = 0.9,
        requirement: Optional[QoSRequirement] = None,
        target_domains: Optional[Tuple[str, ...]] = None,
        issuer_id: str = "",
    ) -> Query:
        """A topic query concentrated on one named topic."""
        intent = self.topic_space.basis(topic, weight=weight)
        terms = self.vocabulary.sample_terms(intent, self._rng, length=term_count)
        return Query(
            kind=QueryKind.TOPIC,
            terms=terms,
            intent_latent=intent,
            k=k,
            requirement=requirement if requirement is not None else QoSRequirement(),
            target_domains=target_domains,
            issuer_id=issuer_id,
        )

    def interest_query(
        self,
        profile: UserProfile,
        k: int = 10,
        term_count: int = 60,
        sharpen: float = 2.0,
        requirement: Optional[QoSRequirement] = None,
    ) -> Query:
        """A query drawn from a user's ground-truth interests.

        The intent is a sharpened sample around the interest vector —
        users ask about *specific* needs within their general tastes.
        """
        if sharpen <= 0:
            raise ValueError("sharpen must be positive")
        intent = self.topic_space.sample(
            self._rng, concentration=1.0 / sharpen, prior=profile.interests
        )
        terms = self.vocabulary.sample_terms(intent, self._rng, length=term_count)
        return Query(
            kind=QueryKind.TOPIC,
            terms=terms,
            intent_latent=intent,
            k=k,
            requirement=requirement if requirement is not None else QoSRequirement(),
            issuer_id=profile.user_id,
        )

    def similarity_query(
        self,
        topic: str,
        k: int = 10,
        requirement: Optional[QoSRequirement] = None,
        issuer_id: str = "",
    ) -> Query:
        """A reference-item (compare-this) query.

        Needs a corpus generator to mint the reference object.
        """
        if self.corpus is None:
            raise RuntimeError("similarity queries need a corpus generator")
        spec = DomainSpec(
            name="query-reference",
            topic_prior={topic: 1.0},
            type_mix={"text": 0.0, "media": 1.0, "compound": 0.0},
            concentration=0.3,
        )
        reference = self.corpus.generate(spec, 1)[0]
        return Query(
            kind=QueryKind.SIMILARITY,
            reference_item=reference,
            intent_latent=reference.latent,
            k=k,
            requirement=requirement if requirement is not None else QoSRequirement(),
            issuer_id=issuer_id,
        )

    def mixed_workload(
        self,
        profiles: Sequence[UserProfile],
        queries_per_user: int,
        k: int = 10,
    ) -> List[Query]:
        """Interest queries for a whole population (round-robin order)."""
        if queries_per_user < 0:
            raise ValueError("queries_per_user must be non-negative")
        workload: List[Query] = []
        for __ in range(queries_per_user):
            for profile in profiles:
                workload.append(self.interest_query(profile, k=k))
        return workload
