"""Open Agoras of Data and Information — a constructive reproduction.

Reproduces the system envisioned in Y. Ioannidis, "Emerging Open Agoras of
Data and Information", ICDE 2007: a distributed environment of independent
information systems where seeking information works like shopping for
material goods — with uncertainty, QoS contracts, negotiation,
personalization, socialization, collaboration, contextualization and
multi-modal interaction as first-class concerns.

Quickstart
----------
>>> from repro import build_agora, Consumer, UserProfile
>>> agora = build_agora(seed=7, n_sources=5, items_per_source=30)

Subpackage map (one per paper section):

- :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.data`,
  :mod:`repro.sources` — substrates (simulator, overlay, content, sources).
- :mod:`repro.uncertainty` (§2), :mod:`repro.qos` (§3),
  :mod:`repro.negotiation` + :mod:`repro.optimizer` (§4),
  :mod:`repro.personalization` (§5), :mod:`repro.social` (§6),
  :mod:`repro.collaboration` (§7), :mod:`repro.context` (§8),
  :mod:`repro.multimodal` (§9), :mod:`repro.trust` (cross-cutting).
- :mod:`repro.core` — the Agora facade and Consumer agent.
- :mod:`repro.workloads`, :mod:`repro.experiments` — evaluation harness.
"""

from repro.core import Agora, AgoraConfig, Consumer, ConsumerResult, build_agora
from repro.personalization import UserProfile
from repro.qos import QoSRequirement, QoSVector, QoSWeights
from repro.query import Query, QueryKind, RelevanceOracle

__version__ = "1.0.0"

__all__ = [
    "Agora",
    "AgoraConfig",
    "Consumer",
    "ConsumerResult",
    "QoSRequirement",
    "QoSVector",
    "QoSWeights",
    "Query",
    "QueryKind",
    "RelevanceOracle",
    "UserProfile",
    "build_agora",
    "__version__",
]
