"""User affinity.

"Only the profiles of other users that have some affinity with the current
user should be considered, where affinity may be defined through profile
similarity or other association" (§6).  We blend the two signals the paper
names: interest-vector similarity and social proximity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.personalization.profile import UserProfile
from repro.personalization.store import ProfileStore
from repro.social.graph import SocialGraph
from repro.social.privacy import PrivacyRegistry


def affinity(
    a: UserProfile,
    b: UserProfile,
    graph: SocialGraph,
    interest_weight: float = 0.6,
) -> float:
    """Affinity between two users in [0, 1].

    ``interest_weight`` blends profile similarity against social proximity.
    """
    if not 0.0 <= interest_weight <= 1.0:
        raise ValueError("interest_weight must be in [0, 1]")
    similarity = a.similarity(b)
    proximity = graph.proximity(a.user_id, b.user_id)
    return interest_weight * similarity + (1.0 - interest_weight) * proximity


@dataclass
class AffineNeighbour:
    """One neighbour with its affinity and visible profile."""

    user_id: str
    affinity: float
    profile: UserProfile


class AffinityIndex:
    """Finds a user's affine neighbourhood, respecting privacy.

    Only users whose *interests* the viewer is allowed to see can
    contribute to social fusion; the rest are invisible regardless of
    affinity.
    """

    def __init__(
        self,
        store: ProfileStore,
        graph: SocialGraph,
        privacy: Optional[PrivacyRegistry] = None,
        interest_weight: float = 0.6,
    ):
        self.store = store
        self.graph = graph
        self.privacy = privacy
        self.interest_weight = interest_weight

    def neighbourhood(
        self,
        viewer: UserProfile,
        k: int = 5,
        min_affinity: float = 0.0,
    ) -> List[AffineNeighbour]:
        """The top-``k`` visible neighbours with affinity ≥ ``min_affinity``."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= min_affinity <= 1.0:
            raise ValueError("min_affinity must be in [0, 1]")
        neighbours: List[AffineNeighbour] = []
        for user_id in self.store.user_ids():
            if user_id == viewer.user_id:
                continue
            if self.privacy is not None and not self.privacy.can_see(
                viewer.user_id, user_id, "interests"
            ):
                continue
            profile = self.store.load(user_id)
            value = affinity(viewer, profile, self.graph, self.interest_weight)
            if value >= min_affinity:
                neighbours.append(AffineNeighbour(user_id, value, profile))
        neighbours.sort(key=lambda n: (-n.affinity, n.user_id))
        return neighbours[:k]
