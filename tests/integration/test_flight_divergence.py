"""End-to-end flight recording: byte-stable logs and exact fault pinpointing.

The acceptance bar for the flight recorder: two same-seed runs stream
byte-identical recordings (chunk files *and* footer compare equal), and
when one run injects a fault, the divergence debugger names exactly the
injected event — same log index as an exhaustive linear scan, with the
fault visible in the divergent entry and RNG stream deltas attached.
"""

import json

import numpy as np
import pytest

from repro.core import Consumer
from repro.core.builder import build_agora
from repro.data import reset_item_ids
from repro.net import reset_message_ids
from repro.obs import align_runs, diff_manifests, load_recording
from repro.obs.flight import FOOTER_FILE
from repro.personalization import UserProfile
from repro.query import reset_query_ids
from repro.resilience import FaultScript, ResilienceConfig
from repro.workloads import QueryWorkloadGenerator

QUERY_SPACING = 5.0
N_QUERIES = 8
HORIZON = QUERY_SPACING * (N_QUERIES + 1)


def record_run(out_dir, seed=11, fault_at=None, availability=0.5):
    """Mirror ``examples/observability_demo.py --flight`` into ``out_dir``.

    The fault script is installed *unconditionally* (a clean run fires it
    beyond the horizon) so clean and mutant runs push identical event
    sequences and the first divergent record is the fault itself.
    """
    from repro.obs import export_run

    reset_item_ids()
    reset_query_ids()
    reset_message_ids()
    agora = build_agora(
        seed=seed, n_sources=8, items_per_source=12, calibration_pairs=0,
        enable_tracing=True, enable_churn=True, enable_flight_recorder=True,
    )
    rng = np.random.default_rng(seed + 1)
    for node in agora.topology.nodes[:-1]:
        agora.health.set_state(node, bool(rng.random() < availability))
    workload = QueryWorkloadGenerator(
        agora.topic_space, agora.vocabulary, agora.sim.rng.spawn("obs-demo"),
    )
    profile = UserProfile(
        user_id="iris", interests=agora.topic_space.basis("folk-jewelry", 0.9),
    )
    consumer = Consumer(
        agora, profile, planner="trading",
        resilience=ResilienceConfig.default_enabled(),
    )
    queries = [
        workload.topic_query(agora.topic_space.names[index % 5], k=10)
        for index in range(N_QUERIES)
    ]
    assert agora.tracer is not None
    with agora.tracer.span("drive"):
        for index, query in enumerate(queries):
            agora.sim.schedule(
                QUERY_SPACING * index + QUERY_SPACING / 2,
                (lambda q=query: consumer.ask(q)),
                tag=f"query-{index}",
            )
    start = fault_at if fault_at is not None else HORIZON * 100
    node = agora.sources[sorted(agora.sources)[0]].node_id
    agora.inject_faults(FaultScript().outage(node, start=start, duration=10.0))
    agora.run(until=HORIZON)
    manifest = agora.run_manifest(scenario="flight-integration")
    written = export_run(
        out_dir, manifest, registry=agora.sim.metrics, tracer=agora.tracer,
        flight=agora.flight,
    )
    return written, manifest


@pytest.fixture(scope="module")
def twin_runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("flight-twins")
    written_a, manifest_a = record_run(root / "a", seed=11)
    written_b, manifest_b = record_run(root / "b", seed=11)
    written_m, manifest_m = record_run(root / "m", seed=11, fault_at=17.0)
    return {
        "root": root,
        "a": (written_a, manifest_a),
        "b": (written_b, manifest_b),
        "m": (written_m, manifest_m),
    }


class TestByteStability:
    def test_same_seed_recordings_are_byte_identical(self, twin_runs):
        root = twin_runs["root"]
        for name in ("chunk-000000.jsonl", FOOTER_FILE):
            left = (root / "a" / "flight" / name).read_bytes()
            right = (root / "b" / "flight" / name).read_bytes()
            assert left == right, name

    def test_alignment_reports_identical(self, twin_runs):
        root = twin_runs["root"]
        alignment = align_runs(root / "a", root / "b")
        assert alignment.identical
        assert alignment.first_divergence() is None

    def test_manifest_flight_digest_matches_footer(self, twin_runs):
        root = twin_runs["root"]
        __, manifest = twin_runs["a"]
        footer = json.loads((root / "a" / "flight" / FOOTER_FILE).read_text())
        assert manifest.flight["digest"] == footer["digest"]
        assert manifest.flight["events"] == footer["events"]

    def test_same_seed_manifests_zero_drift(self, twin_runs):
        __, left = twin_runs["a"]
        __, right = twin_runs["b"]
        assert diff_manifests(left, right).clean


class TestFaultPinpointing:
    def test_first_divergence_is_exactly_the_injected_event(self, twin_runs):
        root = twin_runs["root"]
        alignment = align_runs(root / "a", root / "m")
        assert not alignment.identical
        report = alignment.first_divergence()
        assert report is not None
        assert report.kind == "event"

        # Ground truth: an exhaustive linear scan over every log entry,
        # no checkpoint shortcuts.
        left = load_recording(root / "a" / "flight")
        right = load_recording(root / "m" / "flight")
        expected = next(
            position
            for position, (a, b) in enumerate(zip(left.entries, right.entries))
            if a != b
        )
        assert report.index == expected

        # The divergent record IS the injected fault: the mutant side
        # dispatches the outage at t=17 where the clean side does not.
        assert report.right_entry is not None
        assert report.right_entry["kind"] == "fault"
        assert report.right_entry["time"] == 17.0
        assert "FaultInjector" in report.right_entry["callback"]

    def test_report_carries_causal_context(self, twin_runs):
        root = twin_runs["root"]
        report = align_runs(root / "a", root / "m").first_divergence()
        # RNG attribution: the retry/jitter machinery consumed different
        # randomness once the outage landed.
        assert report.streams, "expected disagreeing RNG streams"
        # The last matching events before the fork are echoed.
        assert report.context
        # The clean side's entry at the fork index sits under the drive
        # span (queries are scheduled inside it), and spans.jsonl is
        # auto-attached, so the stack renders with names.
        if report.left_entry is not None and report.left_entry.get("span") is not None:
            assert report.left_stack is not None
            assert "drive" in report.left_stack

    def test_manifest_diff_drifts_and_flight_digest_changes(self, twin_runs):
        __, clean = twin_runs["a"]
        __, mutant = twin_runs["m"]
        report = diff_manifests(clean, mutant)
        assert not report.clean
        assert clean.flight["digest"] != mutant.flight["digest"]
