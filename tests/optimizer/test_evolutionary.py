"""Tests for evolutionary and parametric plan search."""

import numpy as np
import pytest

from repro.data import TextDocument
from repro.optimizer import (
    CandidateAssignment,
    EvolutionarySearch,
    ExhaustiveSearch,
    GreedySearch,
    LoadRegime,
    ParametricPlanner,
    make_evaluator,
    scale_candidate,
)
from repro.qos import QoSVector, QoSWeights
from repro.query import Query, QueryKind
from repro.sim import RngStreams
from repro.uncertainty import UncertainEstimate


def _query():
    return Query(
        kind=QueryKind.SIMILARITY,
        reference_item=TextDocument(
            item_id="ref", domain="museum", latent=np.array([1.0]),
            terms={"w00001": 1},
        ),
    )


def _table(rng, n_jobs=4, n_sources=5):
    query = _query()
    table = {}
    for job_index in range(n_jobs):
        subquery = query.restricted_to(f"d{job_index}")
        candidates = []
        for source_index in range(n_sources):
            response_time = float(rng.uniform(0.3, 6.0))
            completeness = float(np.clip(
                0.15 + 0.7 * response_time / 6.0 + rng.normal(0, 0.1), 0.05, 1.0,
            ))
            candidates.append(CandidateAssignment(
                subquery=subquery, source_id=f"s{source_index}",
                expected=QoSVector(response_time=response_time,
                                   completeness=completeness),
                cost=UncertainEstimate(mean=response_time,
                                       std=0.1 * response_time,
                                       low=0.0, high=30.0),
                breach_risk=0.0,
            ))
        table[subquery.subquery_id] = candidates
    return table


EVALUATOR = make_evaluator(QoSWeights(), price_sensitivity=0.02)


class TestEvolutionarySearch:
    def test_finds_near_optimal_plans(self):
        rng = np.random.default_rng(3)
        table = _table(rng)
        exhaustive = ExhaustiveSearch().search(table, EVALUATOR)
        evolutionary = EvolutionarySearch(
            RngStreams(3).spawn("evo"), population_size=20, generations=25,
        ).search(table, EVALUATOR)
        assert evolutionary.best.utility >= 0.95 * exhaustive.best.utility

    def test_beats_random_start(self):
        rng = np.random.default_rng(5)
        table = _table(rng, n_jobs=5, n_sources=6)
        evolutionary = EvolutionarySearch(
            RngStreams(5).spawn("evo"), population_size=12, generations=15,
        ).search(table, EVALUATOR)
        greedy = GreedySearch().search(table, EVALUATOR)
        # Evolution matches or beats greedy on correlated markets.
        assert evolutionary.best.utility >= 0.9 * greedy.best.utility

    def test_front_is_nonempty_and_sorted(self):
        rng = np.random.default_rng(7)
        table = _table(rng)
        result = EvolutionarySearch(RngStreams(7).spawn("evo")).search(
            table, EVALUATOR,
        )
        assert result.front
        utilities = [e.utility for e in result.front]
        assert utilities == sorted(utilities, reverse=True)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(9)
        table = _table(rng)
        a = EvolutionarySearch(RngStreams(9).spawn("evo")).search(table, EVALUATOR)
        b = EvolutionarySearch(RngStreams(9).spawn("evo")).search(table, EVALUATOR)
        assert a.best.plan.signature() == b.best.plan.signature()

    def test_invalid_params(self):
        streams = RngStreams(1).spawn("evo")
        with pytest.raises(ValueError):
            EvolutionarySearch(streams, population_size=1)
        with pytest.raises(ValueError):
            EvolutionarySearch(streams, generations=0)
        with pytest.raises(ValueError):
            EvolutionarySearch(streams, mutation_rate=1.5)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            EvolutionarySearch(RngStreams(1).spawn("evo")).search({}, EVALUATOR)


class TestScaleCandidate:
    def test_scales_time_not_quality(self):
        rng = np.random.default_rng(1)
        table = _table(rng)
        candidate = table[sorted(table)[0]][0]
        scaled = scale_candidate(candidate, 2.0)
        assert scaled.expected.response_time == pytest.approx(
            2 * candidate.expected.response_time,
        )
        assert scaled.expected.completeness == candidate.expected.completeness
        assert scaled.cost.mean == pytest.approx(2 * candidate.cost.mean)

    def test_invalid_multiplier(self):
        rng = np.random.default_rng(1)
        table = _table(rng)
        candidate = table[sorted(table)[0]][0]
        with pytest.raises(ValueError):
            scale_candidate(candidate, 0.0)


class TestParametricPlanner:
    def test_prepares_one_plan_per_regime(self):
        rng = np.random.default_rng(11)
        table = _table(rng)
        planner = ParametricPlanner(ExhaustiveSearch())
        prepared = planner.prepare(table, EVALUATOR)
        assert set(prepared.by_regime) == {"light", "nominal", "heavy"}

    def test_heavy_load_prefers_faster_sources(self):
        rng = np.random.default_rng(13)
        table = _table(rng, n_jobs=3, n_sources=6)
        planner = ParametricPlanner(ExhaustiveSearch())
        prepared = planner.prepare(table, EVALUATOR)
        light = prepared.by_regime["light"].plan.expected_qos().response_time
        heavy = prepared.by_regime["heavy"].plan.expected_qos().response_time
        # Under the heavy multiplier the chosen plan's *baseline* time is
        # no longer than the light-regime choice (it trades quality for speed).
        assert heavy / 2.5 <= light / 0.7 + 1e-9

    def test_choose_picks_closest_regime(self):
        rng = np.random.default_rng(15)
        table = _table(rng)
        prepared = ParametricPlanner(ExhaustiveSearch()).prepare(table, EVALUATOR)
        assert prepared.choose(0.8) is prepared.by_regime["light"]
        assert prepared.choose(1.1) is prepared.by_regime["nominal"]
        assert prepared.choose(10.0) is prepared.by_regime["heavy"]

    def test_choose_invalid(self):
        rng = np.random.default_rng(15)
        prepared = ParametricPlanner(ExhaustiveSearch()).prepare(
            _table(rng), EVALUATOR,
        )
        with pytest.raises(ValueError):
            prepared.choose(0.0)

    def test_duplicate_regimes_rejected(self):
        with pytest.raises(ValueError):
            ParametricPlanner(ExhaustiveSearch(),
                              regimes=[LoadRegime("x", 1.0), LoadRegime("x", 2.0)])

    def test_empty_regimes_rejected(self):
        with pytest.raises(ValueError):
            ParametricPlanner(ExhaustiveSearch(), regimes=[])

    def test_invalid_regime(self):
        with pytest.raises(ValueError):
            LoadRegime("bad", 0.0)
