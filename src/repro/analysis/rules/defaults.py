"""AGR005 — mutable default arguments.

A mutable default is shared across every call of the function; state
leaks between simulation runs that should be independent, which is a
classic way for run N's results to depend on whether run N-1 happened.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.rules.base import Rule, RuleContext
from repro.analysis.violations import Violation

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)


def _mutable_kind(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CALLS:
            return f"{node.func.id}() call"
    return None


class MutableDefaultRule(Rule):
    """Flag list/dict/set (literals or constructor calls) as defaults."""

    rule_id = "AGR005"
    title = "mutable default argument"
    rationale = (
        "Mutable defaults are shared across calls, leaking state between "
        "runs; default to None and construct inside the function."
    )

    def check(self, ctx: RuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults: List[Optional[ast.expr]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if default is None:
                    continue
                kind = _mutable_kind(default)
                if kind is None:
                    continue
                yield self.violation(
                    ctx,
                    default,
                    f"mutable default ({kind}) is shared across calls; "
                    "default to None and build it inside the function",
                )
