"""Engine mechanics: suppressions, module naming, reporters, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisEngine,
    check_import,
    module_name_for,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_parse_rule_list_and_reason(self):
        src = "x = 1  # agora: ignore[AGR001, AGR004] calibration only\n"
        (supp,) = parse_suppressions(src, "f.py")
        assert supp.line == 1
        assert supp.rule_ids == ("AGR001", "AGR004")
        assert supp.reason == "calibration only"

    def test_non_matching_comments_ignored(self):
        assert parse_suppressions("# agora: ignore[oops]\n# noqa\n", "f.py") == []

    def test_used_suppression_moves_violation_to_suppressed(self):
        report = AnalysisEngine().check_file(FIXTURES / "suppressed.py")
        # the only remaining finding is AGR000 for the unused AGR002 line
        assert [v.rule_id for v in report.violations] == ["AGR000"]
        assert [v.rule_id for v in report.suppressed] == ["AGR001"]

    def test_unused_suppression_is_tracked(self):
        report = AnalysisEngine().check_file(FIXTURES / "suppressed.py")
        by_used = {s.rule_ids: s.used for s in report.suppressions}
        assert by_used[("AGR001",)] is True
        assert by_used[("AGR002",)] is False

    def test_suppression_only_covers_its_own_rule(self):
        src = (
            "# module: repro.core.x\n"
            "import time\n"
            "t = time.time()  # agora: ignore[AGR002] wrong rule id\n"
        )
        report = AnalysisEngine().check_source(src, "f.py")
        # the AGR001 finding survives, and the mismatched suppression is
        # itself flagged as unused
        assert sorted(v.rule_id for v in report.violations) == ["AGR000", "AGR001"]


class TestUnusedSuppressionRule:
    """AGR000: suppressions that silence nothing are themselves findings."""

    def test_unused_suppression_becomes_agr000(self):
        report = AnalysisEngine().check_file(FIXTURES / "suppressed.py")
        (violation,) = report.violations
        assert violation.rule_id == "AGR000"
        assert violation.line == 11
        assert "AGR002" in violation.message

    def test_agr000_can_be_self_suppressed(self):
        src = (
            "# module: repro.core.x\n"
            "x = 1  # agora: ignore[AGR002, AGR000] acknowledged speculative\n"
        )
        report = AnalysisEngine().check_source(src, "f.py")
        assert report.violations == []
        (marked,) = report.suppressions
        assert marked.used is True

    def test_agr000_respects_executed_rule_set(self):
        # An AGR002 suppression cannot be called unused by a run that never
        # executed AGR002.
        from repro.analysis.rules import RULE_INDEX

        src = (
            "# module: repro.core.x\n"
            "x = 1  # agora: ignore[AGR002] maybe next run\n"
        )
        engine = AnalysisEngine(rules=[RULE_INDEX["AGR001"]])
        assert engine.check_source(src, "f.py").violations == []

    def test_flagging_can_be_disabled(self):
        engine = AnalysisEngine(flag_unused_suppressions=False)
        report = engine.check_file(FIXTURES / "suppressed.py")
        assert report.violations == []


class TestModuleNaming:
    def test_src_layout_paths_map_to_dotted_modules(self):
        assert module_name_for("src/repro/sim/events.py") == "repro.sim.events"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"

    def test_paths_outside_the_package_have_no_module(self):
        assert module_name_for("scripts/tool.py") is None

    def test_module_override_comment_wins(self):
        src = "# module: repro.resilience.probe\nx = 1\n"
        report = AnalysisEngine().check_source(src, "anywhere.py")
        assert report.module == "repro.resilience.probe"

    def test_rules_stay_quiet_outside_repro(self):
        report = AnalysisEngine().check_source(
            "import time\nt = time.time()\n", "tool.py"
        )
        assert report.violations == []


class TestLayerDag:
    def test_sim_is_a_leaf(self):
        allowed, _ = check_import("repro.sim.events", "repro.qos.vector")
        assert not allowed

    def test_declared_dependency_is_allowed(self):
        allowed, _ = check_import("repro.qos.vector", "repro.sim.events")
        assert allowed

    def test_interface_module_exception(self):
        allowed, _ = check_import("repro.sources.source", "repro.query.model")
        assert allowed
        allowed, _ = check_import("repro.sources.source", "repro.query.execution")
        assert not allowed

    def test_intra_package_imports_are_free(self):
        allowed, _ = check_import("repro.sim.kernel", "repro.sim.events")
        assert allowed


class TestReporters:
    def test_text_report_lines_are_clickable(self):
        report = AnalysisEngine().check_paths([FIXTURES / "agr001_wallclock.py"])
        text = render_text(report)
        assert "agr001_wallclock.py:9:" in text
        assert "AGR001" in text
        assert "3 violations" in text

    def test_json_report_round_trips(self):
        report = AnalysisEngine().check_paths([FIXTURES / "agr005_defaults.py"])
        payload = json.loads(render_json(report))
        assert payload["summary"]["violations"] == 3
        assert {v["rule"] for v in payload["violations"]} == {"AGR005"}
        assert all(v["line"] > 0 for v in payload["violations"])

    def test_syntax_errors_reported_not_raised(self):
        report = AnalysisEngine().check_source("def broken(:\n", "bad.py")
        assert report.parse_error is not None
        assert not report.ok


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean_module.py")]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, capsys):
        assert main([str(FIXTURES / "agr006_internals.py")]) == 1
        assert "AGR006" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "clean_module.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["violations"] == 0

    def test_rule_selection(self, capsys):
        code = main(["--rules", "AGR001", str(FIXTURES / "agr006_internals.py")])
        assert code == 0  # AGR006 findings invisible to an AGR001-only run

    def test_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            main(["--rules", "AGR999", str(FIXTURES)])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("AGR001", "AGR008"):
            assert rule_id in out
