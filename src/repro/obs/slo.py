"""Declarative SLOs evaluated as rolling burn-rate windows.

An :class:`SLOSpec` declares an objective over metrics that already live
in a :class:`~repro.obs.metrics.MetricsRegistry`; an :class:`SLOMonitor`
samples the registry at (sim-time) checkpoints and evaluates each spec
over a trailing window by differencing cumulative state between the
window's endpoints — no second event stream, no wall clock.

Three spec kinds:

``latency_quantile``
    "``objective`` of windowed observations of histogram ``metric``
    complete within ``threshold``."  The error fraction is computed from
    bucket-count deltas: observations landing above the largest bucket
    bound ≤ ``threshold`` count against the budget (bucket-resolution
    conservative).
``availability``
    "``good``/``total`` counter ratio in the window stays ≥
    ``objective``."
``error_budget``
    "``bad``/``total`` counter ratio in the window stays ≤
    ``1 - objective``."

For every spec the monitor reports the windowed SLI and the **burn
rate** — the windowed error fraction divided by the error budget
``1 - objective``.  Burn < 1 means the budget outlives the window;
burn ≥ 1 means it is being consumed faster than allotted.  Evaluation is
*observe-only*: nothing in the run changes behaviour based on a report,
so enabling SLO monitoring can never perturb determinism.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import canonical_json
from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]

SLO_KINDS = ("latency_quantile", "availability", "error_budget")

#: Burn-rate thresholds for the observe-only status ladder.
BURN_WARN = 1.0
BURN_CRITICAL = 2.0


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    ``objective`` is the target success fraction in (0, 1); the error
    budget is ``1 - objective``.  ``window`` is the rolling evaluation
    window in sim-time units.  Which metric fields are required depends
    on ``kind`` (see the module docstring).
    """

    name: str
    kind: str
    objective: float
    window: float = 50.0
    metric: str = ""
    threshold: float = 0.0
    good: str = ""
    bad: str = ""
    total: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"SLO kind must be one of {SLO_KINDS}, got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be strictly between 0 and 1")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.kind == "latency_quantile" and not self.metric:
            raise ValueError("latency_quantile SLOs need a histogram `metric`")
        if self.kind == "availability" and not (self.good and self.total):
            raise ValueError("availability SLOs need `good` and `total` counters")
        if self.kind == "error_budget" and not (self.bad and self.total):
            raise ValueError("error_budget SLOs need `bad` and `total` counters")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated error fraction."""
        return 1.0 - self.objective

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (stable field names)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "window": self.window,
            "metric": self.metric,
            "threshold": self.threshold,
            "good": self.good,
            "bad": self.bad,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLOSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            objective=float(payload["objective"]),
            window=float(payload.get("window", 50.0)),
            metric=str(payload.get("metric", "")),
            threshold=float(payload.get("threshold", 0.0)),
            good=str(payload.get("good", "")),
            bad=str(payload.get("bad", "")),
            total=str(payload.get("total", "")),
        )


@dataclass(frozen=True)
class SLOStatus:
    """One spec's evaluation over the trailing window."""

    name: str
    kind: str
    window: float
    sli: float
    budget: float
    burn_rate: float
    events: int
    status: str

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSON report artifact."""
        return {
            "name": self.name,
            "kind": self.kind,
            "window": self.window,
            "sli": self.sli,
            "budget": self.budget,
            "burn_rate": self.burn_rate,
            "events": self.events,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLOStatus":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            window=float(payload["window"]),
            sli=float(payload["sli"]),
            budget=float(payload["budget"]),
            burn_rate=float(payload["burn_rate"]),
            events=int(payload["events"]),
            status=str(payload["status"]),
        )


@dataclass
class SLOReport:
    """The full observe-only report at one evaluation time."""

    evaluated_at: float
    statuses: List[SLOStatus] = field(default_factory=list)

    @property
    def worst_burn_rate(self) -> float:
        """Largest burn rate across specs (0 when no specs)."""
        return max((status.burn_rate for status in self.statuses), default=0.0)

    @property
    def breached(self) -> bool:
        """True when any spec is at or past the critical burn threshold."""
        return any(status.status == "critical" for status in self.statuses)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (statuses in spec order)."""
        return {
            "evaluated_at": self.evaluated_at,
            "statuses": [status.to_dict() for status in self.statuses],
        }

    def to_json(self) -> str:
        """Canonical JSON rendering."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLOReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            evaluated_at=float(payload["evaluated_at"]),
            statuses=[
                SLOStatus.from_dict(entry) for entry in payload.get("statuses", [])
            ],
        )

    def render(self) -> str:
        """Text table (one line per SLO, deterministic widths)."""
        if not self.statuses:
            return "(no SLOs configured)"
        lines = [
            f"{'slo':<28} {'kind':<16} {'sli':>8} {'budget':>8} "
            f"{'burn':>8} {'events':>7}  status"
        ]
        for status in self.statuses:
            lines.append(
                f"{status.name:<28} {status.kind:<16} {status.sli:>8.4f} "
                f"{status.budget:>8.4f} {status.burn_rate:>8.2f} "
                f"{status.events:>7d}  {status.status}"
            )
        return "\n".join(lines)


# agora: shard-safe
def _classify(burn_rate: float) -> str:
    if burn_rate >= BURN_CRITICAL:
        return "critical"
    if burn_rate >= BURN_WARN:
        return "warn"
    return "ok"


@dataclass
class _Sample:
    """Cumulative registry state captured at one sim time."""

    time: float
    counters: Dict[str, float]
    buckets: Dict[str, Tuple[int, ...]]
    bucket_totals: Dict[str, int]


class SLOMonitor:
    """Samples a registry over sim time and evaluates burn rates.

    Call :meth:`sample` at checkpoints (the QoS monitor samples on every
    settlement; a kernel process may sample periodically) and
    :meth:`evaluate` whenever a report is wanted.  Reads never create
    metrics, and the monitor never writes to the registry — attaching it
    cannot change a run's telemetry.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        specs: Sequence[SLOSpec],
        max_samples: int = 512,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self._registry = registry
        self._specs = list(specs)
        self._max_samples = max_samples
        self._samples: List[_Sample] = []
        self._counter_names = sorted(
            {
                name
                for spec in self._specs
                for name in (spec.good, spec.bad, spec.total)
                if name
            }
        )
        self._histogram_names = sorted(
            {spec.metric for spec in self._specs if spec.metric}
        )

    @property
    def specs(self) -> List[SLOSpec]:
        """The declared SLOs (a copied list)."""
        return list(self._specs)

    @property
    def sample_count(self) -> int:
        """Number of retained samples."""
        return len(self._samples)

    # agora: worker-local sample ring and its bound registry are per-worker;
    # reports are recomputed from merged registries after the run
    def sample(self, now: float) -> None:
        """Capture the registry's cumulative state at sim time ``now``."""
        counters = {
            name: self._registry.counter_value(name) for name in self._counter_names
        }
        buckets: Dict[str, Tuple[int, ...]] = {}
        bucket_totals: Dict[str, int] = {}
        for name in self._histogram_names:
            histogram = self._registry.histogram_or_none(name)
            if histogram is not None:
                buckets[name] = histogram.bucket_counts()
                bucket_totals[name] = histogram.count
        last_time = self._samples[-1].time if self._samples else None
        if last_time == now:  # agora: ignore[AGR004] sim-time checkpoints are exact
            # Same-instant re-sample: keep the latest cumulative state.
            self._samples.pop()
        self._samples.append(_Sample(now, counters, buckets, bucket_totals))
        if len(self._samples) > self._max_samples:
            self._samples.pop(0)

    # -- evaluation -------------------------------------------------------
    def _window_baseline(self, spec: SLOSpec, now: float) -> Optional[_Sample]:
        """Latest sample at or before the window start.

        ``None`` means the window opens before the first sample: the
        baseline is then the implicit zero state at run start, so all
        recorded activity counts as in-window (expanding-window
        semantics while history is shorter than the window).
        """
        start_time = now - spec.window
        baseline: Optional[_Sample] = None
        for candidate in self._samples:
            if candidate.time <= start_time:
                baseline = candidate
            else:
                break
        return baseline

    def _evaluate_spec(self, spec: SLOSpec, now: float) -> SLOStatus:
        if not self._samples:
            return SLOStatus(
                name=spec.name, kind=spec.kind, window=spec.window,
                sli=1.0, budget=spec.budget, burn_rate=0.0, events=0, status="ok",
            )
        baseline = self._window_baseline(spec, now)
        latest = self._samples[-1]
        if spec.kind == "latency_quantile":
            error_fraction, events = self._latency_errors(spec, baseline, latest)
        else:
            error_fraction, events = self._counter_errors(spec, baseline, latest)
        sli = 1.0 - error_fraction
        burn_rate = (error_fraction / spec.budget) if events else 0.0
        return SLOStatus(
            name=spec.name,
            kind=spec.kind,
            window=spec.window,
            sli=sli,
            budget=spec.budget,
            burn_rate=burn_rate,
            events=events,
            status=_classify(burn_rate),
        )

    def _latency_errors(
        self, spec: SLOSpec, baseline: Optional[_Sample], latest: _Sample
    ) -> Tuple[float, int]:
        histogram = self._registry.histogram_or_none(spec.metric)
        latest_counts = latest.buckets.get(spec.metric)
        if histogram is None or latest_counts is None:
            return 0.0, 0
        base_counts = tuple(0 for _ in latest_counts)
        if baseline is not None and baseline is not latest:
            base_counts = baseline.buckets.get(spec.metric, base_counts)
        deltas = [b - a for a, b in zip(base_counts, latest_counts)]
        total = sum(deltas)
        if total <= 0:
            return 0.0, 0
        good = 0
        for index, bound in enumerate(histogram.buckets):
            if bound <= spec.threshold:
                good += deltas[index]
        errors = total - good
        return errors / total, total

    def _counter_errors(
        self, spec: SLOSpec, baseline: Optional[_Sample], latest: _Sample
    ) -> Tuple[float, int]:
        def delta(name: str) -> float:
            current = latest.counters.get(name, 0.0)
            if baseline is None or baseline is latest:
                return current
            return current - baseline.counters.get(name, 0.0)

        total = delta(spec.total)
        if total <= 0:
            return 0.0, 0
        if spec.kind == "availability":
            errors = total - delta(spec.good)
        else:
            errors = delta(spec.bad)
        errors = min(max(errors, 0.0), total)
        return errors / total, int(total)

    def evaluate(self, now: Optional[float] = None) -> SLOReport:
        """Evaluate every spec over its trailing window ending at ``now``.

        ``now`` defaults to the latest sample time (0.0 when nothing has
        been sampled yet).
        """
        if now is None:
            now = self._samples[-1].time if self._samples else 0.0
        return SLOReport(
            evaluated_at=now,
            statuses=[self._evaluate_spec(spec, now) for spec in self._specs],
        )


def write_slo_report(report: SLOReport, path: PathLike) -> None:
    """Write an SLO report as canonical JSON."""
    Path(path).write_text(report.to_json() + "\n")


def load_slo_report(path: PathLike) -> SLOReport:
    """Read a report written by :func:`write_slo_report`."""
    return SLOReport.from_dict(json.loads(Path(path).read_text()))
