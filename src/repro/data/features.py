"""Observable feature sets over media objects.

Section 2 of the paper stresses that *which feature set to use* is itself
uncertain: colour histograms, texture, or content metadata capture user
perception to different degrees.  We model a feature set as a fixed random
projection of the object's true perceptual vector plus observation noise.
Fidelity (how much of the truth survives) and noise level vary per set, so
experiments can quantify matching quality as a function of feature choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.data.items import MediaObject
from repro.sim.rng import ScopedStreams


@dataclass(frozen=True)
class FeatureSetSpec:
    """Static description of one observable feature set.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"color_histogram"``.
    dimensions:
        Output dimensionality of the projection.
    fidelity:
        Fraction (0..1) of signal preserved; the rest is replaced by noise.
    noise_scale:
        Standard deviation of additive Gaussian observation noise.
    cost:
        Relative extraction cost, charged by sources that compute it.
    """

    name: str
    dimensions: int
    fidelity: float
    noise_scale: float
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fidelity <= 1.0:
            raise ValueError("fidelity must be in [0, 1]")
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if self.noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")


DEFAULT_FEATURE_SETS: Mapping[str, FeatureSetSpec] = {
    "color_histogram": FeatureSetSpec(
        "color_histogram", 16, fidelity=0.45, noise_scale=0.25, cost=1.0,
    ),
    "texture": FeatureSetSpec("texture", 12, fidelity=0.55, noise_scale=0.20, cost=1.5),
    "shape": FeatureSetSpec("shape", 8, fidelity=0.50, noise_scale=0.30, cost=1.2),
    "content_metadata": FeatureSetSpec(
        "content_metadata", 24, fidelity=0.85, noise_scale=0.08, cost=4.0,
    ),
}


class FeatureExtractor:
    """Computes observable features of media objects.

    The projection matrix of each feature set is derived deterministically
    from the extractor's RNG scope, so every component of a simulation sees
    the same projections.  Observation noise is drawn per call, keyed by the
    item id, making repeated extraction of the same item deterministic too.
    """

    def __init__(
        self,
        true_dimensions: int,
        streams: ScopedStreams,
        specs: Optional[Mapping[str, FeatureSetSpec]] = None,
    ):
        if true_dimensions < 1:
            raise ValueError("true_dimensions must be >= 1")
        self.true_dimensions = true_dimensions
        self._streams = streams
        self.specs: Dict[str, FeatureSetSpec] = dict(
            specs if specs is not None else DEFAULT_FEATURE_SETS
        )
        self._projections: Dict[str, np.ndarray] = {}
        self._combined: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    def feature_set_names(self) -> List[str]:
        """Sorted names of registered feature sets."""
        return sorted(self.specs)

    def spec(self, name: str) -> FeatureSetSpec:
        """Look up a feature-set spec by name."""
        try:
            return self.specs[name]
        except KeyError:
            raise KeyError(
                f"unknown feature set {name!r}; known: {self.feature_set_names()}"
            ) from None

    def add_feature_set(self, spec: FeatureSetSpec) -> None:
        """Register an additional feature set (e.g. a combined one)."""
        self.specs[spec.name] = spec
        self._projections.pop(spec.name, None)

    def _projection(self, name: str) -> np.ndarray:
        if name not in self._projections:
            spec = self.spec(name)
            rng = self._streams.stream(f"projection.{name}")
            matrix = rng.normal(size=(spec.dimensions, self.true_dimensions))
            matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
            self._projections[name] = matrix
        return self._projections[name]

    # ------------------------------------------------------------------
    # agora: worker-local extraction is a pure function of (feature_set,
    # item); each worker re-derives identical projections and noise from
    # its own RNG scope, so the lazy projection cache never diverges
    def extract(self, obj: MediaObject, feature_set: str) -> np.ndarray:
        """Return the observable feature vector of ``obj``.

        The result blends the projected true signal (weight = fidelity)
        with deterministic per-item noise (weight = 1 - fidelity) plus
        additive Gaussian observation noise.

        Extraction is a pure function of ``(feature_set, item)``: the
        noise generator is re-derived from its key on every call, so a
        repeated extraction — a cache rebuilt after eviction, the media
        matcher and the concept lifter extracting the same item in either
        order — always reproduces the same vector.  Downstream caches
        (and the pruning bound builder) depend on this.
        """
        spec = self.spec(feature_set)
        projection = self._projection(feature_set)
        truth = np.asarray(obj.true_features, dtype=float)
        if truth.shape != (self.true_dimensions,):
            raise ValueError(
                f"object {obj.item_id} has feature dim {truth.shape}, "
                f"expected ({self.true_dimensions},)"
            )
        signal = projection @ truth
        noise_rng = self._streams.fresh(f"noise.{feature_set}.{obj.item_id}")
        distractor = noise_rng.normal(size=spec.dimensions)
        observation_noise = noise_rng.normal(scale=spec.noise_scale, size=spec.dimensions)
        observed = (
            spec.fidelity * signal
            + (1.0 - spec.fidelity) * distractor
            + observation_noise
        )
        norm = np.linalg.norm(observed)
        return observed / norm if norm > 0 else observed

    def extract_many(
        self, objects: Iterable[MediaObject], feature_set: str
    ) -> np.ndarray:
        """Stack features of many objects into a matrix (rows = objects)."""
        rows = [self.extract(obj, feature_set) for obj in objects]
        if not rows:
            return np.zeros((0, self.spec(feature_set).dimensions))
        return np.stack(rows)

    def combined_spec(self, names: Iterable[str], label: str = "combined") -> FeatureSetSpec:
        """Create and register a concatenated feature set from ``names``."""
        specs = [self.spec(name) for name in names]
        if not specs:
            raise ValueError("need at least one feature set to combine")
        combined = FeatureSetSpec(
            name=label,
            dimensions=sum(s.dimensions for s in specs),
            fidelity=float(np.mean([s.fidelity for s in specs])),
            noise_scale=float(np.mean([s.noise_scale for s in specs])),
            cost=sum(s.cost for s in specs),
        )
        self.add_feature_set(combined)
        self._combined[label] = [s.name for s in specs]
        return combined

    def extract_combined(self, obj: MediaObject, label: str) -> np.ndarray:
        """Extract a previously registered combined feature set."""
        members = self._combined.get(label)
        if not members:
            raise KeyError(f"no combined feature set registered as {label!r}")
        parts = [self.extract(obj, member) for member in members]
        concatenated = np.concatenate(parts)
        norm = np.linalg.norm(concatenated)
        return concatenated / norm if norm > 0 else concatenated
